"""A chaos recording must be byte-identical across interpreter hash salts.

Every unpinned chaos choice (straggler victims, crash sites, timeout coin
flips) comes from the dedicated ``chaos:<seed>`` stream, never from anything
``PYTHONHASHSEED`` salts.  This pins it behaviourally: the same chaos
scenario — with *random* stragglers and an *unpinned* crash site, the two
draw paths — recorded in two subprocesses under different hash salts must
produce identical bytes, trace and chaos log included.
"""

import os
import subprocess
import sys
from pathlib import Path

SPEC = """\
[scenario]
name = "chaos_hashseed_probe"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 77
strategy = "dynahash"
[cluster.lsm]
memory_component_bytes = "32 KiB"

[workload]
initial_records = 120
mix = "A"
keys = "zipfian"

[[workload.phases]]
name = "steady"
ops = 50

[trace]
enabled = true

[chaos]
random_stragglers = 2
straggler_horizon_seconds = 5.0
partitions = [{ start = 0.0, duration = 10.0, timeout_probability = 0.1 }]
crashes = [{ after_seconds = 0.0 }]

[[steps]]
kind = "rebalance"
remove = 1

[[steps]]
kind = "recover"
"""


def _record_bytes(tmp_path: Path, hash_seed: str) -> bytes:
    spec = tmp_path / "probe.toml"
    spec.write_text(SPEC)
    recording = tmp_path / f"recording_{hash_seed}.json"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(spec), "--record", str(recording), "-q"],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, (
        f"chaos run failed under PYTHONHASHSEED={hash_seed}:\n{proc.stdout}\n{proc.stderr}"
    )
    return recording.read_bytes()


class TestChaosHashSeedIndependence:
    def test_recordings_identical_across_hash_salts(self, tmp_path):
        assert _record_bytes(tmp_path, "1") == _record_bytes(tmp_path, "4242")
