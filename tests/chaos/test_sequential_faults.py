"""Sequential chaos crashes at every protocol site on one long-lived cluster.

One database survives a crash at each of the six ``FAULT_SITES`` in turn —
every kill scheduled through the chaos engine, every repair through
``Database.recover()`` — and after each storm the cluster is rebalanced back
to its baseline size.  A golden database runs the identical clean resize
cycles with no faults; at the end the survivor must be functionally
indistinguishable from it: same records in the same scan order, same point
lookups, nothing blocked, directory covering every key.
"""

import pytest

from repro.api import Database
from repro.chaos import CrashPlan
from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import FaultInjected
from repro.rebalance.operation import FAULT_SITES

BASELINE_NODES = 3
ROWS = 240

#: Sites up to the commit point abort on recovery; later ones roll forward.
ABORT_SITES = {"nc_fail_before_prepare", "nc_fail_after_prepare", "cc_fail_before_commit"}


def small_config():
    return ClusterConfig(
        num_nodes=BASELINE_NODES,
        partitions_per_node=2,
        seed=2022,
        lsm=LSMConfig(memory_component_bytes=16 * 1024),
        bucketing=BucketingConfig(initial_buckets_per_partition=2),
    )


def orders_rows(count):
    return [
        {"o_orderkey": key, "o_orderdate": f"1995-{(key % 12) + 1:02d}-01"}
        for key in range(count)
    ]


def fingerprint(db):
    """The observable dataset state: count, keyed contents, sampled lookups.

    Scan *order* is bucket-layout-dependent and layouts legitimately differ
    once a faulted removal rolled forward, so contents are compared sorted
    by primary key — the convergence claim is about data, not placement.
    """
    orders = db.dataset("orders")
    rows = sorted(orders.scan(), key=lambda row: row["o_orderkey"])
    sample = {key: orders.get(key) for key in range(0, ROWS, ROWS // 24)}
    return (len(rows), rows, sample)


class TestSequentialFaultRecovery:
    def test_every_site_in_turn_converges_to_the_no_fault_state(self):
        chaos_db = Database.open(small_config(), strategy="dynahash")
        chaos_db.create_dataset("orders", primary_key="o_orderkey").upsert_each(
            orders_rows(ROWS)
        )
        golden_db = Database.open(small_config(), strategy="dynahash")
        golden_db.create_dataset("orders", primary_key="o_orderkey").upsert_each(
            orders_rows(ROWS)
        )

        for site in FAULT_SITES:
            # Re-arming replaces the previous (consumed) schedule; the kill
            # targets the next explicit rebalance.  A removal must evacuate
            # the leaving node, so the protocol always reaches the site.
            engine = chaos_db.enable_chaos(crashes=[CrashPlan(after_seconds=0.0, site=site)])
            with pytest.raises(FaultInjected):
                chaos_db.rebalance(remove=1)
            assert engine.faults[-1][0] == site
            outcomes = chaos_db.recover()
            assert outcomes, f"recovery after {site} repaired nothing"
            actions = {outcome.action for outcome in outcomes}
            if site in ABORT_SITES:
                assert "aborted" in actions
            else:
                assert actions <= {"committed", "already-done"}
            assert engine.recovery_seconds() is not None
            # Normalise both clusters to the baseline size with clean cycles
            # (the survivor may sit at baseline or baseline-1 depending on
            # whether recovery aborted or rolled the removal forward).
            chaos_db.rebalance(target_nodes=BASELINE_NODES + 1)
            chaos_db.rebalance(target_nodes=BASELINE_NODES)
            golden_db.rebalance(target_nodes=BASELINE_NODES + 1)
            golden_db.rebalance(target_nodes=BASELINE_NODES)

        assert chaos_db.num_nodes == golden_db.num_nodes == BASELINE_NODES
        assert fingerprint(chaos_db) == fingerprint(golden_db)
        runtime = chaos_db._cluster.dataset("orders")
        assert runtime.blocked is False
        assert all(not p.blocked for p in runtime.partitions.values())
        assert all(not p.pending_received for p in runtime.partitions.values())
