"""The [chaos] scenario section end to end: spec, run, record, replay."""

import pytest

from repro.scenario import (
    ScenarioSpecError,
    diff_chaos,
    diff_snapshots,
    diff_traces,
    parse_scenario,
    recording_payload,
    run_scenario,
)

CHAOS_SPEC = """
[scenario]
name = "storm"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 99
[cluster.lsm]
memory_component_bytes = "32 KiB"

[workload]
initial_records = 150
mix = "A"
keys = "zipfian"

[[workload.phases]]
name = "steady"
ops = 60

[[workload.phases]]
name = "partitioned"
ops = 80
rebalance = { add = 1 }

[trace]
enabled = true

[chaos]
stragglers = [{ node = "nc0", start = 0.0, duration = 10.0, multiplier = 3.0 }]
random_stragglers = 1
partitions = [{ start = 0.0, duration = 20.0, timeout_probability = 0.05 }]
crashes = [{ after_seconds = 0.0, site = "nc_fail_after_prepare" }]
bursts = [{ start = 0.0, duration = 10.0, factor = 1.5 }]

[[steps]]
kind = "rebalance"
remove = 1

[[steps]]
kind = "recover"

[checks]
datasets_unchanged_after_steps = true
recovered_within_seconds = 5.0
max_routing_miss_rate = 0.5
"""


@pytest.fixture(scope="module")
def storm():
    return run_scenario(parse_scenario(CHAOS_SPEC))


class TestChaosSection:
    def test_round_trips_through_canonical_mapping(self):
        spec = parse_scenario(CHAOS_SPEC)
        assert spec.chaos is not None
        rebuilt = type(spec).from_mapping(spec.to_mapping())
        assert rebuilt.chaos == spec.chaos

    def test_section_with_no_faults_is_rejected(self):
        with pytest.raises(ScenarioSpecError, match="declares no faults"):
            parse_scenario(
                CHAOS_SPEC.replace(
                    "[chaos]\n"
                    'stragglers = [{ node = "nc0", start = 0.0, duration = 10.0, multiplier = 3.0 }]\n'
                    "random_stragglers = 1\n"
                    'partitions = [{ start = 0.0, duration = 20.0, timeout_probability = 0.05 }]\n'
                    'crashes = [{ after_seconds = 0.0, site = "nc_fail_after_prepare" }]\n'
                    "bursts = [{ start = 0.0, duration = 10.0, factor = 1.5 }]\n",
                    "[chaos]\n",
                )
            )

    def test_crash_plans_reject_the_global_hashing_baseline(self):
        with pytest.raises(ScenarioSpecError, match="no\\s+interruptible protocol window"):
            parse_scenario(CHAOS_SPEC.replace('seed = 99', 'seed = 99\nstrategy = "hashing"'))

    def test_crash_plans_require_a_recover_step(self):
        headless = CHAOS_SPEC.replace('[[steps]]\nkind = "recover"\n\n', "")
        with pytest.raises(ScenarioSpecError, match="add a recover step"):
            parse_scenario(headless)

    def test_unknown_crash_site_fails_at_parse_time(self):
        with pytest.raises(ScenarioSpecError, match="site"):
            parse_scenario(CHAOS_SPEC.replace("nc_fail_after_prepare", "nc_catches_fire"))

    def test_chaos_crashes_satisfy_the_recover_step_precondition(self):
        """A recover step is legal with [[chaos.crashes]] and no expect_fault."""
        spec = parse_scenario(CHAOS_SPEC)
        assert not any(getattr(step, "expect_fault", False) for step in spec.steps)

    def test_strategy_override_cannot_smuggle_crashes_onto_the_baseline(self):
        """`--strategy hashing` re-validates: crash plans must fail cleanly,
        not detonate mid-run as an uncaught ConfigError."""
        spec = parse_scenario(CHAOS_SPEC)
        with pytest.raises(ScenarioSpecError, match="no\\s+interruptible protocol window"):
            spec.with_overrides(strategy="hashing")


class TestChaosRun:
    def test_crash_fires_and_recovery_is_measured(self, storm):
        assert storm.faulted_site == "nc_fail_after_prepare"
        assert storm.recovery_seconds is not None
        assert storm.recovery_seconds > 0.0

    def test_chaos_events_are_captured_in_declaration_time_order(self, storm):
        names = [event["event"] for event in storm.chaos_events]
        assert "chaos.straggler" in names
        assert "chaos.partition" in names
        assert "chaos.crash" in names
        assert "chaos.burst" in names
        ats = [event["at"] for event in storm.chaos_events]
        assert ats == sorted(ats)

    def test_all_checks_pass(self, storm):
        assert [check.passed for check in storm.checks] == [True, True, True]

    def test_retry_counters_reach_the_snapshot(self, storm):
        counters = dict(storm.snapshot.counters)
        assert counters.get("chaos.crash") == 1
        assert counters.get("retry.backoff", 0) > 0

    def test_recording_embeds_the_chaos_log(self, storm):
        payload = recording_payload(storm)
        assert payload["chaos"]["faulted_site"] == "nc_fail_after_prepare"
        assert payload["chaos"]["events"] == storm.chaos_events
        assert payload["chaos"]["recovery_seconds"] == storm.recovery_seconds


class TestChaosReplay:
    def test_rerun_is_zero_diff_in_snapshot_trace_and_chaos(self, storm):
        replayed = run_scenario(parse_scenario(CHAOS_SPEC))
        assert diff_snapshots(storm.snapshot, replayed.snapshot) == []
        assert diff_traces(storm.trace, replayed.trace) == []
        recorded = recording_payload(storm).get("chaos")
        again = recording_payload(replayed).get("chaos")
        assert diff_chaos(recorded, again) == []

    def test_diff_chaos_names_a_diverged_site(self, storm):
        recorded = recording_payload(storm)["chaos"]
        mutated = dict(recorded, faulted_site="cc_fail_after_commit")
        differences = diff_chaos(recorded, mutated)
        assert differences
        assert any("faulted_site" in line for line in differences)

    def test_diff_chaos_flags_one_sided_logs(self, storm):
        recorded = recording_payload(storm)["chaos"]
        assert diff_chaos(recorded, None) == ["chaos: missing from the replay"]
        assert diff_chaos(None, recorded) == ["chaos: missing from the recording"]
        assert diff_chaos(None, None) == []


class TestGoldensUnchanged:
    """Without [chaos], nothing chaos-related may perturb a run."""

    def test_chaos_free_recording_has_no_chaos_key(self):
        spec_text = """
        [scenario]
        name = "plain"
        [cluster]
        nodes = 2
        partitions_per_node = 2
        [cluster.lsm]
        memory_component_bytes = "32 KiB"
        [workload]
        initial_records = 40
        mix = "A"
        [[workload.phases]]
        name = "steady"
        ops = 30
        """
        result = run_scenario(parse_scenario(spec_text))
        payload = recording_payload(result)
        assert "chaos" not in payload
        assert result.chaos_events == []
        assert result.faulted_site is None
        counters = dict(result.snapshot.counters)
        assert not any(name.startswith(("chaos.", "retry.")) for name in counters)
