"""Unit tests for the deterministic chaos engine."""

import pytest

from repro.chaos import ChaosEngine, CrashPlan, LoadWindow, PartitionWindow, RetryPolicy, StragglerWindow
from repro.cluster.cost_model import CostModel
from repro.common.clock import SimulatedClock
from repro.common.errors import ConfigError
from repro.common.events import EventBus
from repro.rebalance.operation import FAULT_SITES

NODE_IDS = ("nc0", "nc1", "nc2")


def make_engine(seed=7, **kwargs):
    kwargs.setdefault("node_ids", NODE_IDS)
    return ChaosEngine(
        clock=kwargs.pop("clock", SimulatedClock()),
        cost=CostModel(),
        events=kwargs.pop("events", EventBus()),
        seed=seed,
        **kwargs,
    )


class TestConstruction:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ConfigError):
            make_engine(node_ids=())

    def test_unpinned_straggler_gets_a_node_from_the_chaos_stream(self):
        window = StragglerWindow(start=0.0, duration=5.0, multiplier=2.0)
        engine = make_engine(stragglers=[window])
        assert engine.stragglers[0].node in NODE_IDS

    def test_pinned_choices_survive_untouched(self):
        window = StragglerWindow(start=1.0, duration=2.0, multiplier=4.0, node="nc1")
        plan = CrashPlan(after_seconds=0.5, site="cc_fail_after_commit")
        engine = make_engine(stragglers=[window], crashes=[plan])
        assert engine.stragglers == [window]
        assert engine.crashes == [plan]

    def test_unknown_crash_site_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown crash site"):
            make_engine(crashes=[CrashPlan(after_seconds=0.0, site="nc_explodes")])

    def test_unpinned_crash_site_drawn_from_fault_sites(self):
        engine = make_engine(crashes=[CrashPlan(after_seconds=0.0)])
        assert engine.crashes[0].site in FAULT_SITES

    def test_same_seed_same_schedule_different_seed_diverges(self):
        def schedule(seed):
            engine = make_engine(
                seed=seed,
                stragglers=[StragglerWindow(start=0.0, duration=5.0, multiplier=2.0)],
                random_stragglers=3,
                crashes=[CrashPlan(after_seconds=0.0)],
            )
            return (tuple(engine.stragglers), tuple(engine.crashes))

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestStragglers:
    def test_scales_only_the_victim_inside_the_window(self):
        clock = SimulatedClock()
        engine = make_engine(
            clock=clock,
            stragglers=[StragglerWindow(start=0.0, duration=5.0, multiplier=3.0, node="nc0")],
        )
        scaled = engine.scale_node_seconds({"nc0": 1.0, "nc1": 1.0})
        assert scaled == {"nc0": 3.0, "nc1": 1.0}
        clock.advance(5.0)  # window is half-open: [start, start + duration)
        untouched = {"nc0": 1.0, "nc1": 1.0}
        assert engine.scale_node_seconds(untouched) is untouched

    def test_copy_on_write_leaves_caller_mapping_alone(self):
        engine = make_engine(
            stragglers=[StragglerWindow(start=0.0, duration=5.0, multiplier=3.0, node="nc0")]
        )
        original = {"nc0": 1.0}
        scaled = engine.scale_node_seconds(original)
        assert original == {"nc0": 1.0}
        assert scaled == {"nc0": 3.0}

    def test_announces_exactly_once_per_window(self):
        events = EventBus()
        seen = []
        events.on("chaos.straggler", seen.append)
        engine = make_engine(
            events=events,
            stragglers=[StragglerWindow(start=0.0, duration=5.0, multiplier=3.0, node="nc0")],
        )
        engine.scale_node_seconds({"nc0": 1.0})
        engine.scale_node_seconds({"nc0": 1.0})
        assert len(seen) == 1
        assert seen[0]["node"] == "nc0"
        assert seen[0]["multiplier"] == 3.0

    def test_active_stragglers_is_passive(self):
        """Timeline sampling reads the window state without emitting events."""
        events = EventBus()
        seen = []
        events.on("chaos.*", seen.append)
        engine = make_engine(
            events=events,
            stragglers=[StragglerWindow(start=0.0, duration=5.0, multiplier=3.0, node="nc0")],
        )
        assert engine.active_stragglers() == (("nc0", 3.0),)
        assert seen == []


class TestLoadShaping:
    def test_factors_multiply_across_open_windows(self):
        engine = make_engine(
            backpressure=[
                LoadWindow(start=0.0, duration=5.0, factor=2.0),
                LoadWindow(start=0.0, duration=5.0, factor=1.5),
            ],
            bursts=[LoadWindow(start=0.0, duration=5.0, factor=1.25)],
        )
        assert engine.ingest_factor() == pytest.approx(3.0)
        assert engine.client_factor() == pytest.approx(1.25)

    def test_factor_is_one_outside_every_window(self):
        clock = SimulatedClock()
        engine = make_engine(
            clock=clock, bursts=[LoadWindow(start=1.0, duration=2.0, factor=4.0)]
        )
        assert engine.client_factor() == 1.0
        clock.advance(1.5)
        assert engine.client_factor() == 4.0
        clock.advance(2.0)
        assert engine.client_factor() == 1.0


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_seconds=0.01, backoff_cap_seconds=0.05)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.04)
        assert policy.delay(4) == pytest.approx(0.05)  # capped
        assert policy.delay(5) == pytest.approx(0.05)


class TestCrashes:
    def test_due_plans_are_consumed_once_and_announced(self):
        clock = SimulatedClock()
        events = EventBus()
        seen = []
        events.on("chaos.crash", seen.append)
        engine = make_engine(
            clock=clock,
            events=events,
            crashes=[
                CrashPlan(after_seconds=0.0, site="nc_fail_before_prepare"),
                CrashPlan(after_seconds=10.0, site="cc_fail_after_commit"),
            ],
        )
        assert engine.due_crash_sites() == ["nc_fail_before_prepare"]
        assert engine.due_crash_sites() == []  # consumed: one plan, one kill
        assert [plan.site for plan in engine.crashes] == ["cc_fail_after_commit"]
        clock.advance(10.0)
        assert engine.due_crash_sites() == ["cc_fail_after_commit"]
        assert [event["site"] for event in seen] == [
            "nc_fail_before_prepare",
            "cc_fail_after_commit",
        ]

    def test_recovery_seconds_spans_fault_to_recovery(self):
        clock = SimulatedClock()
        engine = make_engine(clock=clock, crashes=[CrashPlan(after_seconds=0.0, site="cc_fail_before_commit")])
        assert engine.recovery_seconds() is None
        engine.due_crash_sites()
        clock.advance(1.0)
        engine.on_fault("cc_fail_before_commit")
        fault_at = clock.now
        engine.charge_recovery(outcomes=[object()])
        assert clock.now > fault_at  # recovery round trips cost time
        assert engine.recovery_seconds() == pytest.approx(clock.now - fault_at)
