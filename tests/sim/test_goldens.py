"""Committed interleaved recordings must replay zero-diff, forever.

The goldens under ``goldens/`` are full recordings (snapshot + clock-anchored
trace + chaos log) of smoke-scale scenarios run on the interleaved engine —
the discrete-event twin of the determinism contract the example-spec tests
pin for the legacy engine.  They are regenerated only deliberately, via
``python scripts/regen_goldens.py``.
"""

from pathlib import Path

import pytest

from repro.scenario import (
    diff_chaos,
    diff_snapshots,
    diff_traces,
    load_recording,
    run_scenario,
    snapshot_from_recording,
    spec_from_recording,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_PATHS = sorted(GOLDEN_DIR.glob("*.json"))


def test_the_interleaved_goldens_are_committed():
    names = {path.name for path in GOLDEN_PATHS}
    assert {"chaos_storm.interleaved.json", "traced_rebalance.interleaved.json"} <= names


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=lambda p: p.stem)
def test_golden_embeds_the_interleaved_engine(path):
    spec = spec_from_recording(load_recording(path))
    assert spec.concurrency == "interleaved"


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=lambda p: p.stem)
def test_golden_replays_zero_diff(path):
    document = load_recording(path)
    # The embedded spec carries concurrency = "interleaved", so the replay
    # selects the event-scheduler engine on its own.
    replayed = run_scenario(spec_from_recording(document), seed=document["seed"])
    assert diff_snapshots(snapshot_from_recording(document), replayed.snapshot) == []
    assert diff_traces(document.get("trace"), replayed.trace) == []
    recorded_chaos = document.get("chaos")
    replayed_chaos = (
        {
            "events": [dict(event) for event in replayed.chaos_events],
            "faulted_site": replayed.faulted_site,
            "recovery_seconds": replayed.recovery_seconds,
        }
        if replayed.chaos_events
        else None
    )
    assert diff_chaos(recorded_chaos, replayed_chaos) == []


def test_golden_trace_contains_overlapping_move_and_op_spans():
    """The committed trace itself must prove the interleaving (Fig 7c setup).

    Only chaos_storm qualifies: its rebalance runs *inside* a workload phase,
    so foreground ops share the clock with bucket moves.  traced_rebalance
    resizes via post-workload steps — nothing to overlap with, by design.
    """
    spans = load_recording(GOLDEN_DIR / "chaos_storm.interleaved.json")["trace"]["spans"]
    moves = [s for s in spans if s["name"].startswith("move/")]
    ops = [s for s in spans if s["cat"] == "ops"]
    assert any(
        max(m["start"], o["start"]) < min(m["start"] + m["dur"], o["start"] + o["dur"])
        for m in moves
        for o in ops
    ), "committed golden shows no move/op overlap"
