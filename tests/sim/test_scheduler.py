"""Property tests for the discrete-event scheduler (repro.sim).

The scheduler's determinism contract (see the module docstring of
:mod:`repro.sim.scheduler`) decomposes into heap-drain totality, seq-order
dispatch of equal-time events, monotone observed fire times, and
hash-seed independence of the dispatch log.  Hypothesis drives the first
three over random actor populations; the last is pinned behaviourally by
rerunning the same schedule in subprocesses under different
``PYTHONHASHSEED`` salts and comparing the logged bytes.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimulatedClock
from repro.sim import Actor, EventScheduler, SimSchedulerError, SimSegment, stream_rng

# Non-negative, finite simulated durations.  Bounded so sums stay exact
# enough for monotonicity comparisons.
durations = st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False)
# One actor = the sequence of durations it will yield.
actor_scripts = st.lists(st.lists(durations, max_size=8), min_size=1, max_size=8)


def scripted_actor(script):
    """A generator actor that yields each scripted duration, returns the count."""

    def gen():
        for delay in script:
            yield delay
        return len(script)

    return gen()


class TestDrain:
    @settings(max_examples=50, deadline=None)
    @given(actor_scripts)
    def test_random_actor_populations_always_drain(self, scripts):
        scheduler = EventScheduler()
        actors = [
            scheduler.spawn(f"actor-{index}", scripted_actor(script))
            for index, script in enumerate(scripts)
        ]
        scheduler.run()
        assert scheduler.pending == 0
        assert all(actor.finished for actor in actors)
        assert [actor.result for actor in actors] == [len(script) for script in scripts]
        # Each actor dispatches once per yield plus the StopIteration step.
        assert len(scheduler.dispatch_log) == sum(len(script) + 1 for script in scripts)

    @settings(max_examples=50, deadline=None)
    @given(actor_scripts, st.lists(durations, max_size=8))
    def test_mixed_actors_and_callbacks_drain(self, scripts, callback_delays):
        scheduler = EventScheduler()
        fired = []
        for index, script in enumerate(scripts):
            scheduler.spawn(f"actor-{index}", scripted_actor(script))
        for index, delay in enumerate(callback_delays):
            scheduler.call_later(delay, lambda index=index: fired.append(index), label=f"cb-{index}")
        scheduler.run()
        assert scheduler.pending == 0
        assert sorted(fired) == list(range(len(callback_delays)))


class TestTiebreak:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=20))
    def test_equal_time_events_dispatch_in_scheduling_order(self, count):
        scheduler = EventScheduler()
        order = []
        for index in range(count):
            scheduler.call_at(1.0, lambda index=index: order.append(index), label=f"cb-{index}")
        scheduler.run()
        assert order == list(range(count))
        seqs = [seq for _, seq, _ in scheduler.dispatch_log]
        assert seqs == sorted(seqs)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=5))
    def test_cooperative_zero_yields_round_robin_in_spawn_order(self, actors, rounds):
        # Every actor yields 0.0 `rounds` times: all events are due at t=0,
        # so the seq tiebreak alone decides the order — strict round-robin.
        scheduler = EventScheduler()
        trace = []

        def chatty(name):
            for _ in range(rounds):
                trace.append(name)
                yield 0.0

        for index in range(actors):
            scheduler.spawn(f"actor-{index}", chatty(index))
        scheduler.run()
        expected = [index for _ in range(rounds) for index in range(actors)]
        assert trace == expected

    @settings(max_examples=50, deadline=None)
    @given(actor_scripts)
    def test_seq_breaks_every_equal_timestamp_tie(self, scripts):
        scheduler = EventScheduler()
        for index, script in enumerate(scripts):
            scheduler.spawn(f"actor-{index}", scripted_actor(script))
        scheduler.run()
        log = scheduler.dispatch_log
        for (t_a, seq_a, _), (t_b, seq_b, _) in zip(log, log[1:]):
            if t_a == t_b:
                assert seq_a < seq_b


class TestMonotonicity:
    @settings(max_examples=50, deadline=None)
    @given(actor_scripts, st.lists(durations, max_size=8))
    def test_dispatch_timestamps_never_go_backwards(self, scripts, callback_delays):
        scheduler = EventScheduler()
        for index, script in enumerate(scripts):
            scheduler.spawn(f"actor-{index}", scripted_actor(script))
        for index, delay in enumerate(callback_delays):
            scheduler.call_later(delay, lambda: None, label=f"cb-{index}")
        scheduler.run()
        times = [timestamp for timestamp, _, _ in scheduler.dispatch_log]
        assert times == sorted(times)
        assert not times or scheduler.clock.now >= times[-1]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(durations, min_size=1, max_size=10))
    def test_clock_lands_on_last_due_time(self, delays):
        scheduler = EventScheduler()

        def worker():
            for delay in delays:
                yield delay

        scheduler.spawn("worker", worker())
        scheduler.run()
        assert scheduler.clock.now == pytest.approx(sum(delays))


class TestYieldProtocol:
    def test_segment_objects_supply_their_seconds(self):
        scheduler = EventScheduler()

        def worker():
            yield SimSegment("move", 2.5, remaining=1)
            yield SimSegment("move", 1.5)

        scheduler.spawn("worker", worker())
        scheduler.run()
        assert scheduler.clock.now == pytest.approx(4.0)

    def test_none_is_a_pure_cooperative_yield(self):
        scheduler = EventScheduler()

        def worker():
            yield None
            yield None

        scheduler.spawn("worker", worker())
        scheduler.run()
        assert scheduler.clock.now == 0.0

    @pytest.mark.parametrize("bad", [-1.0, "soon", True, object()])
    def test_bad_yields_raise(self, bad):
        scheduler = EventScheduler()

        def worker():
            yield bad

        scheduler.spawn("worker", worker())
        with pytest.raises(SimSchedulerError):
            scheduler.run()

    def test_actor_exceptions_propagate(self):
        scheduler = EventScheduler()

        def worker():
            yield 1.0
            raise ValueError("boom")

        scheduler.spawn("worker", worker())
        with pytest.raises(ValueError, match="boom"):
            scheduler.run()

    def test_call_at_rejects_the_past(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        scheduler = EventScheduler(clock)
        with pytest.raises(SimSchedulerError):
            scheduler.call_at(1.0, lambda: None)

    def test_call_later_rejects_negative_delay(self):
        scheduler = EventScheduler()
        with pytest.raises(SimSchedulerError):
            scheduler.call_later(-0.5, lambda: None)

    def test_actor_repr_and_result(self):
        scheduler = EventScheduler()

        def worker():
            yield 1.0
            return "done"

        actor = scheduler.spawn("worker", worker())
        assert isinstance(actor, Actor)
        scheduler.run()
        assert actor.finished and actor.result == "done"


class TestStreamRng:
    def test_streams_are_independent_and_reproducible(self):
        a1 = [stream_rng("alpha", 7).random() for _ in range(4)]
        a2 = [stream_rng("alpha", 7).random() for _ in range(4)]
        b = [stream_rng("beta", 7).random() for _ in range(4)]
        assert a1 == a2
        assert a1 != b


# One fixed schedule, driven by partitioned RNG streams, printed as the
# dispatch log.  Run under different hash salts the output must be
# byte-identical: nothing in the scheduler may depend on object hashing.
_HASHSEED_PROBE = """\
from repro.sim import EventScheduler, stream_rng

scheduler = EventScheduler()

def worker(name, seed):
    rng = stream_rng(name, seed)
    for _ in range(20):
        yield rng.random() * 0.25

for index in range(6):
    scheduler.spawn(f"worker-{index}", worker(f"worker-{index}", 42))
scheduler.call_later(0.5, lambda: None, label="checkpoint")
scheduler.run()
for timestamp, seq, label in scheduler.dispatch_log:
    print(f"{timestamp!r} {seq} {label}")
"""


def _dispatch_log_bytes(hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_PROBE],
        capture_output=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestHashSeedIndependence:
    def test_dispatch_log_bytes_identical_across_hash_salts(self):
        assert _dispatch_log_bytes("1") == _dispatch_log_bytes("4242")
