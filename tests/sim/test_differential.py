"""Differential harness: legacy vs interleaved over every committed scenario.

The two execution engines walk completely different control flow — the
legacy engine runs each rebalance to completion inside the driver's phase
loop, the interleaved engine slices it bucket-by-bucket on the
:mod:`repro.sim` event scheduler — but they execute the *same protocol*
against the *same RNG draws*.  For every spec under ``examples/scenarios/``
(at smoke scale) this pins the invariants that must survive the engine
swap:

* identical final dataset contents (row-level sha256 fingerprints),
* identical per-verb op and record counters (including the
  steady/rebalance phase splits),
* identical chaos schedules (clock positions excluded: *when* a window is
  announced shifts with the engine, *what* is injected may not),

plus the paper's Figure 7c shape on the interleaved side: foreground write
p99 during a rebalance is no better than steady-state write p99.
"""

import json
from pathlib import Path

import pytest

from repro.metrics.histogram import LatencyHistogram
from repro.scenario import load_scenario, run_scenario

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
SPEC_PATHS = sorted(SCENARIO_DIR.glob("*.toml"))

#: Counter prefixes that must be engine-independent.  Deliberately excludes
#: ``rebalance.phase.*`` bookkeeping (the interleaved engine may observe a
#: different number of in-flight phase transitions under chaos) and every
#: clock-derived quantity.
PINNED_COUNTER_PREFIXES = ("ops.", "records.", "ingest.", "datasets.")


def _run_both(path):
    spec = load_scenario(path).scaled_down()
    legacy = run_scenario(spec)
    interleaved = run_scenario(spec, concurrency="interleaved")
    return legacy, interleaved


def _pinned_counters(snapshot):
    return {
        key: value
        for key, value in snapshot.counters.items()
        if key.startswith(PINNED_COUNTER_PREFIXES)
    }


def _canonical_chaos(events):
    """Chaos events as a canonical multiset, clock positions stripped.

    ``at`` is the runner's observation clock (engine-dependent); the
    payload — what was injected, where, with which declared window — is
    the schedule the engines must share.
    """
    canonical = [
        json.dumps({k: v for k, v in event.items() if k != "at"}, sort_keys=True, default=str)
        for event in events
    ]
    return sorted(canonical)


@pytest.mark.parametrize("path", SPEC_PATHS, ids=lambda p: p.stem)
class TestEngineEquivalence:
    def test_final_dataset_contents_identical(self, path):
        legacy, interleaved = _run_both(path)
        assert legacy.dataset_fingerprints, "runner produced no fingerprints"
        assert legacy.dataset_fingerprints == interleaved.dataset_fingerprints

    def test_per_verb_op_counts_identical(self, path):
        legacy, interleaved = _run_both(path)
        pinned = _pinned_counters(legacy.snapshot)
        # Pure rebalance benchmarks (e.g. elastic_scaling) run no ops at
        # smoke scale; ingest/dataset counters still pin the engines.
        assert pinned, "scenario recorded no pinned counters"
        assert pinned == _pinned_counters(interleaved.snapshot)

    def test_chaos_schedules_identical(self, path):
        legacy, interleaved = _run_both(path)
        assert _canonical_chaos(legacy.chaos_events) == _canonical_chaos(
            interleaved.chaos_events
        )


# Scenarios whose smoke-scale run records foreground writes both during a
# rebalance and at steady state — the precondition for the Figure 7c check.
FIG7C_SCENARIOS = ["chaos_storm", "traffic_storm"]


@pytest.mark.parametrize("name", FIG7C_SCENARIOS)
def test_interleaved_write_p99_during_rebalance_at_least_steady(name):
    spec = load_scenario(SCENARIO_DIR / f"{name}.toml").scaled_down()
    result = run_scenario(spec, concurrency="interleaved")
    histograms = result.snapshot.histograms
    assert "update[rebalance]" in histograms, "no writes landed during a rebalance"
    rebalance = LatencyHistogram.from_snapshot(histograms["update[rebalance]"])
    steady = LatencyHistogram.from_snapshot(histograms["update[steady]"])
    assert rebalance.count and steady.count
    assert rebalance.percentile(0.99) >= steady.percentile(0.99)


def test_interleaved_rebalance_has_genuine_overlap():
    """A traced interleaved run must show a move span overlapping an op span.

    This is the whole point of the engine: data movement and foreground
    traffic sharing the clock.  The clock-anchored trace layout makes the
    overlap observable (see ``Tracer``); legacy layout by construction
    cannot produce one, so this doubles as a regression gate on the
    anchored mode staying wired up in the runner.
    """
    spec = load_scenario(SCENARIO_DIR / "chaos_storm.toml")
    result = run_scenario(spec, concurrency="interleaved")
    spans = result.trace["spans"]
    moves = [s for s in spans if s["name"].startswith("move/")]
    ops = [s for s in spans if s["cat"] == "ops"]
    assert moves and ops
    assert any(
        max(m["start"], o["start"]) < min(m["start"] + m["dur"], o["start"] + o["dur"])
        for m in moves
        for o in ops
    ), "no move span overlaps any ops span"
