"""Tests for the simulated cluster facade (CC + NCs, datasets, ingestion)."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import (
    ClusterError,
    DatasetExistsError,
    UnknownDatasetError,
    UnknownNodeError,
)
from repro.cluster.controller import SimulatedCluster
from repro.cluster.dataset import SecondaryIndexSpec


def small_config(num_nodes=2, partitions_per_node=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=partitions_per_node,
        lsm=LSMConfig(memory_component_bytes=8192),
        bucketing=BucketingConfig(max_bucket_bytes=1 << 20, initial_buckets_per_partition=1),
    )


def rows(count, start=0):
    return [
        {"o_orderkey": key, "o_orderdate": f"1995-01-{(key % 28) + 1:02d}", "o_custkey": key % 100}
        for key in range(start, start + count)
    ]


class TestTopology:
    def test_nodes_and_partitions_created(self):
        cluster = SimulatedCluster(small_config(num_nodes=3, partitions_per_node=4))
        assert cluster.num_nodes == 3
        assert cluster.total_partitions == 12
        assert cluster.partition_ids() == list(range(12))
        assert cluster.node_of_partition(5).node_id == "nc1"

    def test_node_lookup(self):
        cluster = SimulatedCluster(small_config())
        assert cluster.node("nc0").node_id == "nc0"
        with pytest.raises(UnknownNodeError):
            cluster.node("nc99")

    def test_node_of_unknown_partition(self):
        cluster = SimulatedCluster(small_config(num_nodes=1))
        with pytest.raises(UnknownNodeError):
            cluster.node_of_partition(99)


class TestDatasets:
    def test_create_dataset_builds_partitions_everywhere(self):
        cluster = SimulatedCluster(small_config())
        runtime = cluster.create_dataset("orders", "o_orderkey")
        assert set(runtime.partitions.keys()) == set(cluster.partition_ids())
        assert runtime.routing_mode == "directory"
        assert runtime.global_directory is not None
        # Every partition received the buckets the directory assigns it.
        for pid, partition in runtime.partitions.items():
            assert set(partition.primary.bucket_ids) == set(
                runtime.global_directory.buckets_of_partition(pid)
            )

    def test_duplicate_dataset_rejected(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        with pytest.raises(DatasetExistsError):
            cluster.create_dataset("orders", "o_orderkey")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(UnknownDatasetError):
            SimulatedCluster(small_config()).dataset("ghost")

    def test_drop_dataset(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        cluster.drop_dataset("orders")
        assert cluster.dataset_names() == []

    def test_dataset_with_secondary_indexes(self):
        cluster = SimulatedCluster(small_config())
        runtime = cluster.create_dataset(
            "orders",
            "o_orderkey",
            [SecondaryIndexSpec("idx_orderdate", ("o_orderdate",))],
        )
        partition = next(iter(runtime.partitions.values()))
        assert "idx_orderdate" in partition.secondary_indexes


class TestIngestAndLookup:
    def test_ingest_and_point_lookup(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        report = cluster.feed("orders").ingest(rows(500))
        assert report.records == 500
        assert report.simulated_seconds > 0
        assert cluster.record_count("orders") == 500
        assert cluster.point_lookup("orders", 123)["o_custkey"] == 23

    def test_ingest_distributes_across_partitions(self):
        cluster = SimulatedCluster(small_config(num_nodes=2, partitions_per_node=2))
        cluster.create_dataset("orders", "o_orderkey")
        report = cluster.feed("orders").ingest(rows(2000))
        populated = [pid for pid, count in report.per_partition_records.items() if count > 0]
        assert len(populated) == 4
        counts = list(report.per_partition_records.values())
        assert max(counts) / max(1, min(counts)) < 2.0  # hash balance

    def test_ingest_report_per_node_times(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        report = cluster.feed("orders").ingest(rows(200))
        assert set(report.per_node_seconds.keys()) == {"nc0", "nc1"}
        assert report.simulated_seconds >= max(report.per_node_seconds.values())
        assert report.bottleneck_node in ("nc0", "nc1")

    def test_lookup_missing_key(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        cluster.feed("orders").ingest(rows(10))
        assert cluster.point_lookup("orders", 10_000) is None

    def test_partitions_by_node_grouping(self):
        cluster = SimulatedCluster(small_config(num_nodes=2, partitions_per_node=2))
        cluster.create_dataset("orders", "o_orderkey")
        grouped = cluster.partitions_by_node("orders")
        assert set(grouped.keys()) == {"nc0", "nc1"}
        assert all(len(partitions) == 2 for partitions in grouped.values())

    def test_describe(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        cluster.feed("orders").ingest(rows(50))
        description = cluster.describe()
        assert description["nodes"] == 2
        assert description["datasets"]["orders"]["records"] == 50

    def test_workload_scale_inflates_times(self):
        small = SimulatedCluster(small_config(), workload_scale=1.0)
        big = SimulatedCluster(small_config(), workload_scale=100.0)
        for cluster in (small, big):
            cluster.create_dataset("orders", "o_orderkey")
        small_report = small.feed("orders").ingest(rows(200))
        big_report = big.feed("orders").ingest(rows(200))
        # Node-level work scales linearly with the workload multiplier; only
        # the fixed RPC latency term does not.
        assert max(big_report.per_node_seconds.values()) > 50 * max(
            small_report.per_node_seconds.values()
        )


class TestProvisionDecommission:
    def test_provision_adds_empty_partitions(self):
        cluster = SimulatedCluster(small_config(num_nodes=2, partitions_per_node=2))
        cluster.create_dataset("orders", "o_orderkey")
        new_nodes = cluster.provision_nodes(3)
        assert cluster.num_nodes == 3
        assert len(new_nodes) == 1
        runtime = cluster.dataset("orders")
        for pid in new_nodes[0].partition_ids:
            assert runtime.partitions[pid].primary.bucket_count == 0

    def test_provision_cannot_shrink(self):
        cluster = SimulatedCluster(small_config(num_nodes=2))
        with pytest.raises(ClusterError):
            cluster.provision_nodes(1)

    def test_decommission_empty_nodes(self):
        cluster = SimulatedCluster(small_config(num_nodes=3, partitions_per_node=2))
        cluster.create_dataset("orders", "o_orderkey")
        removed = cluster.decommission_nodes(2)
        assert cluster.num_nodes == 2
        assert [node.node_id for node in removed] == ["nc2"]

    def test_decommission_rejects_nodes_with_data(self):
        cluster = SimulatedCluster(small_config(num_nodes=2, partitions_per_node=2))
        cluster.create_dataset("orders", "o_orderkey")
        cluster.feed("orders").ingest(rows(200))
        with pytest.raises(ClusterError):
            cluster.decommission_nodes(1)

    def test_decommission_cannot_remove_all_nodes(self):
        cluster = SimulatedCluster(small_config(num_nodes=1))
        with pytest.raises(ClusterError):
            cluster.decommission_nodes(0)

    def test_rebalance_without_strategy_rejected(self):
        cluster = SimulatedCluster(small_config())
        cluster.create_dataset("orders", "o_orderkey")
        with pytest.raises(ClusterError):
            cluster.remove_nodes(1)
