"""Tests for the grouped feed-ingest pipeline (PR 4).

``DataFeed.ingest`` now routes rows in arrival order but lands each batch
grouped by target partition through ``StoragePartition.insert_many``.  The
grouping is an implementation detail: reports, storage state, and cost
accounting must match the retired row-at-a-time loop exactly.
"""

from repro.api import ClusterConfig, Database
from repro.cluster.partition import StoragePartition
from repro.cluster.dataset import DatasetSpec
from repro.common.hashutil import hash_key
from repro.hashing.bucket_id import ROOT_BUCKET


def open_db(**overrides):
    return Database(
        ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash", **overrides)
    )


def rows_for(count):
    return [{"k": index, "payload": f"{index:08d}" + "y" * 40} for index in range(count)]


class TestInsertManyEquivalence:
    def _fresh_partition(self):
        spec = DatasetSpec(name="t", primary_key=("k",))
        return StoragePartition(spec, partition_id=0, node_id="nc0", initial_buckets=[ROOT_BUCKET])

    def test_insert_many_equals_looped_insert(self):
        data = rows_for(200)
        looped = self._fresh_partition()
        for row in data:
            looped.insert(row)
        batched = self._fresh_partition()
        batched.insert_many((row["k"], hash_key(row["k"]), row) for row in data)
        assert batched.record_count() == looped.record_count()
        assert batched.size_bytes == looped.size_bytes
        assert batched.stats_snapshot() == looped.stats_snapshot()
        # WAL parity: same record types and payload keys, in the same order.
        assert [
            (r.record_type, r.payload["key"]) for r in batched.wal.records()
        ] == [(r.record_type, r.payload["key"]) for r in looped.wal.records()]

    def test_insert_with_precomputed_key_matches_extraction(self):
        partition = self._fresh_partition()
        partition.insert({"k": 1, "v": "a"})
        partition.insert({"k": 2, "v": "b"}, primary_key=2)
        assert partition.lookup(1) == {"k": 1, "v": "a"}
        assert partition.lookup(2) == {"k": 2, "v": "b"}


class TestGroupedIngest:
    def test_grouped_ingest_report_fields(self):
        db = open_db()
        db.create_dataset("t", primary_key="k")
        report = db.cluster.feed("t", batch_size=64).ingest(rows_for(500))
        assert report.records == 500
        assert sum(report.per_partition_records.values()) == 500
        assert report.bytes_ingested > 0
        assert report.simulated_seconds > 0
        # Every row is durably routed: the cluster can read them all back.
        dataset = db.dataset("t")
        assert dataset.count() == 500
        assert dataset.get(499)["k"] == 499
        db.close()

    def test_batch_boundaries_preserved_against_reference(self):
        """Two ingests of the same rows with different batch sizes differ in
        maintenance cadence — but the same batch size is deterministic."""
        reports = []
        for _ in range(2):
            db = open_db()
            db.create_dataset("t", primary_key="k")
            reports.append(db.cluster.feed("t", batch_size=128).ingest(rows_for(800)))
            db.close()
        first, second = reports
        assert first.simulated_seconds == second.simulated_seconds
        assert first.per_partition_records == second.per_partition_records
        assert first.flush_bytes == second.flush_bytes
        assert first.splits == second.splits

    def test_maintain_false_still_lands_all_rows(self):
        db = open_db()
        db.create_dataset("t", primary_key="k")
        feed = db.cluster.feed("t", batch_size=32)
        feed.ingest(rows_for(100), maintain=False)
        assert db.dataset("t").count() == 100
        db.close()

    def test_ingest_start_skipped_without_subscribers(self):
        """The registry subscribes to ingest.complete only; ingest.start is
        emitted solely when someone listens."""
        db = open_db()
        db.create_dataset("t", primary_key="k")
        starts = []
        subscription = db.on("ingest.start", starts.append)
        db.cluster.feed("t", batch_size=32).ingest(rows_for(10))
        subscription.cancel()
        db.cluster.feed("t", batch_size=32).ingest(rows_for(10))
        assert len(starts) == 1
        db.close()
