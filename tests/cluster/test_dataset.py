"""Tests for dataset and secondary index specifications."""

import pytest

from repro.common.errors import ConfigError
from repro.cluster.dataset import DatasetSpec, SecondaryIndexSpec


class TestSecondaryIndexSpec:
    def test_secondary_key_extraction(self):
        spec = SecondaryIndexSpec("idx_shipdate", ("l_shipdate", "l_partkey"))
        record = {"l_shipdate": "1995-01-01", "l_partkey": 7, "l_quantity": 3}
        assert spec.secondary_key(record) == ("1995-01-01", 7)

    def test_covered_value(self):
        spec = SecondaryIndexSpec("idx", ("a",), included_fields=("b", "c"))
        assert spec.covered_value({"a": 1, "b": 2, "c": 3, "d": 4}) == {"b": 2, "c": 3}

    def test_requires_name_and_keys(self):
        with pytest.raises(ConfigError):
            SecondaryIndexSpec("", ("a",))
        with pytest.raises(ConfigError):
            SecondaryIndexSpec("idx", ())


class TestDatasetSpec:
    def test_create_with_scalar_primary_key(self):
        spec = DatasetSpec.create("orders", "o_orderkey")
        assert spec.primary_key == ("o_orderkey",)
        assert not spec.has_composite_key
        assert spec.primary_key_of({"o_orderkey": 42, "x": 1}) == 42

    def test_create_with_composite_primary_key(self):
        spec = DatasetSpec.create("lineitem", ["l_orderkey", "l_linenumber"])
        assert spec.has_composite_key
        assert spec.primary_key_of({"l_orderkey": 5, "l_linenumber": 2}) == (5, 2)

    def test_secondary_index_lookup(self):
        index = SecondaryIndexSpec("idx", ("a",))
        spec = DatasetSpec.create("d", "pk", [index])
        assert spec.index("idx") is index
        assert spec.index_names() == ["idx"]
        with pytest.raises(ConfigError):
            spec.index("missing")

    def test_duplicate_index_names_rejected(self):
        with pytest.raises(ConfigError):
            DatasetSpec.create(
                "d", "pk", [SecondaryIndexSpec("idx", ("a",)), SecondaryIndexSpec("idx", ("b",))]
            )

    def test_requires_name_and_primary_key(self):
        with pytest.raises(ConfigError):
            DatasetSpec(name="", primary_key=("a",))
        with pytest.raises(ConfigError):
            DatasetSpec(name="d", primary_key=())
