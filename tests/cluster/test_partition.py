"""Tests for the storage partition (primary + pk + secondary indexes, rebalance hooks)."""

import pytest

from repro.common.config import BucketingConfig, LSMConfig
from repro.common.errors import StorageError
from repro.cluster.dataset import DatasetSpec, SecondaryIndexSpec
from repro.cluster.partition import StoragePartition
from repro.hashing.bucket_id import BucketId, ROOT_BUCKET
from repro.lsm.entry import Entry


def orders_spec():
    return DatasetSpec.create(
        "orders",
        "o_orderkey",
        [
            SecondaryIndexSpec(
                "idx_orderdate", ("o_orderdate",), included_fields=("o_custkey",)
            )
        ],
    )


def make_partition(spec=None, initial_depth=1, memory_bytes=1 << 20, max_bucket_bytes=1 << 30):
    spec = spec or orders_spec()
    initial = (
        [ROOT_BUCKET]
        if initial_depth == 0
        else [BucketId(p, initial_depth) for p in range(1 << initial_depth)]
    )
    return StoragePartition(
        dataset=spec,
        partition_id=0,
        node_id="nc0",
        initial_buckets=initial,
        lsm_config=LSMConfig(memory_component_bytes=memory_bytes),
        bucketing_config=BucketingConfig(max_bucket_bytes=max_bucket_bytes),
    )


def order_row(key, date="1995-01-01", custkey=7):
    return {"o_orderkey": key, "o_orderdate": date, "o_custkey": custkey, "o_totalprice": 100.0}


class TestWriteAndRead:
    def test_insert_populates_all_indexes(self):
        partition = make_partition()
        partition.insert(order_row(1))
        assert partition.lookup(1)["o_orderdate"] == "1995-01-01"
        assert partition.count_keys() == 1
        secondary_entries = list(partition.scan_secondary("idx_orderdate"))
        assert len(secondary_entries) == 1
        assert secondary_entries[0].key == ("1995-01-01", 1)
        assert secondary_entries[0].value == {"o_custkey": 7}

    def test_insert_appends_wal_record(self):
        partition = make_partition()
        partition.insert(order_row(1))
        records = partition.wal.records()
        assert len(records) == 1
        assert records[0].payload["key"] == 1

    def test_insert_without_logging(self):
        partition = make_partition()
        partition.insert(order_row(1), log=False)
        assert len(partition.wal) == 0

    def test_delete_removes_from_all_indexes(self):
        partition = make_partition()
        partition.insert(order_row(1))
        partition.delete(1)
        assert partition.lookup(1) is None
        assert partition.count_keys() == 0
        assert list(partition.scan_secondary("idx_orderdate")) == []

    def test_delete_uses_supplied_old_record(self):
        partition = make_partition()
        row = order_row(2, date="1996-06-06")
        partition.insert(row)
        partition.delete(2, record=row)
        assert list(partition.scan_secondary("idx_orderdate")) == []

    def test_scan_primary_ordered(self):
        partition = make_partition()
        for key in (5, 3, 9, 1):
            partition.insert(order_row(key))
        keys = [e.key for e in partition.scan_primary(ordered=True)]
        assert keys == [1, 3, 5, 9]

    def test_scan_secondary_unknown_index(self):
        partition = make_partition()
        with pytest.raises(StorageError):
            list(partition.scan_secondary("nope"))

    def test_record_count_and_size(self):
        partition = make_partition()
        for key in range(20):
            partition.insert(order_row(key))
        assert partition.record_count() == 20
        assert partition.size_bytes > 0


class TestMaintenance:
    def test_maintain_flushes_when_over_budget(self):
        partition = make_partition(memory_bytes=512)
        for key in range(50):
            partition.insert(order_row(key))
        report = partition.maintain()
        assert report.flush_bytes > 0
        assert partition.memory_bytes < 512 or partition.memory_bytes == 0

    def test_force_flush(self):
        partition = make_partition()
        partition.insert(order_row(1))
        report = partition.maintain(force_flush=True)
        assert report.flush_bytes > 0

    def test_splits_happen_through_maintain(self):
        partition = make_partition(memory_bytes=512, max_bucket_bytes=4096)
        for key in range(400):
            partition.insert(order_row(key))
            if key % 50 == 0:
                partition.maintain()
        partition.maintain()
        assert partition.primary.bucket_count > 2

    def test_stats_snapshot_accumulates_all_indexes(self):
        partition = make_partition()
        for key in range(10):
            partition.insert(order_row(key))
        stats = partition.stats_snapshot()
        # primary + pk index + secondary index all received the writes.
        assert stats.records_written == 30


class TestBlockedPartition:
    def test_blocked_partition_rejects_io(self):
        partition = make_partition()
        partition.insert(order_row(1))
        partition.block()
        with pytest.raises(StorageError):
            partition.insert(order_row(2))
        with pytest.raises(StorageError):
            partition.lookup(1)
        partition.unblock()
        assert partition.lookup(1) is not None


class TestRebalanceSourceSide:
    def test_snapshot_and_scan_bucket(self):
        partition = make_partition()
        for key in range(40):
            partition.insert(order_row(key))
        bucket_id = partition.primary.bucket_ids[0]
        snapshot = partition.snapshot_bucket(bucket_id)
        entries = partition.scan_bucket_snapshot(snapshot)
        assert all(bucket_id.contains_key(e.key) for e in entries)
        assert len(entries) == sum(1 for k in range(40) if bucket_id.contains_key(k))
        partition.release_bucket_snapshot(snapshot)

    def test_cleanup_moved_bucket_is_idempotent(self):
        partition = make_partition()
        for key in range(40):
            partition.insert(order_row(key))
        bucket_id = partition.primary.bucket_ids[0]
        moved_keys = [k for k in range(40) if bucket_id.contains_key(k)]
        kept_keys = [k for k in range(40) if not bucket_id.contains_key(k)]
        partition.cleanup_moved_bucket(bucket_id)
        partition.cleanup_moved_bucket(bucket_id)  # idempotent
        assert bucket_id not in partition.primary.bucket_ids
        for key in kept_keys:
            assert partition.lookup(key) is not None
        # Secondary index entries of the moved bucket are lazily hidden.
        visible_pks = {e.key[-1] for e in partition.scan_secondary("idx_orderdate")}
        assert visible_pks == set(kept_keys)
        assert not (visible_pks & set(moved_keys))


def make_destination_partition(owned_bucket=BucketId(0b1, 1)):
    """A destination partition that owns only ``owned_bucket``.

    Rebalance destinations receive buckets they do not yet own; a partition
    covering the whole hash space could never be the target of a move.
    """
    return StoragePartition(
        dataset=orders_spec(),
        partition_id=1,
        node_id="nc1",
        initial_buckets=[owned_bucket],
        lsm_config=LSMConfig(memory_component_bytes=1 << 20),
        bucketing_config=BucketingConfig(),
    )


class TestRebalanceDestinationSide:
    def _moving_entries(self, count=20):
        return [
            Entry(key=1000 + i, value=order_row(1000 + i, date="1997-03-03"), seqnum=i + 1)
            for i in range(count)
        ]

    def test_received_bucket_invisible_until_install(self):
        partition = make_destination_partition()
        bucket_id = BucketId(0b0, 1)
        entries = [e for e in self._moving_entries() if bucket_id.contains_key(e.key)]
        partition.receive_bucket(bucket_id, entries)
        # Not visible through the primary index or the secondary index.
        for entry in entries:
            assert partition.lookup(entry.key) is None
        assert all(
            e.key[-1] not in {x.key for x in entries}
            for e in partition.scan_secondary("idx_orderdate")
        )
        partition.prepare_rebalance()
        partition.install_received_buckets()
        for entry in entries:
            assert partition.lookup(entry.key)["o_orderdate"] == "1997-03-03"
        secondary_pks = {e.key[-1] for e in partition.scan_secondary("idx_orderdate")}
        assert secondary_pks == {e.key for e in entries}

    def test_receive_is_idempotent(self):
        partition = make_destination_partition()
        bucket_id = BucketId(0b0, 1)
        first = partition.receive_bucket(bucket_id, [])
        second = partition.receive_bucket(bucket_id, [])
        assert first is second

    def test_replicated_writes_override_scanned_data(self):
        partition = make_destination_partition()
        bucket_id = BucketId(0b0, 1)
        base_key = next(k for k in range(1000, 1100) if bucket_id.contains_key(k))
        scanned = [Entry(key=base_key, value=order_row(base_key, date="old"), seqnum=1)]
        partition.receive_bucket(bucket_id, scanned)
        partition.apply_replicated_write(
            bucket_id, Entry(key=base_key, value=order_row(base_key, date="new"), seqnum=2)
        )
        partition.prepare_rebalance()
        partition.install_received_buckets()
        assert partition.lookup(base_key)["o_orderdate"] == "new"

    def test_apply_replicated_write_requires_pending_bucket(self):
        partition = make_destination_partition()
        with pytest.raises(StorageError):
            partition.apply_replicated_write(
                BucketId(0b0, 1), Entry(key=2, value=order_row(2), seqnum=1)
            )

    def test_drop_received_buckets_aborts_cleanly(self):
        owned = BucketId(0b1, 1)
        partition = make_destination_partition(owned)
        existing_key = next(k for k in range(100) if owned.contains_key(k))
        partition.insert(order_row(existing_key))
        bucket_id = BucketId(0b0, 1)
        keys = [k for k in range(1000, 1040) if bucket_id.contains_key(k)]
        entries = [Entry(key=k, value=order_row(k), seqnum=i + 1) for i, k in enumerate(keys)]
        partition.receive_bucket(bucket_id, entries)
        dropped = partition.drop_received_buckets()
        assert dropped == [bucket_id]
        assert partition.drop_received_buckets() == []  # idempotent
        for key in keys:
            assert partition.lookup(key) is None
        # Pre-existing data is untouched.
        assert partition.lookup(existing_key) is not None

    def test_install_is_idempotent(self):
        partition = make_destination_partition()
        bucket_id = BucketId(0b0, 1)
        keys = [k for k in range(1000, 1020) if bucket_id.contains_key(k)]
        entries = [Entry(key=k, value=order_row(k), seqnum=i + 1) for i, k in enumerate(keys)]
        partition.receive_bucket(bucket_id, entries)
        partition.prepare_rebalance()
        first = partition.install_received_buckets()
        second = partition.install_received_buckets()
        assert first == [bucket_id]
        assert second == []
        assert partition.primary.bucket_count >= 1
