"""Tests for the cost model."""

import pytest

from repro.common.config import CostModelConfig
from repro.cluster.cost_model import CostModel, WorkBreakdown
from repro.lsm.stats import StorageStats


class TestPrimitives:
    def test_disk_read_time(self):
        config = CostModelConfig(disk_read_bytes_per_sec=100.0)
        assert CostModel(config).disk_read_time(250) == pytest.approx(2.5)

    def test_disk_write_time(self):
        config = CostModelConfig(disk_write_bytes_per_sec=50.0)
        assert CostModel(config).disk_write_time(100) == pytest.approx(2.0)

    def test_network_time(self):
        config = CostModelConfig(network_bytes_per_sec=10.0)
        assert CostModel(config).network_time(5) == pytest.approx(0.5)

    def test_cpu_times(self):
        config = CostModelConfig(
            cpu_parse_record_sec=1e-3,
            cpu_compare_record_sec=1e-4,
            cpu_operator_record_sec=1e-5,
        )
        model = CostModel(config)
        assert model.parse_time(1000) == pytest.approx(1.0)
        assert model.compare_time(1000) == pytest.approx(0.1)
        assert model.operator_time(1000) == pytest.approx(0.01)

    def test_rpc_and_component_open_not_scaled(self):
        config = CostModelConfig(rpc_latency_sec=0.01, component_open_sec=0.002)
        model = CostModel(config, workload_scale=100.0)
        assert model.rpc_time(3) == pytest.approx(0.03)
        assert model.component_open_time(5) == pytest.approx(0.01)

    def test_workload_scale_multiplies_work(self):
        config = CostModelConfig(disk_read_bytes_per_sec=100.0)
        assert CostModel(config, workload_scale=10.0).disk_read_time(10) == pytest.approx(1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            CostModel(workload_scale=0)


class TestAggregates:
    def test_storage_work_combines_categories(self):
        stats = StorageStats(
            bytes_flushed=1000,
            bytes_merged_written=500,
            bytes_merged_read=800,
            bytes_read=200,
            records_merged=100,
            components_opened=2,
        )
        breakdown = CostModel().storage_work(stats)
        assert breakdown.disk_write_sec > 0
        assert breakdown.disk_read_sec > 0
        assert breakdown.cpu_sec > 0
        assert breakdown.total_sec == pytest.approx(
            breakdown.disk_write_sec
            + breakdown.disk_read_sec
            + breakdown.network_sec
            + breakdown.cpu_sec
            + breakdown.rpc_sec
        )

    def test_ingest_work_adds_parse_cpu(self):
        stats = StorageStats(bytes_flushed=1000)
        model = CostModel()
        without_parse = model.storage_work(stats).total_sec
        with_parse = model.ingest_work(10_000, stats).total_sec
        assert with_parse > without_parse

    def test_movement_work(self):
        breakdown = CostModel().movement_work(
            bytes_scanned=10_000, bytes_shipped=10_000, bytes_loaded=10_000, records=100
        )
        assert breakdown.disk_read_sec > 0
        assert breakdown.network_sec > 0
        assert breakdown.disk_write_sec > 0

    def test_slowest_node_semantics(self):
        assert CostModel.slowest({"nc0": 1.0, "nc1": 5.0, "nc2": 3.0}) == 5.0
        assert CostModel.slowest({}) == 0.0

    def test_sum_breakdowns(self):
        first = WorkBreakdown(disk_read_sec=1.0, cpu_sec=2.0)
        second = WorkBreakdown(disk_write_sec=3.0)
        total = CostModel.sum_breakdowns([first, second])
        assert total.total_sec == pytest.approx(6.0)
