"""Tests for the cost model."""

import pytest

from repro.common.config import CostModelConfig
from repro.cluster.cost_model import CostModel, WorkBreakdown
from repro.lsm.stats import StorageStats


class TestPrimitives:
    def test_disk_read_time(self):
        config = CostModelConfig(disk_read_bytes_per_sec=100.0)
        assert CostModel(config).disk_read_time(250) == pytest.approx(2.5)

    def test_disk_write_time(self):
        config = CostModelConfig(disk_write_bytes_per_sec=50.0)
        assert CostModel(config).disk_write_time(100) == pytest.approx(2.0)

    def test_network_time(self):
        config = CostModelConfig(network_bytes_per_sec=10.0)
        assert CostModel(config).network_time(5) == pytest.approx(0.5)

    def test_cpu_times(self):
        config = CostModelConfig(
            cpu_parse_record_sec=1e-3,
            cpu_compare_record_sec=1e-4,
            cpu_operator_record_sec=1e-5,
        )
        model = CostModel(config)
        assert model.parse_time(1000) == pytest.approx(1.0)
        assert model.compare_time(1000) == pytest.approx(0.1)
        assert model.operator_time(1000) == pytest.approx(0.01)

    def test_rpc_and_component_open_not_scaled(self):
        config = CostModelConfig(rpc_latency_sec=0.01, component_open_sec=0.002)
        model = CostModel(config, workload_scale=100.0)
        assert model.rpc_time(3) == pytest.approx(0.03)
        assert model.component_open_time(5) == pytest.approx(0.01)

    def test_workload_scale_multiplies_work(self):
        config = CostModelConfig(disk_read_bytes_per_sec=100.0)
        assert CostModel(config, workload_scale=10.0).disk_read_time(10) == pytest.approx(1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            CostModel(workload_scale=0)


class TestAggregates:
    def test_storage_work_combines_categories(self):
        stats = StorageStats(
            bytes_flushed=1000,
            bytes_merged_written=500,
            bytes_merged_read=800,
            bytes_read=200,
            records_merged=100,
            components_opened=2,
        )
        breakdown = CostModel().storage_work(stats)
        assert breakdown.disk_write_sec > 0
        assert breakdown.disk_read_sec > 0
        assert breakdown.cpu_sec > 0
        assert breakdown.total_sec == pytest.approx(
            breakdown.disk_write_sec
            + breakdown.disk_read_sec
            + breakdown.network_sec
            + breakdown.cpu_sec
            + breakdown.rpc_sec
        )

    def test_ingest_work_adds_parse_cpu(self):
        stats = StorageStats(bytes_flushed=1000)
        model = CostModel()
        without_parse = model.storage_work(stats).total_sec
        with_parse = model.ingest_work(10_000, stats).total_sec
        assert with_parse > without_parse

    def test_movement_work(self):
        breakdown = CostModel().movement_work(
            bytes_scanned=10_000, bytes_shipped=10_000, bytes_loaded=10_000, records=100
        )
        assert breakdown.disk_read_sec > 0
        assert breakdown.network_sec > 0
        assert breakdown.disk_write_sec > 0

    def test_slowest_node_semantics(self):
        assert CostModel.slowest({"nc0": 1.0, "nc1": 5.0, "nc2": 3.0}) == 5.0
        assert CostModel.slowest({}) == 0.0

    def test_sum_breakdowns(self):
        first = WorkBreakdown(disk_read_sec=1.0, cpu_sec=2.0)
        second = WorkBreakdown(disk_write_sec=3.0)
        total = CostModel.sum_breakdowns([first, second])
        assert total.total_sec == pytest.approx(6.0)


class TestWorkBreakdownAccounting:
    def test_total_is_the_sum_of_every_category(self):
        breakdown = WorkBreakdown(
            disk_read_sec=1.0,
            disk_write_sec=2.0,
            network_sec=3.0,
            cpu_sec=4.0,
            rpc_sec=5.0,
        )
        assert breakdown.total_sec == pytest.approx(15.0)

    def test_empty_breakdown_is_zero(self):
        assert WorkBreakdown().total_sec == 0.0

    def test_add_accumulates_category_by_category(self):
        accumulator = WorkBreakdown(disk_read_sec=1.0, network_sec=0.5)
        accumulator.add(WorkBreakdown(disk_read_sec=2.0, cpu_sec=3.0, rpc_sec=0.25))
        assert accumulator.disk_read_sec == pytest.approx(3.0)
        assert accumulator.network_sec == pytest.approx(0.5)
        assert accumulator.cpu_sec == pytest.approx(3.0)
        assert accumulator.rpc_sec == pytest.approx(0.25)
        assert accumulator.disk_write_sec == 0.0
        assert accumulator.total_sec == pytest.approx(6.75)

    def test_add_does_not_mutate_the_argument(self):
        other = WorkBreakdown(disk_write_sec=1.0)
        WorkBreakdown(disk_write_sec=2.0).add(other)
        assert other.disk_write_sec == pytest.approx(1.0)

    def test_storage_work_categorises_reads_writes_and_cpu(self):
        """Flushes/merge outputs are writes, merge inputs/query reads are
        reads, reconciliation is CPU — each category lands where documented."""
        config = CostModelConfig(
            disk_read_bytes_per_sec=100.0,
            disk_write_bytes_per_sec=100.0,
            cpu_compare_record_sec=1e-3,
            component_open_sec=0.0,
        )
        stats = StorageStats(
            bytes_flushed=300,
            bytes_merged_written=700,
            bytes_merged_read=400,
            bytes_read=100,
            records_merged=50,
        )
        breakdown = CostModel(config).storage_work(stats)
        assert breakdown.disk_write_sec == pytest.approx((300 + 700) / 100.0)
        assert breakdown.disk_read_sec == pytest.approx((400 + 100) / 100.0)
        assert breakdown.cpu_sec == pytest.approx(50 * 1e-3)
        assert breakdown.rpc_sec == 0.0

    def test_movement_work_categories(self):
        config = CostModelConfig(
            disk_read_bytes_per_sec=10.0,
            disk_write_bytes_per_sec=20.0,
            network_bytes_per_sec=40.0,
            cpu_compare_record_sec=1e-2,
        )
        breakdown = CostModel(config).movement_work(
            bytes_scanned=100, bytes_shipped=80, bytes_loaded=60, records=5
        )
        assert breakdown.disk_read_sec == pytest.approx(10.0)
        assert breakdown.network_sec == pytest.approx(2.0)
        assert breakdown.disk_write_sec == pytest.approx(3.0)
        assert breakdown.cpu_sec == pytest.approx(0.05)


class TestSlowestNodeSemantics:
    def test_slowest_is_the_maximum(self):
        per_node = {"nc0": 0.5, "nc1": 7.25, "nc2": 7.0, "nc3": 1.0}
        assert CostModel.slowest(per_node) == 7.25

    def test_single_node(self):
        assert CostModel.slowest({"nc0": 3.0}) == 3.0

    def test_empty_cluster_takes_no_time(self):
        assert CostModel.slowest({}) == 0.0

    def test_slowest_ignores_key_type(self):
        """Keys are opaque (node ids or partition ids both appear)."""
        assert CostModel.slowest({0: 1.0, 1: 2.0, "nc9": 1.5}) == 2.0

    def test_adding_an_idle_node_does_not_speed_up_the_step(self):
        """The completion time only drops when the *bottleneck* shrinks."""
        base = {"nc0": 4.0, "nc1": 2.0}
        widened = dict(base, nc2=0.0)
        assert CostModel.slowest(widened) == CostModel.slowest(base)


class TestWorkloadScaleProportionality:
    """``workload_scale`` multiplies the *work*, so every work-derived
    duration scales linearly while per-message latencies stay fixed."""

    @pytest.mark.parametrize("scale", [0.5, 1.0, 10.0, 5000.0])
    def test_work_primitives_scale_linearly(self, scale):
        base = CostModel(CostModelConfig())
        scaled = CostModel(CostModelConfig(), workload_scale=scale)
        assert scaled.disk_read_time(1000) == pytest.approx(
            base.disk_read_time(1000) * scale
        )
        assert scaled.disk_write_time(1000) == pytest.approx(
            base.disk_write_time(1000) * scale
        )
        assert scaled.network_time(1000) == pytest.approx(
            base.network_time(1000) * scale
        )
        assert scaled.parse_time(1000) == pytest.approx(base.parse_time(1000) * scale)
        assert scaled.compare_time(1000) == pytest.approx(
            base.compare_time(1000) * scale
        )
        assert scaled.operator_time(1000) == pytest.approx(
            base.operator_time(1000) * scale
        )

    @pytest.mark.parametrize("scale", [0.5, 1.0, 10.0, 5000.0])
    def test_control_overheads_do_not_scale(self, scale):
        base = CostModel(CostModelConfig())
        scaled = CostModel(CostModelConfig(), workload_scale=scale)
        assert scaled.rpc_time(4) == base.rpc_time(4)
        assert scaled.component_open_time(9) == base.component_open_time(9)

    def test_scaling_work_equals_scaling_quantity(self):
        """Multiplying the scale or the quantity is the same thing — the
        property that lets 1/5000th of the data report paper-scale times."""
        model = CostModel(CostModelConfig(), workload_scale=250.0)
        reference = CostModel(CostModelConfig())
        assert model.disk_read_time(400) == pytest.approx(
            reference.disk_read_time(400 * 250)
        )

    def test_movement_work_scales_linearly(self):
        base = CostModel(CostModelConfig()).movement_work(1000, 1000, 1000, 100)
        scaled = CostModel(CostModelConfig(), workload_scale=8.0).movement_work(
            1000, 1000, 1000, 100
        )
        assert scaled.total_sec == pytest.approx(base.total_sec * 8.0)

    def test_relative_comparisons_are_scale_invariant(self):
        """Ratios between two workloads never depend on the multiplier."""
        small = CostModel(CostModelConfig(), workload_scale=1.0)
        large = CostModel(CostModelConfig(), workload_scale=5000.0)
        ratio_small = small.disk_read_time(300) / small.disk_read_time(100)
        ratio_large = large.disk_read_time(300) / large.disk_read_time(100)
        assert ratio_small == pytest.approx(ratio_large)
