"""reprolint covers the chaos subsystem: discovery, cleanliness, teeth.

Three claims: ``src/repro/chaos`` is inside the linted tree (not skipped by
any prefix rule), the shipped chaos code is violation-free, and the rules
still bite on chaos-shaped code — an unseeded RNG draw or an undeclared
``chaos.*`` emit in a chaos module must fail the lint.
"""

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.engine import discover

REPO_ROOT = Path(__file__).resolve().parents[2]
CHAOS_DIR = REPO_ROOT / "src" / "repro" / "chaos"


class TestChaosIsCovered:
    def test_discovery_includes_every_chaos_module(self):
        discovered = {path.resolve() for path in discover([REPO_ROOT / "src"], REPO_ROOT)}
        chaos_files = sorted(CHAOS_DIR.glob("*.py"))
        assert chaos_files, "src/repro/chaos has no modules?"
        for path in chaos_files:
            assert path.resolve() in discovered

    def test_shipped_chaos_code_is_clean(self):
        assert lint_paths([CHAOS_DIR], repo_root=REPO_ROOT) == []

    def test_unseeded_draw_in_a_chaos_module_is_flagged(self, rules_of):
        rules = rules_of(
            """
            import random

            def pick_site(sites):
                return sites[random.randrange(len(sites))]
            """,
            "src/repro/chaos/bad_draw.py",
        )
        assert "det-global-random" in rules

    def test_undeclared_chaos_emit_is_flagged(self, rules_of):
        rules = rules_of(
            """
            def announce(bus):
                bus.emit("chaos.meteor_strike", node="nc0")
            """,
            "src/repro/chaos/bad_emit.py",
        )
        assert "evt-undeclared-emit" in rules

    def test_declared_chaos_emit_with_contract_payload_is_clean(self, rules_of):
        assert rules_of(
            """
            def announce(bus, at):
                bus.emit("chaos.crash", site="cc_fail_after_commit", at=at)
            """,
            "src/repro/chaos/good_emit.py",
        ) == set()
