"""The declared event contract: structure, derivation, rendering."""

from repro.api.events import EVENT_NAMES
from repro.common.event_contract import (
    EVENT_CONTRACT,
    EVENT_FAMILIES,
    allowed_keys,
    declared_events,
    is_declared,
    patterns_matching,
    render_contract_markdown,
    required_keys,
)


class TestStructure:
    def test_names_unique_across_families(self):
        names = [spec.name for family in EVENT_FAMILIES for spec in family.events]
        assert len(names) == len(set(names))

    def test_required_and_optional_disjoint(self):
        for spec in EVENT_CONTRACT.values():
            assert not (set(spec.required) & set(spec.optional)), spec.name

    def test_every_spec_describes_itself(self):
        for spec in EVENT_CONTRACT.values():
            assert spec.description, spec.name


class TestDerivation:
    def test_event_names_derived_from_contract(self):
        assert set(EVENT_NAMES) == set(declared_events())

    def test_declared_events_follow_family_order(self):
        assert list(declared_events()) == [
            spec.name for family in EVENT_FAMILIES for spec in family.events
        ]

    def test_is_declared(self):
        assert is_declared("op.read")
        assert not is_declared("op.teleport")

    def test_key_helpers(self):
        assert "dataset" in required_keys("op.read")
        assert required_keys("op.read") <= allowed_keys("op.read")
        assert "found" in allowed_keys("op.read")


class TestPatterns:
    def test_wildcard_families(self):
        assert len(patterns_matching("op.*")) >= 6
        assert len(patterns_matching("rebalance.*")) >= 6
        assert patterns_matching("*") == declared_events()

    def test_exact_name(self):
        assert patterns_matching("autopilot.stop") == ("autopilot.stop",)

    def test_unmatched(self):
        assert patterns_matching("nothing.*") == ()


class TestRendering:
    def test_markdown_lists_every_event(self):
        markdown = render_contract_markdown()
        for name in declared_events():
            assert f"`{name}`" in markdown

    def test_markdown_has_one_section_per_family(self):
        markdown = render_contract_markdown()
        for family in EVENT_FAMILIES:
            assert family.title in markdown
