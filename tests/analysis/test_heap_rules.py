"""det-heap-tiebreak: heap entries must carry an explicit sequence tiebreak."""


class TestHeapTiebreak:
    def test_heappush_of_bare_2_tuple_is_flagged(self, rules_of):
        assert "det-heap-tiebreak" in rules_of(
            """
            import heapq

            def schedule(heap, timestamp, event):
                heapq.heappush(heap, (timestamp, event))
            """
        )

    def test_heappushpop_and_heapreplace_are_flagged(self, rules_of):
        source = """
            import heapq

            def rotate(heap, timestamp, event):
                heapq.heappushpop(heap, (timestamp, event))
                heapq.heapreplace(heap, (timestamp, event))
            """
        assert "det-heap-tiebreak" in rules_of(source)

    def test_from_import_alias_is_resolved(self, rules_of):
        assert "det-heap-tiebreak" in rules_of(
            """
            from heapq import heappush

            def schedule(heap, timestamp, event):
                heappush(heap, (timestamp, event))
            """
        )

    def test_three_tuple_with_seq_passes(self, rules_of):
        assert "det-heap-tiebreak" not in rules_of(
            """
            import heapq

            def schedule(heap, timestamp, seq, event):
                heapq.heappush(heap, (timestamp, seq, event))
            """
        )

    def test_non_tuple_item_passes(self, rules_of):
        assert "det-heap-tiebreak" not in rules_of(
            """
            import heapq

            def schedule(heap, timestamp):
                heapq.heappush(heap, timestamp)
            """
        )

    def test_heappop_is_not_a_push(self, rules_of):
        assert "det-heap-tiebreak" not in rules_of(
            """
            import heapq

            def drain(heap):
                return heapq.heappop(heap)
            """
        )

    def test_pragma_with_reason_suppresses(self, rules_of):
        assert "det-heap-tiebreak" not in rules_of(
            """
            import heapq

            def schedule(heap, timestamp, seq):
                heapq.heappush(heap, (timestamp, seq))  # reprolint: allow[det-heap-tiebreak] -- both elements are ints
            """
        )

    def test_the_shipped_scheduler_passes(self):
        from pathlib import Path

        from repro.analysis import lint_file

        root = Path(__file__).resolve().parents[2]
        scheduler = root / "src" / "repro" / "sim" / "scheduler.py"
        assert [v for v in lint_file(scheduler, root) if v.rule == "det-heap-tiebreak"] == []
