"""Runtime completeness: a full system run emits only declared events, with
payloads inside the declared key sets.

The static rules check literal ``emit(...)`` sites; dynamic names (the
``op.{verb}`` f-string in ``repro.api.dataset``) escape them.  This test
closes the gap from the other side: subscribe to ``"*"``, drive every
subsystem — verbs, queries, ingest, rebalance, autopilot, recovery, session
close — and hold each *observed* event to the contract.
"""

from repro.api import Database, QuerySpec, TableAccess
from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.event_contract import EVENT_CONTRACT, allowed_keys, required_keys


def small_config() -> ClusterConfig:
    return ClusterConfig(
        num_nodes=3,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=16 * 1024),
        bucketing=BucketingConfig(max_bucket_bytes=1 << 20, initial_buckets_per_partition=2),
    )


def drive_full_session(events):
    """Exercise every event-emitting subsystem once; append Events to ``events``."""
    db = Database(small_config(), strategy="dynahash")
    db.on("*", events.append)
    pilot = db.autopilot(policy="threshold", check_every_ops=50, dry_run=True)
    pilot.start()

    traffic = db.create_dataset("traffic", primary_key="id")
    traffic.insert([{"id": i, "value": i % 7} for i in range(300)])
    traffic.get(5)
    traffic.get(-1)  # miss: exercises found=False
    traffic.upsert([{"id": 5, "value": 99}])
    traffic.upsert_each([{"id": 7, "value": 1}, {"id": 8, "value": 2}])
    traffic.delete(6)
    list(traffic.scan())
    traffic.query("probe").filter(lambda row: row["value"] > 3).count()
    db.execute_spec(QuerySpec(name="spec_probe", accesses=[TableAccess(dataset="traffic")]))

    db.remove_nodes(1)
    db.add_nodes(1)
    db.recover()

    scratch = db.create_dataset("scratch", primary_key="id")
    scratch.insert([{"id": 1}])
    scratch.drop()

    db.close()


class TestContractCompleteness:
    def test_every_emitted_event_is_declared_and_conformant(self):
        events = []
        drive_full_session(events)
        assert events, "the run emitted nothing — the bus is not wired"
        for event in events:
            assert event.name in EVENT_CONTRACT, f"undeclared event {event.name!r}"
            keys = set(event.payload)
            missing = required_keys(event.name) - keys
            unknown = keys - allowed_keys(event.name)
            assert not missing, f"{event.name}: payload missing {sorted(missing)}"
            assert not unknown, f"{event.name}: payload has undeclared {sorted(unknown)}"

    def test_the_run_covers_every_family(self):
        events = []
        drive_full_session(events)
        names = {event.name for event in events}
        assert {
            "op.read",
            "op.insert",
            "op.update",
            "op.batch",
            "op.delete",
            "op.scan",
            "op.query",
            "dataset.create",
            "dataset.drop",
            "rebalance.start",
            "rebalance.phase",
            "rebalance.commit",
            "rebalance.complete",
            "recovery.complete",
            "node.provision",
            "node.decommission",
            "autopilot.start",
            "autopilot.stop",
            "database.close",
        } <= names, sorted(names)
