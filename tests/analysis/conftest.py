"""Shared fixtures for the reprolint test suite."""

import textwrap

import pytest

from repro.analysis import lint_file


@pytest.fixture
def lint_source(tmp_path):
    """Lint a dedented source snippet as if it lived at ``relpath``.

    The relpath decides scoping (``src/`` = strict payloads, ``tests/`` =
    event rules off, ``benchmarks/`` = wall clock allowed), so tests pick the
    path that exercises the behaviour under test.
    """

    def _lint(source, relpath="src/repro/snippet.py"):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return lint_file(path, tmp_path)

    return _lint


@pytest.fixture
def rules_of(lint_source):
    """Like ``lint_source`` but returns just the set of violated rule ids."""

    def _rules(source, relpath="src/repro/snippet.py"):
        return {violation.rule for violation in lint_source(source, relpath)}

    return _rules
