"""Determinism rules: ambient randomness, wall clocks, salted hashing."""


class TestUnseededRandom:
    def test_unseeded_random_flagged(self, rules_of):
        assert "det-unseeded-random" in rules_of(
            """
            import random
            rng = random.Random()
            """
        )

    def test_seeded_random_clean(self, rules_of):
        assert rules_of(
            """
            import random
            rng = random.Random(42)
            """
        ) == set()

    def test_from_import_alias_resolved(self, rules_of):
        assert "det-unseeded-random" in rules_of(
            """
            from random import Random as RNG
            rng = RNG()
            """
        )


class TestGlobalRandom:
    def test_module_level_draw_flagged(self, rules_of):
        assert "det-global-random" in rules_of(
            """
            import random
            value = random.random()
            """
        )

    def test_instance_draw_clean(self, rules_of):
        assert rules_of(
            """
            import random
            rng = random.Random(7)
            value = rng.random()
            """
        ) == set()


class TestWallClock:
    def test_time_time_flagged_in_src(self, rules_of):
        source = """
            import time
            now = time.perf_counter()
            """
        assert "det-wall-clock" in rules_of(source)

    def test_allowed_in_bench_contexts(self, rules_of):
        source = """
            import time
            now = time.perf_counter()
            """
        assert rules_of(source, "benchmarks/test_speed.py") == set()
        assert rules_of(source, "src/repro/bench/harness.py") == set()

    def test_datetime_now_via_from_import(self, rules_of):
        assert "det-wall-clock" in rules_of(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        )


class TestEntropy:
    def test_os_urandom_and_uuid4(self, rules_of):
        rules = rules_of(
            """
            import os
            import uuid
            a = os.urandom(8)
            b = uuid.uuid4()
            """
        )
        assert rules == {"det-entropy"}

    def test_secrets_module(self, rules_of):
        assert "det-entropy" in rules_of(
            """
            import secrets
            token = secrets.token_hex(8)
            """
        )


class TestBuiltinHash:
    def test_builtin_hash_flagged(self, rules_of):
        assert "det-builtin-hash" in rules_of("value = hash('key')\n")

    def test_dunder_hash_on_tuple_literal_flagged(self, rules_of):
        # The exact shape of the repro.tpch.datagen per-table seeding bug.
        assert "det-builtin-hash" in rules_of(
            "seed_value = (2022, 'orders', 0.001).__hash__()\n"
        )

    def test_defining_dunder_hash_is_exempt(self, rules_of):
        assert rules_of(
            """
            class Key:
                def __init__(self, inner: tuple) -> None:
                    self.inner = inner

                def __hash__(self) -> int:
                    return hash(self.inner)
            """
        ) == set()
