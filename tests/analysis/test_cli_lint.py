"""The ``python -m repro lint`` subcommand: exit codes and output formats."""

from pathlib import Path

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]
KNOWN_BAD = REPO_ROOT / "tests" / "analysis" / "fixtures" / "known_bad.py"


class TestExitCodes:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(7)\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_known_bad_fixture_exits_one(self, capsys):
        assert main(["lint", str(KNOWN_BAD)]) == 1
        out = capsys.readouterr().out
        assert "det-builtin-hash" in out
        assert "reg-unknown-strategy" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestOutput:
    def test_github_format(self, capsys):
        main(["lint", str(KNOWN_BAD), "--format", "github"])
        out = capsys.readouterr().out
        assert "::error file=" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("det-wall-clock", "evt-undeclared-emit", "reg-spec-key"):
            assert rule in out

    def test_registered_in_help(self):
        assert "lint" in build_parser().format_help()
