"""Registry-key rules: strategy/policy literals must name registered entries."""

from pathlib import Path

from repro.analysis import lint_file
from repro.analysis.registry_rules import known_policy_names, known_strategy_names

FIXTURES = Path(__file__).parent / "fixtures"


class TestKnownNames:
    def test_strategy_names_come_from_live_registry(self):
        names = known_strategy_names()
        assert {"dynahash", "statichash", "hashing", "consistenthash"} <= names
        assert {"dyna", "static", "modulo", "consistent"} <= names

    def test_policy_names_come_from_live_registry(self):
        names = known_policy_names()
        assert {"threshold", "cost_aware", "scheduled"} <= names


class TestResolverCalls:
    def test_known_names_and_aliases_clean(self, rules_of):
        assert rules_of(
            """
            from repro.rebalance.strategies import strategy_by_name
            from repro.control.policy import policy_by_name

            a = strategy_by_name("dynahash")
            b = strategy_by_name("DynaHash")
            c = policy_by_name("cost-aware")
            """
        ) == set()

    def test_unknown_strategy_flagged(self, rules_of):
        assert "reg-unknown-strategy" in rules_of(
            """
            from repro.rebalance.strategies import strategy_by_name
            a = strategy_by_name("raft")
            """
        )

    def test_unknown_policy_flagged(self, rules_of):
        assert "reg-unknown-policy" in rules_of(
            """
            from repro.control.policy import policy_by_name
            a = policy_by_name("paxos")
            """
        )


class TestKeywordLiterals:
    def test_strategy_keyword_on_any_call(self, rules_of):
        assert "reg-unknown-strategy" in rules_of(
            "db = open_database(strategy='paxos')\n"
        )
        assert rules_of("db = open_database(strategy='modulo')\n") == set()

    def test_policy_keyword_on_any_call(self, rules_of):
        assert "reg-unknown-policy" in rules_of(
            "pilot = db.autopilot(policy='nope')\n"
        )
        assert rules_of("pilot = db.autopilot(policy='Threshold')\n") == set()


class TestLocalRegistrations:
    def test_same_file_registration_allows_the_name(self, rules_of):
        assert rules_of(
            """
            from repro.rebalance.strategies import register_strategy, strategy_by_name

            register_strategy("noop-test", object, aliases=("noop",))
            a = strategy_by_name("noop")
            b = strategy_by_name("noop-test")
            """
        ) == set()


class TestTomlSpecs:
    def test_bad_spec_fixture_flagged_twice(self, tmp_path):
        violations = lint_file(FIXTURES / "known_bad_spec.toml", tmp_path)
        assert [v.rule for v in violations] == ["reg-spec-key", "reg-spec-key"]
        messages = " ".join(v.message for v in violations)
        assert "dynohash" in messages and "treshold" in messages

    def test_line_numbers_point_at_the_keys(self, tmp_path):
        text = (FIXTURES / "known_bad_spec.toml").read_text()
        violations = lint_file(FIXTURES / "known_bad_spec.toml", tmp_path)
        lines = text.splitlines()
        for violation in violations:
            assert "dynohash" in lines[violation.line - 1] or "treshold" in lines[violation.line - 1]

    def test_good_spec_clean(self, tmp_path):
        spec = tmp_path / "good.toml"
        spec.write_text(
            '[scenario]\nname = "ok"\n\n'
            '[cluster]\nnodes = 2\nstrategy = "dynahash"\n\n'
            '[autopilot]\npolicy = "threshold"\n'
        )
        assert lint_file(spec, tmp_path) == []

    def test_committed_example_specs_are_clean(self, tmp_path):
        repo_root = Path(__file__).resolve().parents[2]
        for spec in sorted((repo_root / "examples" / "scenarios").glob("*.toml")):
            assert lint_file(spec, repo_root) == [], spec.name
