"""Engine behaviour: discovery, scoping, the clean-repo gate, reporting."""

from pathlib import Path

from repro.analysis import DEFAULT_ROOTS, RULE_CATALOG, lint_file, lint_paths, lint_repo, render_report
from repro.analysis.engine import discover

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


class TestCleanRepo:
    def test_the_repo_lints_clean(self):
        violations = lint_repo(REPO_ROOT)
        assert violations == [], "\n".join(v.format_plain() for v in violations)


class TestDiscovery:
    def test_fixture_corpus_excluded_from_directory_walks(self):
        files = discover([REPO_ROOT / "tests"], REPO_ROOT)
        assert not any("fixtures" in f.parts and "analysis" in f.parts for f in files)

    def test_explicit_fixture_path_is_linted_anyway(self):
        files = discover([FIXTURES / "known_bad.py"], REPO_ROOT)
        assert files == [FIXTURES / "known_bad.py"]

    def test_pycache_never_descended(self, tmp_path):
        bad = tmp_path / "src" / "__pycache__" / "junk.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nx = time.time()\n")
        assert discover([tmp_path / "src"], tmp_path) == []

    def test_missing_path_raises(self):
        try:
            discover([REPO_ROOT / "no_such_dir"], REPO_ROOT)
        except FileNotFoundError:
            pass
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_default_roots_all_exist(self):
        for root in DEFAULT_ROOTS:
            assert (REPO_ROOT / root).is_dir(), root


class TestOutOfTreeAnchoring:
    """Absolute paths from another cwd keep their repo-relative scoping."""

    def test_bench_wall_clock_exemption_survives_foreign_root(self, tmp_path):
        micro = REPO_ROOT / "src" / "repro" / "bench" / "micro.py"
        rules = {v.rule for v in lint_file(micro, tmp_path)}
        assert "det-wall-clock" not in rules

    def test_tests_event_exemption_survives_foreign_root(self, tmp_path):
        events_tests = REPO_ROOT / "tests" / "common" / "test_events.py"
        rules = {v.rule for v in lint_file(events_tests, tmp_path)}
        assert not any(rule.startswith("evt-") for rule in rules)

    def test_fixture_exclusion_survives_foreign_root(self, tmp_path):
        files = discover([REPO_ROOT / "tests" / "analysis"], tmp_path)
        assert not any("fixtures" in f.parts for f in files)

    def test_unanchorable_path_falls_back_to_itself(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("import time\nx = time.time()\n")
        violations = lint_file(loose, tmp_path / "elsewhere")
        assert [v.rule for v in violations] == ["det-wall-clock"]


class TestKnownBadFixture:
    def test_every_determinism_rule_fires(self):
        rules = {v.rule for v in lint_file(FIXTURES / "known_bad.py", REPO_ROOT)}
        assert {
            "det-unseeded-random",
            "det-global-random",
            "det-wall-clock",
            "det-entropy",
            "det-builtin-hash",
            "reg-unknown-strategy",
            "reg-unknown-policy",
            "pragma-missing-reason",
        } <= rules

    def test_fixture_rules_exist_in_catalog(self):
        for violation in lint_file(FIXTURES / "known_bad.py", REPO_ROOT):
            assert violation.rule in RULE_CATALOG


class TestParseErrors:
    def test_syntax_error_becomes_a_violation(self, tmp_path):
        broken = tmp_path / "src" / "broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def oops(:\n")
        violations = lint_paths([broken], tmp_path)
        assert [v.rule for v in violations] == ["parse-error"]


class TestReport:
    def test_plain_format_lines(self):
        violations = lint_file(FIXTURES / "known_bad.py", REPO_ROOT)
        report = render_report(violations, "plain", files_checked=1)
        first = violations[0]
        assert f"{first.path}:{first.line}:{first.column}: {first.rule}" in report
        assert "violation" in report.splitlines()[-1]

    def test_github_format_annotations(self):
        violations = lint_file(FIXTURES / "known_bad.py", REPO_ROOT)
        report = render_report(violations, "github", files_checked=1)
        assert report.startswith("::error file=")

    def test_clean_summary(self):
        assert "clean" in render_report([], "plain", files_checked=7)
