"""Intentionally-violating corpus for reprolint's own tests and the CI smoke.

Every construct below breaks a determinism or registry rule on purpose.
This file is excluded from repo-wide lint discovery
(``repro.analysis.engine.EXCLUDED_PREFIXES``) and must never be imported —
it exists to be *parsed* by the linter and to make
``python -m repro lint tests/analysis/fixtures/known_bad.py`` exit non-zero.
"""

import heapq
import os
import random
import time
import uuid

from repro.control.policy import policy_by_name
from repro.rebalance.strategies import strategy_by_name


def unseeded() -> random.Random:
    return random.Random()


def global_stream() -> float:
    return random.random()


def wall_clock() -> float:
    return time.time()


def entropy() -> bytes:
    token = uuid.uuid4()
    return os.urandom(8) + str(token).encode()


def salted_table_seed(seed: int, table: str, scale: float) -> random.Random:
    # The original repro.tpch.datagen bug, shape-for-shape: tuple.__hash__
    # salts the embedded table-name string per process (PYTHONHASHSEED).
    return random.Random((seed, table, round(scale, 6)).__hash__())


def salted_route(key: str, partitions: int) -> int:
    return hash(key) % partitions


def untied_heap_entry(heap: list, timestamp: float, event: object) -> None:
    # Two events due at the same timestamp fall through to comparing the
    # event objects — TypeError or insertion-luck ordering; the scheduler
    # convention is (timestamp, seq, event).
    heapq.heappush(heap, (timestamp, event))


def typo_strategy() -> object:
    return strategy_by_name("dynohash")


def typo_policy() -> object:
    return policy_by_name("treshold")


def reasonless(key: str) -> int:
    return hash(key)  # reprolint: allow[det-builtin-hash]
