"""Pragma parsing and suppression: `# reprolint: allow[rule] -- reason`."""

from repro.analysis import collect_pragmas


class TestParsing:
    def test_single_rule_with_reason(self):
        pragmas = collect_pragmas(
            "x = hash(k)  # reprolint: allow[det-builtin-hash] -- k is an int\n"
        ).pragmas
        assert len(pragmas) == 1
        assert pragmas[0].line == 1
        assert pragmas[0].rules == ("det-builtin-hash",)
        assert pragmas[0].reason == "k is an int"

    def test_multiple_rules(self):
        pragmas = collect_pragmas(
            "# reprolint: allow[det-wall-clock, det-entropy] -- bench harness\n"
        ).pragmas
        assert pragmas[0].rules == ("det-wall-clock", "det-entropy")

    def test_pragma_inside_string_literal_ignored(self):
        source = 'text = "# reprolint: allow[det-builtin-hash] -- not a comment"\n'
        assert collect_pragmas(source).pragmas == []

    def test_non_pragma_comments_ignored(self):
        assert collect_pragmas("x = 1  # a plain comment\n").pragmas == []


class TestSuppression:
    def test_pragma_suppresses_on_its_line(self, lint_source):
        assert lint_source(
            "value = hash(3.5)  # reprolint: allow[det-builtin-hash] -- float hashes are unsalted\n"
        ) == []

    def test_pragma_does_not_leak_to_other_lines(self, rules_of):
        assert "det-builtin-hash" in rules_of(
            """
            a = hash(3.5)  # reprolint: allow[det-builtin-hash] -- float hashes are unsalted
            b = hash("other")
            """
        )

    def test_star_suppresses_any_rule(self, lint_source):
        assert lint_source(
            "import time\nnow = time.time()  # reprolint: allow[*] -- demo of the wildcard\n"
        ) == []

    def test_wrong_rule_does_not_suppress(self, rules_of):
        assert "det-builtin-hash" in rules_of(
            "value = hash('key')  # reprolint: allow[det-wall-clock] -- wrong rule named\n"
        )


class TestPragmaOwnViolations:
    def test_missing_reason_flagged(self, rules_of):
        rules = rules_of(
            "value = hash(3.5)  # reprolint: allow[det-builtin-hash]\n"
        )
        assert rules == {"pragma-missing-reason"}

    def test_unknown_rule_name_flagged(self, rules_of):
        assert "pragma-missing-reason" in rules_of(
            "x = 1  # reprolint: allow[det-nonsense] -- typo'd rule id\n"
        )
