"""Event-contract rules: emits and subscriptions against the declaration."""


class TestEmit:
    def test_declared_full_payload_clean(self, rules_of):
        assert rules_of(
            """
            def drop(bus, name):
                bus.emit("dataset.drop", dataset=name)
            """
        ) == set()

    def test_undeclared_name_flagged(self, rules_of):
        assert "evt-undeclared-emit" in rules_of(
            """
            def notify(bus):
                bus.emit("dataset.vaporised", dataset="x")
            """
        )

    def test_missing_required_key_strict_in_src(self, rules_of):
        source = """
            def drop(bus):
                bus.emit("dataset.drop")
            """
        assert "evt-missing-key" in rules_of(source)
        # Outside src/ the payload may be assembled elsewhere; only unknown
        # keys are policed.
        assert rules_of(source, "examples/snippet.py") == set()

    def test_unknown_key_flagged_everywhere(self, rules_of):
        source = """
            def drop(bus, name):
                bus.emit("dataset.drop", dataset=name, nonsense=1)
            """
        assert "evt-unknown-key" in rules_of(source)
        assert "evt-unknown-key" in rules_of(source, "examples/snippet.py")

    def test_splat_disables_missing_key_check(self, rules_of):
        assert rules_of(
            """
            def drop(bus, payload):
                bus.emit("dataset.drop", **payload)
            """
        ) == set()

    def test_wrapper_emit_injects_dataset_and_rebalance_id(self, rules_of):
        assert rules_of(
            """
            class Op:
                def commit(self, moved: int) -> None:
                    self._emit("rebalance.commit", buckets_moved=moved)
            """
        ) == set()

    def test_dynamic_name_skipped(self, rules_of):
        assert rules_of(
            """
            def emit_op(bus, op, **payload):
                bus.emit(f"op.{op}", **payload)
            """
        ) == set()

    def test_probe_of_undeclared_event(self, rules_of):
        assert "evt-undeclared-emit" in rules_of(
            """
            def probe(bus):
                return bus.has_subscribers("dataset.vaporised")
            """
        )


class TestSubscription:
    def test_matching_patterns_clean(self, rules_of):
        assert rules_of(
            """
            def wire(bus, callback):
                bus.on("op.*", callback)
                bus.on("rebalance.commit", callback)
                bus.once("*", callback)
            """
        ) == set()

    def test_unmatched_pattern_flagged(self, rules_of):
        assert "evt-unmatched-subscription" in rules_of(
            """
            def wire(bus, callback):
                bus.on("opp.*", callback)
            """
        )

    def test_single_argument_on_is_not_a_subscription(self, rules_of):
        # Someone else's `.on()` API (no callback argument) is not judged.
        assert rules_of(
            """
            def join(frame):
                return frame.on("opp.key")
            """
        ) == set()


class TestScoping:
    def test_tests_are_skipped_wholesale(self, rules_of):
        assert rules_of(
            """
            def test_bus(bus, callback):
                bus.emit("made.up.event", whatever=1)
                bus.on("also.made.up", callback)
            """,
            "tests/common/test_events.py",
        ) == set()
