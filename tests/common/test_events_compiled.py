"""Tests for the compiled event router's fast paths (PR 4).

The original suite in ``test_events.py`` pins the observable pub/sub
semantics; these tests pin the routing-table behaviours the compiled router
added: exact vs wildcard classification, the per-name route cache and its
invalidation, the ``has_subscribers`` fast path, and O(1) ``off`` via
index-mapped subscriptions.
"""

import pytest

from repro.common.events import EventBus


class TestRouting:
    def test_emit_with_zero_subscribers_still_returns_event(self):
        bus = EventBus()
        event = bus.emit("lonely.event", x=1)
        assert event.name == "lonely.event"
        assert event["x"] == 1

    def test_exact_subscriber_receives_only_its_name(self):
        bus = EventBus()
        seen = []
        bus.on("op.read", seen.append)
        bus.emit("op.read")
        bus.emit("op.write")
        bus.emit("op.read.extra")
        assert [event.name for event in seen] == ["op.read"]

    def test_wildcard_subscriber_matches_fnmatch_semantics(self):
        bus = EventBus()
        seen = []
        bus.on("op.*", seen.append)
        bus.on("rebalance.?tart", seen.append)
        bus.emit("op.read")
        bus.emit("rebalance.start")
        bus.emit("rebalance.restart")
        assert [event.name for event in seen] == ["op.read", "rebalance.start"]

    def test_exact_and_wildcard_fire_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.on("op.*", lambda e: order.append("wild-first"))
        bus.on("op.read", lambda e: order.append("exact"))
        bus.on("*", lambda e: order.append("wild-last"))
        bus.emit("op.read")
        assert order == ["wild-first", "exact", "wild-last"]

    def test_route_cache_invalidated_by_new_exact_subscriber(self):
        bus = EventBus()
        first = []
        bus.emit("op.read")  # primes the (empty) route for the name
        bus.on("op.read", first.append)
        bus.emit("op.read")
        assert len(first) == 1

    def test_route_cache_invalidated_by_new_wildcard_subscriber(self):
        bus = EventBus()
        seen = []
        bus.on("op.read", seen.append)
        bus.emit("op.read")  # primes the route without the wildcard
        late = []
        bus.on("op.*", late.append)
        bus.emit("op.read")
        assert len(seen) == 2
        assert len(late) == 1

    def test_route_cache_invalidated_by_unsubscribe(self):
        bus = EventBus()
        seen = []
        subscription = bus.on("op.*", seen.append)
        bus.emit("op.read")
        subscription.cancel()
        bus.emit("op.read")
        assert len(seen) == 1


class TestHasSubscribers:
    def test_false_on_empty_bus(self):
        assert not EventBus().has_subscribers("op.read")

    def test_true_for_exact_match(self):
        bus = EventBus()
        bus.on("op.read", lambda e: None)
        assert bus.has_subscribers("op.read")
        assert not bus.has_subscribers("op.write")

    def test_true_for_wildcard_match(self):
        bus = EventBus()
        bus.on("op.*", lambda e: None)
        assert bus.has_subscribers("op.read")
        assert bus.has_subscribers("op.anything")
        assert not bus.has_subscribers("rebalance.start")

    def test_flips_false_after_last_unsubscribe(self):
        bus = EventBus()
        subscription = bus.on("op.*", lambda e: None)
        assert bus.has_subscribers("op.read")
        subscription.cancel()
        assert not bus.has_subscribers("op.read")

    def test_probe_does_not_consume_seq(self):
        bus = EventBus()
        bus.has_subscribers("op.read")
        event = bus.emit("op.read")
        assert event.seq == 0


class TestOff:
    def test_off_is_idempotent(self):
        bus = EventBus()
        subscription = bus.on("op.read", lambda e: None)
        bus.off(subscription)
        bus.off(subscription)  # no-op, no error
        assert bus.subscriber_count == 0

    def test_cancel_middle_of_many_exact_subscribers(self):
        bus = EventBus()
        seen = []
        subs = [
            bus.on("op.read", (lambda i: lambda e: seen.append(i))(i))
            for i in range(5)
        ]
        subs[2].cancel()
        bus.emit("op.read")
        assert seen == [0, 1, 3, 4]
        assert bus.subscriber_count == 4

    def test_patterns_keeps_subscription_order_across_tables(self):
        bus = EventBus()
        bus.on("op.*", lambda e: None)
        bus.on("op.read", lambda e: None)
        bus.on("rebalance.start", lambda e: None)
        bus.on("*", lambda e: None)
        assert bus.patterns() == ["op.*", "op.read", "rebalance.start", "*"]

    def test_once_auto_cancels_under_compiled_router(self):
        bus = EventBus()
        seen = []
        bus.once("op.*", seen.append)
        bus.emit("op.read")
        bus.emit("op.read")
        assert len(seen) == 1
        assert bus.subscriber_count == 0

    def test_once_exact_auto_cancels(self):
        bus = EventBus()
        seen = []
        bus.once("rebalance.start", seen.append)
        bus.emit("rebalance.start")
        bus.emit("rebalance.start")
        assert len(seen) == 1
        assert not bus.has_subscribers("rebalance.start")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            EventBus().on("", lambda e: None)
