"""Tests for the configuration dataclasses and their validation."""

import pytest

from repro.common import GIB, MIB
from repro.common.config import (
    BucketingConfig,
    ClusterConfig,
    CostModelConfig,
    LSMConfig,
)
from repro.common.errors import ConfigError


class TestLSMConfig:
    def test_paper_defaults(self):
        config = LSMConfig()
        assert config.merge_size_ratio == pytest.approx(1.2)
        assert config.page_bytes == 16 * 1024

    def test_rejects_zero_memory_budget(self):
        with pytest.raises(ConfigError):
            LSMConfig(memory_component_bytes=0)

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ConfigError):
            LSMConfig(merge_size_ratio=0)

    def test_rejects_single_component_merges(self):
        with pytest.raises(ConfigError):
            LSMConfig(merge_min_components=1)

    def test_rejects_negative_bloom_params(self):
        with pytest.raises(ConfigError):
            LSMConfig(bloom_bits_per_key=-1)

    def test_scaled_shrinks_memory_budget(self):
        config = LSMConfig(memory_component_bytes=100 * MIB)
        scaled = config.scaled(0.01)
        assert scaled.memory_component_bytes == MIB
        # Original is unchanged (frozen dataclass).
        assert config.memory_component_bytes == 100 * MIB

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            LSMConfig().scaled(0)


class TestBucketingConfig:
    def test_paper_defaults(self):
        config = BucketingConfig()
        assert config.max_bucket_bytes == 10 * GIB
        assert config.static_total_buckets == 256
        assert not config.static

    def test_rejects_zero_bucket_size(self):
        with pytest.raises(ConfigError):
            BucketingConfig(max_bucket_bytes=0)

    def test_rejects_zero_initial_buckets(self):
        with pytest.raises(ConfigError):
            BucketingConfig(initial_buckets_per_partition=0)

    def test_scaled(self):
        scaled = BucketingConfig(max_bucket_bytes=10 * GIB).scaled(0.001)
        assert scaled.max_bucket_bytes == int(10 * GIB * 0.001)


class TestCostModelConfig:
    def test_defaults_are_positive(self):
        config = CostModelConfig()
        assert config.disk_read_bytes_per_sec > 0
        assert config.network_bytes_per_sec > 0

    def test_rejects_zero_throughput(self):
        with pytest.raises(ConfigError):
            CostModelConfig(disk_read_bytes_per_sec=0)

    def test_rejects_negative_cpu_cost(self):
        with pytest.raises(ConfigError):
            CostModelConfig(cpu_parse_record_sec=-1e-9)


class TestClusterConfig:
    def test_paper_defaults(self):
        config = ClusterConfig()
        assert config.partitions_per_node == 4
        assert config.total_partitions == config.num_nodes * 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ConfigError):
            ClusterConfig(partitions_per_node=0)

    def test_with_nodes_returns_modified_copy(self):
        base = ClusterConfig(num_nodes=4)
        bigger = base.with_nodes(16)
        assert bigger.num_nodes == 16
        assert base.num_nodes == 4
        assert bigger.partitions_per_node == base.partitions_per_node

    def test_scaled_propagates_to_nested_configs(self):
        base = ClusterConfig()
        scaled = base.scaled(0.001)
        assert scaled.lsm.memory_component_bytes < base.lsm.memory_component_bytes
        assert scaled.bucketing.max_bucket_bytes < base.bucketing.max_bucket_bytes

    def test_scaled_can_override_seed(self):
        assert ClusterConfig(seed=1).scaled(0.5, seed=99).seed == 99
