"""Tests for the deterministic partitioning hash functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashutil import hash64, hash_key, low_bits, prefix_matches


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_different_inputs_differ(self):
        assert hash64(1) != hash64(2)

    def test_result_fits_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**70):
            assert 0 <= hash64(value) < 2**64

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_always_in_range(self, value):
        assert 0 <= hash64(value) < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=63))
    def test_low_bit_balance_is_roughly_uniform(self, start, _bit):
        # Smoke property: consecutive integers should not all land in the same
        # low-bit class (the mixer avalanches).
        values = [hash64(start + i) & 0xF for i in range(64)]
        assert len(set(values)) > 4


class TestHashKey:
    def test_int_key(self):
        assert hash_key(42) == hash64(42)

    def test_string_key_deterministic(self):
        assert hash_key("customer#000001") == hash_key("customer#000001")

    def test_string_keys_differ(self):
        assert hash_key("a") != hash_key("b")

    def test_bytes_key(self):
        assert hash_key(b"abc") == hash_key(b"abc")

    def test_tuple_key(self):
        assert hash_key((1, "a")) == hash_key((1, "a"))
        assert hash_key((1, "a")) != hash_key(("a", 1))

    def test_float_key(self):
        assert hash_key(3.25) == hash_key(3.25)

    def test_bool_key_matches_int(self):
        assert hash_key(True) == hash_key(1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            hash_key({"a": 1})

    @given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(), st.text())))
    def test_hash_key_in_64_bit_range(self, key):
        assert 0 <= hash_key(key) < 2**64


class TestLowBits:
    def test_depth_zero_is_always_zero(self):
        assert low_bits(0xFFFF, 0) == 0

    def test_low_bits_masks(self):
        assert low_bits(0b10110, 3) == 0b110

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            low_bits(1, -1)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=63))
    def test_low_bits_below_2_pow_depth(self, value, depth):
        assert low_bits(value, depth) < max(1, 2**depth)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=1, max_value=16))
    def test_low_bits_consistent_with_prefix_matches(self, value, depth):
        prefix = low_bits(value, depth)
        assert prefix_matches(value, prefix, depth)

    def test_prefix_matches_rejects_other_class(self):
        # 0b...0 and 0b...1 differ at depth 1.
        assert not prefix_matches(0b10, 0b1, 1)
