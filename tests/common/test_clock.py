"""Tests for the simulated and Lamport clocks."""

import pytest

from repro.common.clock import LamportClock, SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero_by_default(self):
        assert SimulatedClock().now == 0.0

    def test_custom_start(self):
        assert SimulatedClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimulatedClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = SimulatedClock(2.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimulatedClock(9.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_negative_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.reset(-5)


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_observe_jumps_ahead_of_remote(self):
        clock = LamportClock()
        clock.tick()
        assert clock.observe(10) == 11

    def test_observe_smaller_remote_still_advances(self):
        clock = LamportClock()
        for _ in range(5):
            clock.tick()
        assert clock.observe(2) == 6

    def test_happens_before_ordering(self):
        sender = LamportClock()
        receiver = LamportClock()
        send_time = sender.tick()
        receive_time = receiver.observe(send_time)
        assert receive_time > send_time
