"""EventBus emission-safety regressions: mutating subscribers mid-emission.

``EventBus.emit`` snapshots the subscriber list per emission, so callbacks
may subscribe or unsubscribe (themselves or others) while an event is being
delivered without corrupting the iteration or changing who sees the current
event.
"""

from repro.common.events import EventBus


class TestEmitSnapshot:
    def test_subscriber_unsubscribing_itself_mid_callback(self):
        bus = EventBus()
        seen = []

        def once_by_hand(event):
            seen.append(event.name)
            subscription.cancel()

        subscription = bus.on("tick", once_by_hand)
        bus.emit("tick")
        bus.emit("tick")
        assert seen == ["tick"]
        assert bus.subscriber_count == 0

    def test_callback_cancelling_a_later_subscriber_suppresses_it(self):
        bus = EventBus()
        seen = []

        def first(event):
            seen.append("first")
            later.cancel()

        bus.on("tick", first)
        later = bus.on("tick", lambda event: seen.append("later"))
        bus.emit("tick")
        assert seen == ["first"]  # the cancelled subscriber never fired

    def test_callback_cancelling_an_earlier_subscriber_keeps_current_emission_safe(self):
        bus = EventBus()
        seen = []

        earlier = bus.on("tick", lambda event: seen.append("earlier"))
        bus.on("tick", lambda event: (seen.append("second"), earlier.cancel()))
        bus.emit("tick")
        assert seen == ["earlier", "second"]
        bus.emit("tick")
        assert seen == ["earlier", "second", "second"]

    def test_subscribing_during_emission_does_not_see_the_current_event(self):
        bus = EventBus()
        seen = []

        def recruiter(event):
            seen.append("recruiter")
            bus.on("tick", lambda event: seen.append("recruit"))

        bus.on("tick", recruiter)
        bus.emit("tick")
        assert seen == ["recruiter"]  # the new subscriber missed this event
        seen.clear()
        bus.emit("tick")
        assert seen == ["recruiter", "recruit"]  # ...but sees the next one

    def test_mass_unsubscribe_mid_emission_delivers_to_no_cancelled_subscriber(self):
        bus = EventBus()
        seen = []
        subscriptions = []

        def nuke_everything(event):
            seen.append("nuke")
            for subscription in subscriptions:
                subscription.cancel()

        bus.on("tick", nuke_everything)
        subscriptions.extend(
            bus.on("tick", lambda event, i=i: seen.append(i)) for i in range(5)
        )
        bus.emit("tick")
        assert seen == ["nuke"]
        assert bus.subscriber_count == 1

    def test_once_inside_emission_of_the_same_pattern(self):
        bus = EventBus()
        seen = []

        def arm_once(event):
            bus.once("tick", lambda event: seen.append("once"))

        bus.on("tick", arm_once)
        bus.emit("tick")  # arms the once-handler; it must not fire yet
        assert seen == []
        bus.emit("tick")
        assert seen == ["once"]
        bus.emit("tick")
        assert seen == ["once", "once"]  # re-armed each emission, fired once each

    def test_nested_emit_takes_its_own_snapshot(self):
        bus = EventBus()
        order = []

        def outer(event):
            order.append(f"outer:{event.name}")
            if event.name == "outer.event":
                bus.emit("inner.event")
                # Subscribed after the nested emit: must see neither the
                # current outer event nor the already-delivered inner one.
                bus.on("*", lambda event: order.append(f"late:{event.name}"))

        bus.on("*", outer)
        bus.emit("outer.event")
        assert order == ["outer:outer.event", "outer:inner.event"]
        bus.emit("inner.event")
        assert order[2:] == ["outer:inner.event", "late:inner.event"]

    def test_sequence_numbers_stay_monotonic_across_reentrancy(self):
        bus = EventBus()
        seqs = []

        def reenter(event):
            seqs.append(event.seq)
            if event.name == "outer":
                bus.emit("inner")

        bus.on("*", reenter)
        bus.emit("outer")
        bus.emit("outer")
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
