"""Tests for byte-size and duration formatting helpers."""

from repro.common import units


class TestSizeConstants:
    def test_binary_units_are_powers_of_1024(self):
        assert units.KIB == 1024
        assert units.MIB == 1024**2
        assert units.GIB == 1024**3

    def test_decimal_units_are_powers_of_1000(self):
        assert units.KB == 1000
        assert units.MB == 1000**2
        assert units.GB == 1000**3

    def test_helpers_scale_fractions(self):
        assert units.kib(1.5) == 1536
        assert units.mib(2) == 2 * 1024**2
        assert units.gib(0.5) == 512 * 1024**2


class TestFmtBytes:
    def test_plain_bytes(self):
        assert units.fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert units.fmt_bytes(1536) == "1.50 KiB"

    def test_gib(self):
        assert units.fmt_bytes(10 * units.GIB) == "10.00 GiB"

    def test_large_values_use_tib(self):
        assert "TiB" in units.fmt_bytes(5 * 1024**4)

    def test_zero(self):
        assert units.fmt_bytes(0) == "0 B"


class TestFmtDuration:
    def test_seconds(self):
        assert units.fmt_duration(42.51) == "42.5 s"

    def test_minutes(self):
        assert units.fmt_duration(3900) == "65.0 min"

    def test_hours_suffix(self):
        assert units.fmt_duration(100 * 3600).endswith("h")

    def test_exact_hour_value(self):
        assert units.fmt_duration(2 * 3600 * 600) == "1200.0 h"
