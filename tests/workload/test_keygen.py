"""Key distributions: bounds, determinism, and expected skew."""

import random
from collections import Counter

import pytest

from repro.workload import (
    HotspotKeys,
    LatestKeys,
    UniformKeys,
    ZipfianKeys,
    make_key_generator,
)

DRAWS = 20_000


def frequencies(generator, limit, draws=DRAWS, seed=7):
    rng = random.Random(seed)
    counts = Counter(generator.next_index(rng, limit) for _ in range(draws))
    return counts


class TestBoundsAndDeterminism:
    @pytest.mark.parametrize(
        "generator",
        [
            UniformKeys(),
            ZipfianKeys(num_keys=500),
            ZipfianKeys(num_keys=500, scrambled=True),
            HotspotKeys(),
            LatestKeys(window=64),
        ],
        ids=lambda g: type(g).__name__,
    )
    def test_indexes_stay_in_range(self, generator):
        rng = random.Random(11)
        for limit in (1, 2, 37, 500):
            for _ in range(200):
                assert 0 <= generator.next_index(rng, limit) < limit

    def test_same_seed_same_sequence(self):
        generator = ZipfianKeys(num_keys=1000)
        rng_a, rng_b = random.Random(42), random.Random(42)
        draws_a = [generator.next_index(rng_a, 1000) for _ in range(50)]
        draws_b = [generator.next_index(rng_b, 1000) for _ in range(50)]
        assert draws_a == draws_b

    def test_empty_keyspace_rejected(self):
        with pytest.raises(ValueError):
            UniformKeys().next_index(random.Random(0), 0)


class TestUniform:
    def test_roughly_flat(self):
        """Chi-square-ish check: every decile holds ~10% of the draws."""
        counts = frequencies(UniformKeys(), 100)
        for decile in range(10):
            share = sum(counts[k] for k in range(decile * 10, decile * 10 + 10)) / DRAWS
            assert 0.07 <= share <= 0.13


class TestZipfian:
    def test_index_zero_is_hottest_and_matches_theory(self):
        """The hottest key's share should be ~1/zeta_n(theta) of the draws."""
        n, theta = 500, 0.99
        generator = ZipfianKeys(num_keys=n, theta=theta)
        counts = frequencies(generator, n)
        assert counts.most_common(1)[0][0] == 0
        expected_top = 1.0 / generator._zetan  # P(rank 1) = 1 / zeta_n
        observed_top = counts[0] / DRAWS
        assert expected_top * 0.7 <= observed_top <= expected_top * 1.3

    def test_skew_head_dominates(self):
        counts = frequencies(ZipfianKeys(num_keys=1000), 1000)
        head = sum(counts[k] for k in range(10)) / DRAWS
        tail = sum(counts[k] for k in range(500, 1000)) / DRAWS
        assert head > 0.35  # ten keys absorb over a third of the traffic
        # Theory at theta=0.99, n=1000: head ~ zeta(10)/zeta(1000) ~ 0.39,
        # tail ~ 0.09 -> the ten hottest keys out-draw the coldest five hundred.
        assert head > 4 * tail

    def test_folds_into_smaller_live_keyspace(self):
        counts = frequencies(ZipfianKeys(num_keys=1000), 10)
        assert set(counts) <= set(range(10))
        assert counts.most_common(1)[0][0] == 0

    def test_stretches_across_a_grown_keyspace(self):
        """Keys inserted beyond the precomputed grid stay reachable."""
        counts = frequencies(ZipfianKeys(num_keys=100), 10_000)
        assert counts.most_common(1)[0][0] == 0  # head still hottest
        assert any(key >= 100 for key in counts)  # new keys get traffic
        assert all(key < 10_000 for key in counts)

    def test_scrambled_moves_the_hot_key_off_zero(self):
        generator = ZipfianKeys(num_keys=1000, scrambled=True)
        counts = frequencies(generator, 1000)
        hottest, hottest_count = counts.most_common(1)[0]
        assert hottest != 0
        # Still zipf-skewed after scrambling: one key clearly dominates.
        assert hottest_count / DRAWS > 0.05

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(num_keys=0)
        with pytest.raises(ValueError):
            ZipfianKeys(num_keys=10, theta=1.5)


class TestHotspot:
    def test_hot_set_receives_its_share(self):
        """20% of keys get ~80% of traffic (both within tolerance bounds)."""
        counts = frequencies(HotspotKeys(hot_fraction=0.2, hot_probability=0.8), 100)
        hot_share = sum(counts[k] for k in range(20)) / DRAWS
        assert 0.76 <= hot_share <= 0.84

    def test_degenerate_tiny_keyspace_is_all_hot(self):
        counts = frequencies(HotspotKeys(hot_fraction=0.2, hot_probability=0.5), 2)
        assert set(counts) <= {0, 1}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotspotKeys(hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotKeys(hot_probability=1.5)


class TestLatest:
    def test_newest_key_is_hottest(self):
        counts = frequencies(LatestKeys(window=64), 1000)
        assert counts.most_common(1)[0][0] == 999
        # The window anchors at the end of the keyspace.
        assert all(key >= 1000 - 64 for key in counts)

    def test_window_clamps_to_small_keyspaces(self):
        counts = frequencies(LatestKeys(window=64), 5)
        assert set(counts) <= {0, 1, 2, 3, 4}
        assert counts.most_common(1)[0][0] == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LatestKeys(window=0)


class TestFactory:
    def test_resolves_names_case_insensitively(self):
        assert isinstance(make_key_generator("UNIFORM"), UniformKeys)
        assert isinstance(make_key_generator("zipfian", num_keys=10), ZipfianKeys)
        assert isinstance(make_key_generator("hotspot"), HotspotKeys)
        assert isinstance(make_key_generator("latest"), LatestKeys)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown key distribution"):
            make_key_generator("pareto")

    def test_missing_required_option_raises_value_error(self):
        """zipfian needs num_keys: a config error, not a TypeError crash."""
        with pytest.raises(ValueError, match="num_keys"):
            make_key_generator("zipfian")
