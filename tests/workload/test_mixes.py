"""Operation mixes: normalisation, sampling, and the YCSB presets."""

import random
from collections import Counter

import pytest

from repro.workload import OPERATIONS, OperationMix, YCSB_MIXES, make_mix


class TestOperationMix:
    def test_weights_normalise_to_one(self):
        mix = OperationMix(read=3, update=1)
        weights = mix.weights()
        assert weights["read"] == pytest.approx(0.75)
        assert weights["update"] == pytest.approx(0.25)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_write_fraction(self):
        mix = OperationMix(read=0.5, insert=0.2, update=0.2, delete=0.1)
        assert mix.write_fraction == pytest.approx(0.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            OperationMix(read=-0.1, update=1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            OperationMix()

    def test_choose_matches_the_ratios(self):
        mix = OperationMix(read=0.8, update=0.2)
        rng = random.Random(3)
        counts = Counter(mix.choose(rng) for _ in range(10_000))
        assert set(counts) == {"read", "update"}
        assert 0.77 <= counts["read"] / 10_000 <= 0.83

    def test_choose_is_deterministic_per_seed(self):
        mix = OperationMix(read=0.5, insert=0.2, update=0.2, delete=0.05, scan=0.05)
        draws_a = [mix.choose(random.Random(9)) for _ in range(1)]
        rng_a, rng_b = random.Random(9), random.Random(9)
        assert [mix.choose(rng_a) for _ in range(100)] == [
            mix.choose(rng_b) for _ in range(100)
        ]
        assert draws_a[0] in OPERATIONS


class TestPresets:
    def test_all_six_ycsb_workloads_exist(self):
        assert set(YCSB_MIXES) == {"A", "B", "C", "D", "E", "F"}

    def test_preset_shapes(self):
        assert YCSB_MIXES["A"].weights()["update"] == pytest.approx(0.5)
        assert YCSB_MIXES["B"].weights()["read"] == pytest.approx(0.95)
        assert YCSB_MIXES["C"].weights()["read"] == pytest.approx(1.0)
        assert YCSB_MIXES["D"].weights()["insert"] == pytest.approx(0.05)
        assert YCSB_MIXES["E"].weights()["scan"] == pytest.approx(0.95)
        assert YCSB_MIXES["F"].write_fraction == pytest.approx(0.5)

    def test_make_mix_resolves_names_case_insensitively(self):
        assert make_mix("a") is YCSB_MIXES["A"]
        assert make_mix("B") is YCSB_MIXES["B"]

    def test_make_mix_passes_instances_through(self):
        mix = OperationMix(read=1.0)
        assert make_mix(mix) is mix

    def test_make_mix_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown operation mix"):
            make_mix("Z")
