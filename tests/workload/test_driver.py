"""The workload driver: execution through the API, determinism, rebalances."""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    PHASE_REBALANCE,
    PHASE_STEADY,
    Phase,
    Schedule,
    WorkloadDriver,
    WorkloadSpec,
    run_workload,
    steady_schedule,
    storm_schedule,
)


def config(num_nodes=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )


def small_spec(**overrides):
    options = {
        "dataset": "traffic",
        "initial_records": 120,
        "schedule": steady_schedule(60),
        "mix": "A",
        "keys": "zipfian",
    }
    options.update(overrides)
    return WorkloadSpec(**options)


class TestPrepare:
    def test_creates_and_preloads_the_dataset(self):
        with Database(config()) as db:
            driver = WorkloadDriver(db, small_spec())
            driver.prepare()
            assert "traffic" in db.dataset_names()
            assert db["traffic"].count() == 120
            assert driver.next_key == 120

    def test_prepare_is_idempotent(self):
        with Database(config()) as db:
            driver = WorkloadDriver(db, small_spec())
            driver.prepare()
            driver.prepare()
            assert db["traffic"].count() == 120

    def test_create_dataset_false_requires_existing(self):
        with Database(config()) as db:
            driver = WorkloadDriver(db, small_spec(create_dataset=False))
            with pytest.raises(ValueError, match="does not exist"):
                driver.prepare()

    def test_preload_uses_jittered_feed_batches_without_polluting_op_metrics(self):
        with Database(config()) as db:
            WorkloadDriver(db, small_spec(batch_size=16, batch_jitter=0.25)).prepare()
            # Preload goes through the raw feed (ingest.* events), not the
            # instrumented verbs: bulk-load batches must not appear in the
            # steady-phase write histograms the Fig 7c comparison reads.
            assert db.metrics.counter("ingest.records").value == 120
            assert db.metrics.counter("ops.insert").value == 0
            assert db.metrics.write_latency("steady").count == 0


class TestSteadyTraffic:
    def test_op_counts_match_the_phase(self):
        with Database(config()) as db:
            report = run_workload(db, small_spec())
            (steady,) = report.phases
            assert steady.ops == 60
            assert steady.reads + steady.inserts + steady.updates == 60
            assert report.total_ops == 60
            assert report.snapshot is not None

    def test_all_five_ops_execute(self):
        from repro.api import OperationMix

        spec = small_spec(
            mix=OperationMix(read=0.3, insert=0.2, update=0.2, delete=0.15, scan=0.15),
            schedule=steady_schedule(120),
        )
        with Database(config()) as db:
            report = run_workload(db, spec)
            (steady,) = report.phases
            assert steady.reads > 0
            assert steady.inserts > 0
            assert steady.updates > 0
            assert steady.deletes > 0
            assert steady.scans > 0
            assert steady.scan_rows > 0

    def test_read_latest_workload_finds_its_reads(self):
        """YCSB D ('read what was just written') must not probe keys still
        sitting in the driver's client-side insert buffer."""
        spec = small_spec(mix="D", keys="latest", schedule=steady_schedule(300))
        with Database(config()) as db:
            report = run_workload(db, spec)
            (steady,) = report.phases
            assert steady.inserts > 0
            assert steady.reads > 0
            assert steady.reads_found == steady.reads

    def test_reads_mostly_hit_the_preloaded_keyspace(self):
        with Database(config()) as db:
            report = run_workload(db, small_spec(mix="C"))
            (steady,) = report.phases
            assert steady.reads == 60
            # Zipfian draws stay within the preloaded keyspace, so every read
            # finds its record.
            assert steady.reads_found == 60
            assert steady.reads_missing == 0

    def test_max_seconds_caps_a_phase(self):
        spec = small_spec(
            schedule=Schedule((Phase(name="capped", ops=10_000, max_seconds=0.05),))
        )
        with Database(config()) as db:
            report = run_workload(db, spec)
            assert report.phases[0].ops < 10_000
            assert report.phases[0].simulated_seconds >= 0.05

    def test_metrics_land_in_the_registry(self):
        with Database(config()) as db:
            run_workload(db, small_spec())
            assert db.metrics.counter("ops.total").value > 0
            assert db.metrics.histogram("read", PHASE_STEADY).count > 0
            assert db.metrics.clock.now > 0


class TestDeterminism:
    def test_same_seed_produces_identical_snapshots(self):
        """The acceptance contract: same seed => identical metric snapshots."""

        def run_once():
            with Database(config()) as db:
                return run_workload(
                    db,
                    small_spec(
                        schedule=storm_schedule(
                            warmup=20, steady=60, spike=60, ramp=20
                        )
                    ),
                ).snapshot

        assert run_once() == run_once()

    def test_different_seeds_diverge(self):
        def run_once(seed):
            with Database(config()) as db:
                return run_workload(db, small_spec(), seed=seed).snapshot

        assert run_once(1) != run_once(2)

    def test_seed_defaults_to_the_cluster_config(self):
        with Database(config()) as db:
            driver = WorkloadDriver(db, small_spec())
            assert driver.seed == db.config.seed

    def test_explicit_seed_and_report_seed(self):
        with Database(config()) as db:
            report = run_workload(db, small_spec(), seed=99)
            assert report.seed == 99

    def test_back_to_back_runs_report_their_own_duration(self):
        with Database(config()) as db:
            first = run_workload(db, small_spec())
            second = run_workload(db, small_spec(create_dataset=False))
            # The second report covers only its own run, not the session total.
            assert second.simulated_seconds < db.metrics.clock.now
            assert first.simulated_seconds + second.simulated_seconds == (
                pytest.approx(db.metrics.clock.now)
            )

    def test_back_to_back_runs_scope_their_percentiles(self):
        with Database(config()) as db:
            first = run_workload(db, small_spec(mix="A"))
            assert first.write_p99_seconds  # the write-heavy run saw writes
            # A read-only second run on the same session must not inherit the
            # first run's write samples into its own percentile fields...
            second = run_workload(db, small_spec(mix="C", create_dataset=False))
            assert second.write_p99_seconds == {}
            # ...even though the session registry keeps accumulating.
            assert db.metrics.write_latency(PHASE_STEADY).count > 0


class TestRebalancePhase:
    def storm(self):
        return small_spec(
            schedule=storm_schedule(warmup=20, steady=60, spike=80, ramp=20)
        )

    def test_spike_overlaps_the_resize(self):
        with Database(config()) as db:
            report = run_workload(db, self.storm())
            spike = report.phase("spike")
            assert spike.rebalance_report is not None
            assert spike.rebalance_report.new_nodes == 3
            assert db.num_nodes == 3

    def test_writes_are_tagged_rebalance_and_survive(self):
        with Database(config()) as db:
            report = run_workload(db, self.storm())
            snapshot = report.snapshot
            assert snapshot.histogram_count("update", PHASE_REBALANCE) > 0
            # Concurrent writes were applied, not lost: every preloaded key
            # is still readable after the resize.
            dataset = db["traffic"]
            assert dataset.count() >= 120
            for key in (0, 1, 59, 119):
                assert dataset.get(key) is not None

    def test_reads_interleave_with_protocol_phases(self):
        with Database(config()) as db:
            report = run_workload(db, self.storm())
            assert report.snapshot.histogram_count("read", PHASE_REBALANCE) > 0
            spike = report.phase("spike")
            assert spike.reads > 0
            assert spike.reads_found == spike.reads  # old directory still serves

    def test_write_p99_reported_per_phase(self):
        with Database(config()) as db:
            report = run_workload(db, self.storm())
            assert PHASE_STEADY in report.write_p99_seconds
            assert PHASE_REBALANCE in report.write_p99_seconds
            # The mid-rehash replication round trip shows up in the tail.
            assert (
                report.write_p99_seconds[PHASE_REBALANCE]
                >= report.write_p99_seconds[PHASE_STEADY]
            )

    def test_summary_mentions_phases(self):
        with Database(config()) as db:
            text = run_workload(db, self.storm()).summary()
            for name in ("warmup", "steady", "spike", "ramp", "write p99"):
                assert name in text


class TestSpecValidation:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(initial_records=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(batch_size=0)
        with pytest.raises(ValueError):
            WorkloadSpec(batch_jitter=1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(scan_span=0)

    def test_spec_and_overrides_are_exclusive(self):
        with Database(config()) as db:
            with pytest.raises(ValueError, match="not both"):
                WorkloadDriver(db, small_spec(), initial_records=5)

    def test_overrides_build_a_spec(self):
        with Database(config()) as db:
            driver = WorkloadDriver(db, initial_records=10, default_ops=5)
            report = driver.run()
            assert report.spec.initial_records == 10
            assert report.total_ops == 5
