"""Phases and schedules."""

import pytest

from repro.workload import Phase, Schedule, steady_schedule, storm_schedule


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(name="", ops=10)
        with pytest.raises(ValueError):
            Phase(name="p", ops=-1)
        with pytest.raises(ValueError):
            Phase(name="p", ops=1, max_seconds=0.0)

    def test_rebalance_keys_validated(self):
        Phase(name="p", ops=1, rebalance={"add": 1})  # valid
        with pytest.raises(ValueError, match="unknown rebalance keys"):
            Phase(name="p", ops=1, rebalance={"grow": 1})
        with pytest.raises(ValueError, match="exactly one"):
            Phase(name="p", ops=1, rebalance={"add": 1, "remove": 1})
        with pytest.raises(ValueError, match="exactly one"):
            Phase(name="p", ops=1, rebalance={})


class TestSchedule:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            Schedule(())

    def test_phase_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            Schedule((Phase(name="a", ops=1), Phase(name="a", ops=2)))

    def test_iteration_and_totals(self):
        schedule = Schedule((Phase(name="a", ops=10), Phase(name="b", ops=5)))
        assert len(schedule) == 2
        assert schedule.total_ops == 15
        assert [phase.name for phase in schedule] == ["a", "b"]


class TestBuilders:
    def test_steady_schedule(self):
        schedule = steady_schedule(123)
        assert schedule.names() == ["steady"]
        assert schedule.total_ops == 123

    def test_storm_schedule_shape(self):
        schedule = storm_schedule(warmup=10, steady=40, spike=30, ramp=5)
        assert schedule.names() == ["warmup", "steady", "spike", "ramp"]
        spike = schedule.phases[2]
        assert spike.rebalance == {"add": 1}  # default: add one node
        assert spike.keys == "hotspot"
        assert schedule.phases[0].keys == "uniform"
        assert schedule.total_ops == 85

    def test_storm_schedule_custom_rebalance(self):
        schedule = storm_schedule(rebalance={"remove": 1}, spike_keys="zipfian")
        spike = schedule.phases[2]
        assert spike.rebalance == {"remove": 1}
        assert spike.keys == "zipfian"
