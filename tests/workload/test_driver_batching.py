"""Tests for the batched op pipeline of the workload driver (PR 4).

The batched pipeline (chunked RNG draws, cached bound verbs, ``op.batch``
telemetry) must be observationally identical to the per-op loop it replaced:
same key/op stream off the seeded RNG, same metric snapshots, same phase op
counts.  These tests pin that equivalence and the pipeline-selection rules.
"""

import random

import pytest

from repro.api import ClusterConfig, Database, WorkloadDriver, WorkloadSpec
from repro.workload import Phase, Schedule
from repro.workload.driver import PhaseResult
from repro.workload.keygen import ZipfianKeys
from repro.workload.mixes import make_mix


def open_db():
    return Database(
        ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash")
    )


def run_spec(**overrides):
    db = open_db()
    spec = WorkloadSpec(dataset="t", initial_records=400, default_ops=500, **overrides)
    report = WorkloadDriver(db, spec).run()
    snapshot = report.snapshot
    db.close()
    return report, snapshot


class TestBatchedEqualsLegacy:
    @pytest.mark.parametrize("mix", ["A", "B", "D", "E"])
    def test_same_seed_same_snapshot_across_pipelines(self, mix):
        batched_report, batched = run_spec(mix=mix, batch_ops=True)
        legacy_report, legacy = run_spec(mix=mix, batch_ops=False)
        assert batched == legacy
        assert batched_report.total_ops == legacy_report.total_ops
        for batched_phase, legacy_phase in zip(
            batched_report.phases, legacy_report.phases, strict=True
        ):
            assert batched_phase.ops == legacy_phase.ops
            assert batched_phase.reads == legacy_phase.reads
            assert batched_phase.reads_found == legacy_phase.reads_found
            assert batched_phase.inserts == legacy_phase.inserts
            assert batched_phase.updates == legacy_phase.updates
            assert batched_phase.scans == legacy_phase.scans
            assert batched_phase.scan_rows == legacy_phase.scan_rows

    def test_equivalence_with_deletes_in_mix(self):
        from repro.workload import OperationMix

        mix = OperationMix(name="crud", read=0.4, insert=0.2, update=0.2, delete=0.2)
        batched_report, batched = run_spec(mix=mix, batch_ops=True)
        legacy_report, legacy = run_spec(mix=mix, batch_ops=False)
        assert batched == legacy
        assert (
            batched_report.phases[0].deletes == legacy_report.phases[0].deletes > 0
        )

    def test_tiny_chunk_still_equivalent(self):
        _, chunked = run_spec(mix="A", batch_ops=True, op_chunk=3)
        _, wide = run_spec(mix="A", batch_ops=True, op_chunk=4096)
        assert chunked == wide

    def test_rebalance_schedule_equivalent_across_pipelines(self):
        schedule = Schedule(
            (
                Phase(name="warm", ops=120),
                Phase(name="resize", ops=120, rebalance={"add": 1}),
                Phase(name="cool", ops=120),
            )
        )
        _, batched = run_spec(mix="A", schedule=schedule, batch_ops=True)
        _, legacy = run_spec(mix="A", schedule=schedule, batch_ops=False)
        assert batched == legacy


class TestDrawStream:
    def test_batched_draws_match_old_per_op_loop(self):
        """The chunked draw must consume the RNG exactly as the retired
        per-op loop did: op draw, key draw, and the jittered batch-target
        redraw at every insert-buffer flush point."""
        db = open_db()
        spec = WorkloadSpec(
            dataset="t", initial_records=300, mix="D", default_ops=400, batch_size=8
        )
        driver = WorkloadDriver(db, spec)
        driver.prepare()

        # Reference: replay the old per-op loop's draw sequence from the same
        # RNG stream position (prepare() already consumed the preload draws,
        # so the reference clones the driver's post-prepare state).
        reference_rng = random.Random(driver.seed)
        reference_rng.setstate(driver.rng.getstate())
        mix = make_mix(spec.mix)
        keys = driver._keys

        expected = []
        next_key = driver.next_key
        pending = len(driver._pending_rows)
        target = driver._batch_target
        for _ in range(200):
            op = mix.choose(reference_rng)
            durable = max(1, next_key - pending)
            if op == "read":
                expected.append(("read", keys.next_index(reference_rng, durable)))
            elif op == "insert":
                expected.append(("insert", next_key))
                next_key += 1
                pending += 1
                if pending >= target:
                    jitter = spec.batch_jitter
                    scale = 1.0 + jitter * (2.0 * reference_rng.random() - 1.0)
                    target = max(1, round(spec.batch_size * scale))
                    expected.append(("flush", target))
                    pending = 0
            elif op in ("update", "delete"):
                expected.append((op, keys.next_index(reference_rng, durable)))
            else:
                expected.append(("scan", keys.next_index(reference_rng, durable)))

        plan = driver._draw_chunk(200, mix, keys, PhaseResult(name="probe"))
        actual = []
        for verb, arg in plan:
            if verb == "buffer":
                actual.append(("insert", arg[spec.primary_key]))
            elif verb == "flush":
                actual.append(("flush", arg))
            elif verb == "update":
                actual.append(("update", arg[spec.primary_key]))
            else:
                actual.append((verb, arg))
        assert actual == expected
        db.close()


class TestPipelineSelection:
    def test_auto_batches_without_autopilot(self):
        db = open_db()
        driver = WorkloadDriver(db, WorkloadSpec(dataset="t", default_ops=10))
        assert driver._use_batched_pipeline(Phase(name="p", ops=10))
        db.close()

    def test_max_seconds_falls_back_to_per_op_loop(self):
        db = open_db()
        driver = WorkloadDriver(db, WorkloadSpec(dataset="t", default_ops=10))
        assert not driver._use_batched_pipeline(
            Phase(name="p", ops=10, max_seconds=1.0)
        )
        db.close()

    def test_autopilot_session_falls_back_to_per_op_loop(self):
        db = open_db()
        db.create_dataset("t", primary_key="k")
        db.autopilot(policy="threshold", check_every_ops=50)
        driver = WorkloadDriver(db, WorkloadSpec(dataset="t", default_ops=10))
        assert not driver._use_batched_pipeline(Phase(name="p", ops=10))
        db.close()

    def test_explicit_batch_ops_overrides_auto(self):
        db = open_db()
        db.create_dataset("t", primary_key="k")
        db.autopilot(policy="threshold", check_every_ops=50)
        driver = WorkloadDriver(
            db, WorkloadSpec(dataset="t", default_ops=10, batch_ops=True)
        )
        assert driver._use_batched_pipeline(Phase(name="p", ops=10))
        db.close()

    def test_max_seconds_wins_over_explicit_batch_ops(self):
        # A time-budgeted phase checks the clock before every op; even an
        # explicit batch_ops=True must not bypass that cutoff.
        db = open_db()
        driver = WorkloadDriver(
            db, WorkloadSpec(dataset="t", default_ops=10, batch_ops=True)
        )
        assert not driver._use_batched_pipeline(
            Phase(name="p", ops=10, max_seconds=1.0)
        )
        db.close()

    def test_max_seconds_cutoff_respected_with_batch_ops_true(self):
        db = open_db()
        spec = WorkloadSpec(
            dataset="t",
            initial_records=200,
            mix="C",
            batch_ops=True,
            schedule=Schedule((Phase(name="budget", ops=100_000, max_seconds=1e-4),)),
        )
        report = WorkloadDriver(db, spec).run()
        assert report.phase("budget").ops < 100_000
        db.close()


class TestZetaCache:
    def test_zeta_constants_cached_per_num_keys_and_theta(self):
        from repro.workload.keygen import _ZETA_CACHE

        ZipfianKeys(num_keys=4321, theta=0.93)
        assert (4321, 0.93) in _ZETA_CACHE
        first = _ZETA_CACHE[(4321, 0.93)]
        ZipfianKeys(num_keys=4321, theta=0.93)
        assert _ZETA_CACHE[(4321, 0.93)] is first

    def test_cached_generator_draws_identically(self):
        a = ZipfianKeys(num_keys=2000)
        b = ZipfianKeys(num_keys=2000)  # zeta served from the cache
        rng_a, rng_b = random.Random(5), random.Random(5)
        for _ in range(500):
            assert a.next_index(rng_a, 2000) == b.next_index(rng_b, 2000)
