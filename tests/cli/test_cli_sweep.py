"""The ``sweep`` and ``compare`` subcommands end to end."""

import json

import pytest

from repro.cli import main

SWEEP_SPEC = """\
[scenario]
name = "cli-sweep"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 13
[cluster.lsm]
memory_component_bytes = "32 KiB"
[cluster.bucketing]
max_bucket_bytes = "48 KiB"

[trace]

[workload]
initial_records = 100
mix = "A"

[[workload.phases]]
name = "steady"
ops = 30

[[workload.phases]]
name = "shrink"
ops = 30
rebalance = { remove = 1 }

[checks]
expect_nodes = 2
write_p99_budget_ms = { steady = 5000.0 }

[sweep.axes]
strategy = ["dynahash", "statichash"]
"""


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("spec") / "cli_sweep.toml"
    path.write_text(SWEEP_SPEC)
    return path


@pytest.fixture(scope="module")
def sweep_out(tmp_path_factory, spec_path):
    """One sweep run shared by the compare tests (module-scoped: it simulates)."""
    out_dir = tmp_path_factory.mktemp("out")
    assert main(["sweep", str(spec_path), "--out-dir", str(out_dir)]) == 0
    return out_dir


class TestSweep:
    def test_runs_the_grid_and_writes_the_manifest(self, sweep_out, capsys):
        manifest_path = sweep_out / "sweep.manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert [cell["id"] for cell in manifest["cells"]] == [
            "strategy=dynahash",
            "strategy=statichash",
        ]
        for cell in manifest["cells"]:
            assert (sweep_out / cell["recording"]).exists()

    def test_banner_progress_and_next_step_hint(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(["sweep", str(spec_path), "--axis", "strategy=dynahash",
                     "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "sweep of scenario 'cli-sweep': strategy[1] = 1 cell(s), jobs=1" in out
        assert "cell strategy=dynahash: OK" in out
        assert "sweep OK: 1/1 cell(s) passed" in out
        assert "compare with: python -m repro compare" in out

    def test_failing_cell_fails_the_sweep(self, spec_path, tmp_path, capsys):
        text = SWEEP_SPEC.replace("expect_nodes = 2", "expect_nodes = 9")
        bad = tmp_path / "bad.toml"
        bad.write_text(text)
        out_dir = tmp_path / "sweep"
        assert main(["sweep", str(bad), "--axis", "strategy=dynahash",
                     "--out-dir", str(out_dir), "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "cell strategy=dynahash: FAILED" in out  # failures print even with -q
        assert "sweep FAILED: 0/1 cell(s) passed" in out

    def test_jobs_below_one_exits_2(self, spec_path, tmp_path, capsys):
        assert main(["sweep", str(spec_path), "--jobs", "0",
                     "--out-dir", str(tmp_path / "x")]) == 2
        assert "--jobs must be at least 1" in capsys.readouterr().err

    def test_unknown_axis_exits_2_with_hint(self, spec_path, tmp_path, capsys):
        assert main(["sweep", str(spec_path), "--axis", "bogus=1",
                     "--out-dir", str(tmp_path / "x")]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_spec_without_axes_exits_2(self, tmp_path, capsys):
        no_axes = tmp_path / "noaxes.toml"
        no_axes.write_text(SWEEP_SPEC.replace(
            '[sweep.axes]\nstrategy = ["dynahash", "statichash"]\n', ""
        ))
        assert main(["sweep", str(no_axes), "--out-dir", str(tmp_path / "x")]) == 2
        assert "no axes" in capsys.readouterr().err


class TestCompare:
    def test_manifest_renders_the_head_to_head(self, sweep_out, capsys):
        assert main(["compare", str(sweep_out / "sweep.manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "headline metrics:" in out
        assert "deltas vs baseline 'strategy=dynahash':" in out
        assert "write_p99_budget_ms.steady" in out
        assert "rebalance.records_moved" in out

    def test_explicit_recordings_compare_too(self, sweep_out, capsys):
        recordings = sorted(sweep_out.glob("*.recording.json"))
        assert main(["compare", *map(str, recordings)]) == 0
        assert "deltas vs baseline" in capsys.readouterr().out

    def test_passing_gates_exit_0(self, sweep_out, capsys):
        assert main(["compare", str(sweep_out / "sweep.manifest.json"),
                     "--gate", "total_ops=0.0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "gate total_ops [strategy=statichash]: PASS" in out
        assert "gates: 1/1 passed" in out

    def test_breached_gate_exits_1(self, sweep_out, capsys):
        assert main(["compare", str(sweep_out / "sweep.manifest.json"),
                     "--gate", "no_such_metric=0.1", "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "gates: 0/1 passed" in out

    def test_html_dashboard_is_written(self, sweep_out, tmp_path, capsys):
        html_path = tmp_path / "dash.html"
        assert main(["compare", str(sweep_out / "sweep.manifest.json"),
                     "--html", str(html_path), "--quiet"]) == 0
        assert f"dashboard written: {html_path}" in capsys.readouterr().out
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "http://" not in html and "https://" not in html

    def test_single_recording_notes_the_degradation(self, sweep_out, capsys):
        recording = sorted(sweep_out.glob("*.recording.json"))[0]
        assert main(["compare", str(recording)]) == 0
        out = capsys.readouterr().out
        assert "single recording" in out
        assert "deltas vs baseline" not in out

    def test_missing_source_exits_2(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err
