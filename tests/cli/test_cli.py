"""The ``python -m repro`` CLI: subcommands, exit codes, output shape."""

import json

import pytest

from repro.cli import build_parser, main

SPEC_TEXT = """
[scenario]
name = "cli-smoke"

[cluster]
nodes = 3
partitions_per_node = 2
[cluster.lsm]
memory_component_bytes = "32 KiB"

[workload]
initial_records = 60
mix = "A"

[[workload.phases]]
name = "steady"
ops = 40

[checks]
expect_nodes = 3
min_total_ops = 40
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "cli_smoke.toml"
    path.write_text(SPEC_TEXT)
    return path


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("run", "bench", "inspect", "replay"):
            assert command in text

    def test_no_command_prints_help_and_exits_2(self, capsys):
        assert main([]) == 2
        assert "COMMAND" in capsys.readouterr().out


class TestRun:
    def test_run_passing_spec_exits_zero(self, spec_path, capsys):
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario 'cli-smoke' OK" in out
        assert "check expect_nodes: PASS" in out

    def test_run_quiet_prints_verdict_only(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--quiet"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert out[0].startswith("scenario 'cli-smoke' OK")

    def test_failing_check_exits_one(self, tmp_path, capsys):
        path = tmp_path / "failing.toml"
        path.write_text(SPEC_TEXT.replace("expect_nodes = 3", "expect_nodes = 5"))
        assert main(["run", str(path), "-q"]) == 1
        assert "check expect_nodes: FAIL" in capsys.readouterr().out

    def test_invalid_spec_exits_two_with_one_error_line(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text("[scenario]\nname = \"x\"\n[cluster]\nnode = 3\n[workload]\n")
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "'node'" in err

    def test_missing_spec_exits_two(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_seed_override_changes_report(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--seed", "7"]) == 0
        assert "seed=7" in capsys.readouterr().out


class TestRecordReplayInspect:
    def test_record_then_replay_zero_diff(self, spec_path, tmp_path, capsys):
        recording = tmp_path / "run.json"
        assert main(["run", str(spec_path), "-q", "--record", str(recording)]) == 0
        assert recording.exists()
        assert main(["replay", str(recording)]) == 0
        assert "replay OK: snapshot identical" in capsys.readouterr().out

    def test_replay_detects_divergence(self, spec_path, tmp_path, capsys):
        recording = tmp_path / "run.json"
        main(["run", str(spec_path), "-q", "--record", str(recording)])
        document = json.loads(recording.read_text())
        document["snapshot"]["counters"]["ops.total"] += 1
        recording.write_text(json.dumps(document))
        assert main(["replay", str(recording)]) == 1
        out = capsys.readouterr().out
        assert "replay DIVERGED" in out and "counters[ops.total]" in out

    def test_inspect_prints_cluster_and_histograms(self, spec_path, tmp_path, capsys):
        recording = tmp_path / "run.json"
        main(["run", str(spec_path), "-q", "--record", str(recording)])
        assert main(["inspect", str(recording)]) == 0
        out = capsys.readouterr().out
        assert "recording of scenario 'cli-smoke'" in out
        assert "traffic" in out  # the dataset table
        assert "latency histograms (ms):" in out
        assert "ops.total" in out

    def test_inspect_rejects_non_recordings(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["inspect", str(path)]) == 2
        assert "not a scenario recording" in capsys.readouterr().err


class TestBench:
    def test_bench_dry_run_lists_micro_suite(self, capsys):
        assert main(["bench", "--suite", "micro", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "micro:event_emit" in out and "micro:driver_ops" in out
        assert "dry run" in out

    def test_bench_dry_run_all_includes_experiments(self, capsys):
        assert main(["bench", "--suite", "all", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "experiment:traffic" in out and "experiment:autopilot" in out

    def test_bench_rejects_micro_flags_on_experiment_suites(self, capsys):
        assert main(["bench", "--suite", "traffic", "--check", "baseline.json"]) == 2
        err = capsys.readouterr().err
        assert "--check" in err and "micro" in err
