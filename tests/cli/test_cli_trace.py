"""The ``trace`` subcommand, ``inspect --format json``, and replay trace diffs."""

import json

import pytest

from repro.cli import main

TRACED_SPEC = """\
[scenario]
name = "cli-traced"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 21

[trace]

[workload]
dataset = "t"
initial_records = 100

[[workload.phases]]
name = "steady"
ops = 50

[[steps]]
kind = "rebalance"
add = 1
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "traced.toml"
    path.write_text(TRACED_SPEC)
    return path


@pytest.fixture
def recording_path(tmp_path, spec_path):
    path = tmp_path / "rec.json"
    assert main(["run", str(spec_path), "--record", str(path), "-q"]) == 0
    return path


class TestTraceSubcommand:
    def test_trace_from_recording(self, recording_path, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["trace", str(recording_path), "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "span tree:" in stdout
        assert "timeline:" in stdout
        assert "session" in stdout
        assert "ui.perfetto.dev" in stdout
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["scenario"] == "cli-traced"

    def test_trace_from_spec_forces_tracing_on(self, tmp_path, capsys):
        untraced = tmp_path / "untraced.toml"
        untraced.write_text(TRACED_SPEC.replace("[trace]\n", ""))
        out = tmp_path / "chrome.json"
        assert main(["trace", str(untraced), "-q", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "tracing enabled" in stdout
        assert json.loads(out.read_text())["traceEvents"]

    def test_recording_without_trace_errors_with_hint(self, tmp_path, capsys):
        untraced = tmp_path / "untraced.toml"
        untraced.write_text(TRACED_SPEC.replace("[trace]\n", ""))
        recording = tmp_path / "untraced_rec.json"
        assert main(["run", str(untraced), "--record", str(recording), "-q"]) == 0
        assert main(["trace", str(recording)]) == 2
        err = capsys.readouterr().err
        assert "no embedded trace" in err
        assert "[trace]" in err

    def test_missing_source_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.toml")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_limit_truncates_the_tree(self, recording_path, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["trace", str(recording_path), "--limit", "2", "--out", str(out)]) == 0
        assert "more span(s)" in capsys.readouterr().out

    def test_default_out_lands_in_cwd(self, recording_path, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", str(recording_path), "-q"]) == 0
        assert (tmp_path / "rec.trace.json").exists()


class TestInspectJson:
    def test_json_format_is_a_machine_readable_summary(self, recording_path, capsys):
        assert main(["inspect", str(recording_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["scenario"] == "cli-traced"
        assert document["seed"] == 21
        assert document["nodes"] == {"before": 3, "after": 4}
        assert document["counters"]["ops.total"] == 50
        assert "read[steady]" in document["histograms"]
        assert document["trace"]["spans"] > 0
        assert "rebalance.in_flight" in document["trace"]["series"]

    def test_json_counters_flag_expands_the_set(self, recording_path, capsys):
        assert main(["inspect", str(recording_path), "--format", "json", "--counters"]) == 0
        full = json.loads(capsys.readouterr().out)
        assert main(["inspect", str(recording_path), "--format", "json"]) == 0
        headline = json.loads(capsys.readouterr().out)
        assert set(headline["counters"]) <= set(full["counters"])
        assert len(full["counters"]) > len(headline["counters"])

    def test_plain_format_mentions_the_trace(self, recording_path, capsys):
        assert main(["inspect", str(recording_path)]) == 0
        assert "trace:" in capsys.readouterr().out


class TestReplayTraceDiff:
    def test_replay_reports_trace_identity(self, recording_path, capsys):
        assert main(["replay", str(recording_path)]) == 0
        assert "snapshot and trace identical" in capsys.readouterr().out

    def test_tampered_trace_diverges(self, recording_path, capsys):
        document = json.loads(recording_path.read_text())
        document["trace"]["spans"][0]["dur"] += 1.0
        recording_path.write_text(json.dumps(document))
        assert main(["replay", str(recording_path)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "trace.spans[0]" in out


class TestTimelineCsvFlag:
    def test_timeline_csv_export(self, recording_path, tmp_path, capsys):
        csv_path = tmp_path / "timeline.csv"
        out_path = tmp_path / "chrome.json"
        assert main(["trace", str(recording_path), "--out", str(out_path),
                     "--timeline-csv", str(csv_path)]) == 0
        stdout = capsys.readouterr().out
        assert f"timeline CSV written: {csv_path}" in stdout
        lines = csv_path.read_text().splitlines()
        header = lines[0].split(",")
        assert header[0] == "simulated_seconds"
        assert header[1:] == sorted(header[1:])  # one sorted column per series
        assert any(name.startswith("node.bytes.") for name in header)
        assert len(lines) > 1

    def test_timeline_csv_is_byte_stable(self, recording_path, tmp_path):
        first = tmp_path / "a.csv"
        second = tmp_path / "b.csv"
        for path in (first, second):
            assert main(["trace", str(recording_path), "-q",
                         "--out", str(tmp_path / "chrome.json"),
                         "--timeline-csv", str(path)]) == 0
        assert first.read_bytes() == second.read_bytes()
