"""Tests for the bucketed LSM-tree (local directory of per-bucket LSM-trees)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import BucketingConfig, LSMConfig
from repro.common.errors import BucketNotFoundError, StorageError
from repro.bucketed.bucketed_lsm import BucketedLSMTree
from repro.hashing.bucket_id import ROOT_BUCKET, BucketId, covers_exactly
from repro.lsm.entry import Entry


def make_tree(
    initial_depth=1,
    max_bucket_bytes=1 << 30,
    memory_bytes=1 << 20,
    static=False,
    partition_id=0,
):
    initial = (
        [ROOT_BUCKET]
        if initial_depth == 0
        else [BucketId(p, initial_depth) for p in range(1 << initial_depth)]
    )
    return BucketedLSMTree(
        name="primary",
        partition_id=partition_id,
        initial_buckets=initial,
        lsm_config=LSMConfig(memory_component_bytes=memory_bytes),
        bucketing_config=BucketingConfig(max_bucket_bytes=max_bucket_bytes, static=static),
    )


class TestConstruction:
    def test_initial_buckets_registered(self):
        tree = make_tree(initial_depth=2)
        assert tree.bucket_count == 4
        assert covers_exactly(tree.bucket_ids)

    def test_requires_at_least_one_bucket(self):
        with pytest.raises(StorageError):
            BucketedLSMTree("primary", 0, initial_buckets=[])

    def test_manifest_forced_at_creation(self):
        tree = make_tree(initial_depth=1)
        assert tree.manifest.valid_bucket_ids(durable=True) == {(0, 1), (1, 1)}


class TestReadWrite:
    def test_point_lookup_roundtrip(self):
        tree = make_tree(initial_depth=2)
        for key in range(100):
            tree.insert(key, f"v{key}")
        assert all(tree.get(key) == f"v{key}" for key in range(100))

    def test_writes_are_routed_to_owning_bucket(self):
        tree = make_tree(initial_depth=2)
        for key in range(200):
            tree.insert(key, key)
        for bucket in tree.buckets():
            for entry in bucket.scan():
                assert bucket.bucket_id.contains_key(entry.key)

    def test_delete(self):
        tree = make_tree()
        tree.insert(5, "five")
        tree.delete(5)
        assert tree.get(5) is None
        assert 5 not in tree

    def test_contains_and_len(self):
        tree = make_tree()
        for key in range(30):
            tree.insert(key, key)
        tree.delete(7)
        assert 3 in tree
        assert 7 not in tree
        assert len(tree) == 29

    def test_apply_entry_routes_by_key(self):
        tree = make_tree(initial_depth=1)
        tree.apply_entry(Entry(key=11, value="replicated", seqnum=77))
        assert tree.get(11) == "replicated"

    def test_bucket_lookup_errors(self):
        tree = make_tree(initial_depth=1)
        with pytest.raises(BucketNotFoundError):
            tree.bucket(BucketId(0b101, 3))


class TestScan:
    def test_unordered_scan_returns_everything(self):
        tree = make_tree(initial_depth=2)
        keys = list(range(100))
        for key in keys:
            tree.insert(key, key)
        assert sorted(e.key for e in tree.scan()) == keys

    def test_unordered_scan_not_necessarily_sorted(self):
        tree = make_tree(initial_depth=2)
        for key in range(100):
            tree.insert(key, key)
        unordered = [e.key for e in tree.scan(ordered=False)]
        # It contains all keys; global sortedness is not guaranteed (and with
        # hashing it is essentially never sorted).
        assert sorted(unordered) == list(range(100))

    def test_ordered_scan_is_globally_sorted(self):
        tree = make_tree(initial_depth=2)
        for key in range(100):
            tree.insert(key, key)
        assert [e.key for e in tree.scan(ordered=True)] == list(range(100))

    def test_scan_bounds_apply_per_bucket(self):
        tree = make_tree(initial_depth=2)
        for key in range(50):
            tree.insert(key, key)
        result = sorted(e.key for e in tree.scan(low=10, high=20))
        assert result == list(range(10, 21))


class TestMaintenanceAndSplits:
    def test_maintain_flushes_over_budget_buckets(self):
        tree = make_tree(memory_bytes=256)
        for key in range(50):
            tree.insert(key, "x" * 64)
        report = tree.maintain()
        assert report.flush_bytes > 0

    def test_dynamic_split_triggers_on_size(self):
        tree = make_tree(initial_depth=1, max_bucket_bytes=4096, memory_bytes=1024)
        for key in range(300):
            tree.insert(key, "x" * 64)
            tree.maintain()
        assert tree.bucket_count > 2
        assert covers_exactly(tree.bucket_ids)
        # All records still readable after splits.
        assert all(tree.get(key) == "x" * 64 for key in range(300))

    def test_static_config_never_splits(self):
        tree = make_tree(initial_depth=1, max_bucket_bytes=1024, memory_bytes=512, static=True)
        for key in range(300):
            tree.insert(key, "x" * 64)
            tree.maintain()
        assert tree.bucket_count == 2

    def test_disable_splits_during_rebalance(self):
        tree = make_tree(initial_depth=1, max_bucket_bytes=1024, memory_bytes=512)
        tree.disable_splits()
        for key in range(200):
            tree.insert(key, "x" * 64)
            tree.maintain()
        assert tree.bucket_count == 2
        tree.enable_splits()
        for key in range(200, 400):
            tree.insert(key, "x" * 64)
            tree.maintain()
        assert tree.bucket_count > 2

    def test_enable_splits_does_not_override_static(self):
        tree = make_tree(static=True)
        tree.enable_splits()
        assert not tree.splits_enabled

    def test_split_history_recorded(self):
        tree = make_tree(initial_depth=1, max_bucket_bytes=2048, memory_bytes=512)
        for key in range(300):
            tree.insert(key, "x" * 64)
            tree.maintain()
        assert len(tree.split_history) == tree.bucket_count - 2

    def test_explicit_split_updates_directory_and_manifest(self):
        tree = make_tree(initial_depth=1)
        for key in range(50):
            tree.insert(key, key)
        target = tree.bucket_ids[0]
        result = tree.split(target)
        assert target not in tree.bucket_ids
        assert result.low_child.bucket_id in tree.bucket_ids
        assert covers_exactly(tree.bucket_ids)
        durable = tree.manifest.valid_bucket_ids(durable=True)
        assert (result.low_child.bucket_id.prefix, result.low_child.depth) in durable


class TestRebalanceOperations:
    def test_snapshot_bucket_flushes_and_retains(self):
        tree = make_tree(initial_depth=1)
        for key in range(40):
            tree.insert(key, key)
        bucket_id = tree.bucket_ids[0]
        snapshot = tree.snapshot_bucket(bucket_id)
        assert all(component.refcount >= 1 for component in snapshot)
        total_snapshot_keys = sum(len(c) for c in snapshot)
        assert total_snapshot_keys == sum(
            1 for k in range(40) if bucket_id.contains_key(k)
        )

    def test_install_bucket_from_entries(self):
        source = make_tree(initial_depth=1, partition_id=0)
        for key in range(60):
            source.insert(key, f"v{key}")
        moving = source.bucket_ids[0]
        entries = source.bucket(moving).entries()

        destination = BucketedLSMTree(
            "primary",
            partition_id=1,
            initial_buckets=[moving.sibling()] if moving.depth else [ROOT_BUCKET],
            lsm_config=LSMConfig(memory_component_bytes=1 << 20),
        )
        destination.install_bucket(moving, entries)
        assert moving in destination.bucket_ids
        for entry in entries:
            assert destination.get(entry.key) == entry.value

    def test_install_bucket_is_idempotent(self):
        tree = make_tree(initial_depth=1)
        bucket_id = tree.bucket_ids[0]
        existing = tree.bucket(bucket_id)
        again = tree.install_bucket(bucket_id, [])
        assert again is existing

    def test_remove_bucket_is_idempotent_and_reclaims(self):
        tree = make_tree(initial_depth=1)
        for key in range(40):
            tree.insert(key, key)
        victim_id = tree.bucket_ids[0]
        victim = tree.bucket(victim_id)
        victim.flush()
        components = list(victim.disk_components)
        tree.remove_bucket(victim_id)
        tree.remove_bucket(victim_id)  # idempotent
        assert victim_id not in tree.bucket_ids
        assert all(component.is_destroyed for component in components)

    def test_removed_bucket_survives_for_active_readers(self):
        """Reference counting: an in-flight snapshot keeps reading after removal."""
        tree = make_tree(initial_depth=1)
        for key in range(40):
            tree.insert(key, key)
        victim_id = tree.bucket_ids[0]
        snapshot = tree.snapshot_bucket(victim_id)
        tree.remove_bucket(victim_id)
        assert all(not component.is_destroyed for component in snapshot)
        from repro.bucketed.bucket import Bucket

        Bucket.release_snapshot(snapshot)
        assert all(component.is_destroyed for component in snapshot)

    def test_bucket_sizes_reflect_data_skew(self):
        tree = make_tree(initial_depth=2)
        for key in range(400):
            tree.insert(key, "x" * 32)
        sizes = tree.bucket_sizes()
        assert len(sizes) == 4
        assert all(size > 0 for size in sizes.values())
        assert sum(sizes.values()) == tree.size_bytes


class TestAggregation:
    def test_aggregated_stats_sum_buckets(self):
        tree = make_tree(initial_depth=2)
        for key in range(100):
            tree.insert(key, key)
        tree.flush_all()
        stats = tree.aggregated_stats()
        assert stats.records_written == 100
        assert stats.flush_count >= 1

    def test_component_count(self):
        tree = make_tree(initial_depth=1)
        for key in range(20):
            tree.insert(key, key)
        tree.flush_all()
        assert tree.component_count >= 1


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "maintain"]),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=120,
        )
    )
    def test_bucketed_tree_matches_model_dict(self, operations):
        """Under inserts/deletes/splits the tree always matches a plain dict."""
        tree = make_tree(initial_depth=1, max_bucket_bytes=2048, memory_bytes=512)
        model = {}
        for op, key in operations:
            if op == "insert":
                tree.insert(key, f"value-{key}")
                model[key] = f"value-{key}"
            elif op == "delete":
                tree.delete(key)
                model.pop(key, None)
            else:
                tree.maintain()
        assert covers_exactly(tree.bucket_ids)
        for key in range(51):
            assert tree.get(key) == model.get(key)
        assert sorted(e.key for e in tree.scan(ordered=True)) == sorted(model.keys())
