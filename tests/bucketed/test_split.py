"""Tests for Algorithm 1 (bucket split)."""

import pytest

from repro.common.config import LSMConfig
from repro.common.errors import StorageError
from repro.bucketed.bucket import Bucket
from repro.bucketed.split import split_bucket
from repro.hashing.bucket_id import ROOT_BUCKET
from repro.lsm.manifest import Manifest


def loaded_bucket(num_keys=100, flushed=True):
    bucket = Bucket(ROOT_BUCKET, config=LSMConfig(memory_component_bytes=1 << 20))
    for key in range(num_keys):
        bucket.insert(key, f"value-{key}")
    if flushed:
        bucket.flush()
    return bucket


class TestSplitProtocol:
    def test_split_preserves_all_records(self):
        bucket = loaded_bucket(200)
        result = split_bucket(bucket)
        combined = {e.key: e.value for child in result.children for e in child.scan()}
        assert combined == {k: f"value-{k}" for k in range(200)}

    def test_split_of_unflushed_bucket_flushes_first(self):
        bucket = loaded_bucket(50, flushed=False)
        result = split_bucket(bucket)
        assert result.async_flush_bytes > 0
        combined = {e.key for child in result.children for e in child.scan()}
        assert combined == set(range(50))

    def test_split_writes_no_new_data_components(self):
        """The defining property: a split only creates reference components."""
        bucket = loaded_bucket(100)
        flushed_before = bucket.tree.stats.bytes_flushed
        result = split_bucket(bucket)
        assert bucket.tree.stats.bytes_flushed == flushed_before  # nothing new written
        for child in result.children:
            assert child.tree.stats.bytes_flushed == 0
            assert child.tree.stats.bytes_merged_written == 0

    def test_sync_flush_captures_stragglers(self):
        """Writes landing between the async flush and the lock are persisted
        by the synchronous flush (the two-flush approach)."""
        bucket = loaded_bucket(50)
        # Simulate a straggler write arriving after the caller's earlier flush.
        bucket.insert(999, "late")
        result = split_bucket(bucket)
        assert result.async_flush_bytes > 0 or result.sync_flush_bytes > 0
        combined = {e.key for child in result.children for e in child.scan()}
        assert 999 in combined

    def test_bucket_is_unlocked_after_split(self):
        bucket = loaded_bucket(10)
        split_bucket(bucket)
        assert not bucket.is_locked
        assert not bucket.tree.merges_paused

    def test_split_locked_bucket_rejected(self):
        bucket = loaded_bucket(10)
        bucket.lock()
        with pytest.raises(StorageError):
            split_bucket(bucket)

    def test_split_destroyed_bucket_rejected(self):
        bucket = loaded_bucket(10)
        bucket.deactivate()
        with pytest.raises(StorageError):
            split_bucket(bucket)

    def test_children_have_incremented_depth(self):
        bucket = loaded_bucket(10)
        result = split_bucket(bucket)
        assert result.low_child.depth == 1
        assert result.high_child.depth == 1

    def test_split_forces_manifest(self):
        bucket = loaded_bucket(30)
        manifest = Manifest("primary")
        manifest.add_bucket(0, 0)
        manifest.force()
        forced_before = manifest.force_count
        result = split_bucket(bucket, manifest=manifest)
        assert manifest.force_count == forced_before + 1
        durable_ids = manifest.valid_bucket_ids(durable=True)
        assert (result.low_child.bucket_id.prefix, 1) in durable_ids
        assert (result.high_child.bucket_id.prefix, 1) in durable_ids
        assert (0, 0) not in durable_ids

    def test_crash_before_force_reverts_to_parent(self):
        """A crash mid-split must leave the parent as the only valid bucket."""
        manifest = Manifest("primary")
        manifest.add_bucket(0, 0)
        manifest.force()
        # Simulate the crash by simply never calling split with the manifest:
        # the volatile mutation below is what a half-finished split would do.
        manifest.remove_bucket(0, 0)
        manifest.add_bucket(0, 1)
        manifest.crash_and_recover()
        assert manifest.valid_bucket_ids() == {(0, 0)}

    def test_blocked_write_bytes_is_sync_flush(self):
        bucket = loaded_bucket(20)
        bucket.insert(500, "straggler")
        result = split_bucket(bucket)
        assert result.blocked_write_bytes == result.sync_flush_bytes

    def test_referenced_components_counted(self):
        bucket = loaded_bucket(10)
        bucket.insert(1000, "more")
        bucket.flush()
        result = split_bucket(bucket)
        assert result.referenced_components == len(bucket.tree.disk_components)
        for child in result.children:
            assert child.component_count == result.referenced_components
