"""Tests for a single bucket (one extendible-hash bucket as an LSM-tree)."""

import pytest

from repro.common.config import LSMConfig
from repro.common.errors import StorageError
from repro.common.hashutil import hash_key, low_bits
from repro.bucketed.bucket import Bucket
from repro.hashing.bucket_id import ROOT_BUCKET, BucketId


def small_config():
    return LSMConfig(memory_component_bytes=1024)


def keys_for_bucket(bucket_id, count, start=0):
    """Generate `count` integer keys that hash into `bucket_id`."""
    keys = []
    key = start
    while len(keys) < count:
        if bucket_id.contains_key(key):
            keys.append(key)
        key += 1
    return keys


class TestBasicOperations:
    def test_insert_and_get(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "one")
        assert bucket.get(1) == "one"

    def test_rejects_keys_outside_bucket(self):
        bucket_id = BucketId(0b0, 1)
        bucket = Bucket(bucket_id, config=small_config())
        foreign = next(k for k in range(100) if not bucket_id.contains_key(k))
        with pytest.raises(StorageError):
            bucket.insert(foreign, "x")
        with pytest.raises(StorageError):
            bucket.delete(foreign)

    def test_delete(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "one")
        bucket.delete(1)
        assert bucket.get(1) is None

    def test_scan_is_key_ordered_within_bucket(self):
        bucket_id = BucketId(0b1, 1)
        bucket = Bucket(bucket_id, config=small_config())
        keys = keys_for_bucket(bucket_id, 20)
        for key in reversed(keys):
            bucket.insert(key, key)
        assert [e.key for e in bucket.scan()] == sorted(keys)

    def test_entries_returns_live_records(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "a")
        bucket.insert(2, "b")
        bucket.delete(1)
        assert {e.key for e in bucket.entries()} == {2}

    def test_size_tracks_inserts(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        assert bucket.size_bytes == 0
        bucket.insert(1, "x" * 500)
        assert bucket.size_bytes > 500


class TestLocking:
    def test_locked_bucket_rejects_reads_and_writes(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "a")
        bucket.lock()
        with pytest.raises(StorageError):
            bucket.insert(2, "b")
        with pytest.raises(StorageError):
            bucket.get(1)
        bucket.unlock()
        assert bucket.get(1) == "a"

    def test_double_lock_rejected(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.lock()
        with pytest.raises(StorageError):
            bucket.lock()

    def test_unlock_without_lock_rejected(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        with pytest.raises(StorageError):
            bucket.unlock()


class TestSnapshot:
    def test_snapshot_components_are_retained(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "a")
        bucket.flush()
        snapshot = bucket.snapshot_components()
        assert all(component.refcount >= 1 for component in snapshot)
        Bucket.release_snapshot(snapshot)
        assert all(component.refcount == 0 for component in snapshot)

    def test_snapshot_survives_bucket_removal(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        bucket.insert(1, "a")
        bucket.flush()
        snapshot = bucket.snapshot_components()
        bucket.deactivate()
        # The snapshot still reads fine: components are pinned.
        assert snapshot[0].get(1).value == "a"
        Bucket.release_snapshot(snapshot)
        assert all(component.is_destroyed for component in snapshot)


class TestSplitInto:
    def test_children_cover_parent_and_are_disjoint(self):
        bucket = Bucket(BucketId(0b1, 1), config=small_config())
        keys = keys_for_bucket(bucket.bucket_id, 100)
        for key in keys:
            bucket.insert(key, f"v{key}")
        bucket.flush()
        low, high = bucket.split_into()
        low_keys = {e.key for e in low.scan()}
        high_keys = {e.key for e in high.scan()}
        assert low_keys | high_keys == set(keys)
        assert low_keys & high_keys == set()

    def test_children_depth_and_prefixes(self):
        bucket = Bucket(BucketId(0b11, 2), config=small_config())
        low, high = bucket.split_into()
        assert low.bucket_id == BucketId(0b011, 3)
        assert high.bucket_id == BucketId(0b111, 3)

    def test_children_reference_not_copy(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        for key in range(50):
            bucket.insert(key, "x" * 20)
        bucket.flush()
        parent_component = bucket.disk_components[0]
        low, high = bucket.split_into()
        # No new real data was written: children hold reference components
        # pinned to the parent's component.
        assert parent_component.refcount == 2
        for child in (low, high):
            for component in child.disk_components:
                assert component.target is parent_component

    def test_resplit_of_reference_components_targets_real_component(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        for key in range(80):
            bucket.insert(key, "v")
        bucket.flush()
        real = bucket.disk_components[0]
        low, _high = bucket.split_into()
        # Split the child again before any merge happened.
        lower, upper = low.split_into()
        for grandchild in (lower, upper):
            for component in grandchild.disk_components:
                assert component.target is real

    def test_point_lookup_filtering_through_references(self):
        bucket = Bucket(ROOT_BUCKET, config=small_config())
        keys = list(range(60))
        for key in keys:
            bucket.insert(key, f"v{key}")
        bucket.flush()
        low, high = bucket.split_into()
        for key in keys:
            side = low if low_bits(hash_key(key), 1) == 0 else high
            other = high if side is low else low
            assert side.get(key) == f"v{key}"
            assert other.get(key) is None
