"""Tests for the bucketed scan modes and the optimizer rule."""

from repro.bucketed.scan import (
    ScanMode,
    choose_scan_mode,
    estimate_merge_comparisons,
    ordered_scan,
    scan_with_mode,
    unordered_scan,
)
from repro.lsm.entry import Entry


def stream(keys, seq_start=1):
    return [Entry(key=k, value=str(k), seqnum=seq_start + i) for i, k in enumerate(sorted(keys))]


class TestOptimizerRule:
    def test_default_is_unordered(self):
        assert choose_scan_mode(requires_primary_key_order=False) is ScanMode.UNORDERED

    def test_order_requirement_forces_merge_sort(self):
        assert choose_scan_mode(requires_primary_key_order=True) is ScanMode.ORDERED


class TestUnorderedScan:
    def test_concatenates_all_buckets(self):
        result = [e.key for e in unordered_scan([stream([1, 4]), stream([2, 3])])]
        assert sorted(result) == [1, 2, 3, 4]

    def test_preserves_within_bucket_order(self):
        result = [e.key for e in unordered_scan([stream([4, 1]), stream([3, 2])])]
        assert result == [1, 4, 2, 3]

    def test_empty(self):
        assert list(unordered_scan([])) == []
        assert list(unordered_scan([[], []])) == []


class TestOrderedScan:
    def test_global_key_order(self):
        result = [e.key for e in ordered_scan([stream([1, 4, 9]), stream([2, 3, 8]), stream([5])])]
        assert result == [1, 2, 3, 4, 5, 8, 9]

    def test_single_bucket_passthrough(self):
        result = [e.key for e in ordered_scan([stream([1, 2, 3])])]
        assert result == [1, 2, 3]

    def test_empty_buckets_are_skipped(self):
        result = [e.key for e in ordered_scan([[], stream([2, 1]), []])]
        assert result == [1, 2]

    def test_tuple_keys(self):
        left = [Entry(key=(1, 2), value="a", seqnum=1), Entry(key=(2, 1), value="b", seqnum=2)]
        right = [Entry(key=(1, 3), value="c", seqnum=3)]
        result = [e.key for e in ordered_scan([left, right])]
        assert result == [(1, 2), (1, 3), (2, 1)]


class TestDispatchAndCost:
    def test_scan_with_mode_dispatch(self):
        buckets = [stream([3]), stream([1])]
        assert [e.key for e in scan_with_mode(buckets, ScanMode.ORDERED)] == [1, 3]
        buckets = [stream([3]), stream([1])]
        assert [e.key for e in scan_with_mode(buckets, ScanMode.UNORDERED)] == [3, 1]

    def test_merge_comparisons_zero_for_single_bucket(self):
        assert estimate_merge_comparisons(1, 10_000) == 0
        assert estimate_merge_comparisons(4, 0) == 0

    def test_merge_comparisons_grow_with_bucket_count(self):
        few = estimate_merge_comparisons(4, 10_000)
        many = estimate_merge_comparisons(16, 10_000)
        assert many > few > 0
