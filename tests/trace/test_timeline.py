"""Timeline sampling and per-bucket heat tracking."""

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.trace import BucketHeat, TimelineRecorder, TimeSeries


def config(num_nodes=3, seed=5, strategy="dynahash"):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy=strategy,
        seed=seed,
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


class TestTimeSeries:
    def test_columnar_append_and_payload(self):
        series = TimeSeries("node.bytes.nc0")
        series.append(0.0, 10)
        series.append(0.5, 20.0)
        assert len(series) == 2
        assert series.to_payload() == {
            "name": "node.bytes.nc0",
            "times": [0.0, 0.5],
            "values": [10.0, 20.0],
        }


class TestTimelineRecorder:
    def test_interval_must_be_positive(self):
        with Database(config()) as db:
            with pytest.raises(ValueError):
                TimelineRecorder(db, interval_seconds=0.0)

    def test_samples_follow_the_simulated_grid(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db, interval_seconds=0.1).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(400))
            for key in range(200):
                dataset.get(key)
            recorder.finish()
        series = {s.name: s for s in recorder.series}
        in_flight = series["rebalance.in_flight"]
        # Initial sample + grid crossings + closing sample, strictly ordered.
        assert len(in_flight) >= 3
        assert in_flight.times == sorted(in_flight.times)
        assert in_flight.times[0] == 0.0
        assert all(value == 0.0 for value in in_flight.values)
        assert set(series) >= {
            "heat.read.max",
            "heat.write.max",
            "rebalance.buckets_moved",
            "write.p99.rolling",
        }
        assert any(name.startswith("node.bytes.") for name in series)

    def test_rebalance_edges_force_samples_and_count_moves(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db, interval_seconds=100.0).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(600))
            report = db.rebalance(add=1)
            recorder.finish()
        series = {s.name: s for s in recorder.series}
        in_flight = series["rebalance.in_flight"]
        # The forced rebalance.start edge sees the gauge raised.
        assert 1.0 in in_flight.values
        moved = series["rebalance.buckets_moved"]
        assert moved.values[-1] == float(
            sum(r.buckets_moved for r in report.dataset_reports)
        )

    def test_rolling_p99_windows_reset_between_samples(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db, interval_seconds=0.05).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(300))
            for key in range(100):
                dataset.get(key)
            recorder.finish()
        series = {s.name: s for s in recorder.series}
        rolling = series["write.p99.rolling"]
        # Writes happened only during the initial insert, so later windows
        # (reads only) must report 0 — a cumulative p99 would stay positive.
        assert rolling.values[-1] == 0.0
        assert max(rolling.values) > 0.0

    def test_finish_uninstalls_the_heat_hook(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db).attach()
            assert db.cluster.heat is recorder.heat
            recorder.finish()
            assert db.cluster.heat is None


class TestBucketHeat:
    def test_reads_and_writes_credit_live_buckets(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(200))
            for key in range(50):
                dataset.get(key)
            dataset.get_many(list(range(10)))
            recorder.finish()
        heat = recorder.heat
        read_total = sum(count for _, _, count in heat.read_heat())
        write_total = sum(count for _, _, count in heat.write_heat())
        assert read_total == 60
        assert write_total == 200
        assert all(ds == "t" for ds, _, _ in heat.read_heat())
        assert heat.max_read() == max(count for _, _, count in heat.read_heat())
        # Tables are sorted by (dataset, bucket) — deterministic export order.
        assert list(heat.read_heat()) == sorted(heat.read_heat())

    def test_modulo_routing_uses_partition_labels(self):
        with Database(config(strategy="hashing")) as db:
            recorder = TimelineRecorder(db).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(100))
            recorder.finish()
        labels = {bucket for _, bucket, _ in recorder.heat.write_heat()}
        assert labels
        assert all(label.startswith("p") for label in labels)

    def test_unknown_dataset_is_ignored(self):
        with Database(config()) as db:
            heat = BucketHeat(db.cluster)
            heat.record_read("nope", 1)
            assert heat.read_heat() == ()

    def test_untraced_sessions_have_no_heat_hook(self):
        with Database(config()) as db:
            assert db.cluster.heat is None
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(10))
            assert dataset.get(1) is not None
