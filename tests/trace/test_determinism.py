"""Trace determinism: same seed ⇒ byte-identical Chrome trace JSON.

Trace files join the snapshot determinism gate: spans are reconstructed
from deterministic event payloads on the simulated clock, series sample
deterministic gauges on a simulated-time grid, and serialization sorts keys
— so two runs of the same spec with the same seed must produce *identical
bytes*, in one process or across processes with different hash salts.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.scenario import load_scenario, parse_scenario, run_scenario
from repro.trace import chrome_trace_json

SPEC = """\
[scenario]
name = "trace_determinism_probe"

[cluster]
nodes = 3
partitions_per_node = 2
strategy = "dynahash"
seed = 424242

[trace]
sample_interval_seconds = 0.1

[workload]
dataset = "traffic"
initial_records = 400

[[workload.phases]]
name = "steady"
ops = 120

[[steps]]
kind = "rebalance"
add = 1
"""


def _run_once():
    spec = parse_scenario(SPEC)
    return run_scenario(spec)


class TestInProcessDeterminism:
    def test_same_seed_byte_identical_chrome_trace(self):
        first = _run_once()
        second = _run_once()
        assert first.trace == second.trace
        assert chrome_trace_json(first.trace) == chrome_trace_json(second.trace)

    def test_different_seed_different_trace(self):
        spec = parse_scenario(SPEC)
        first = run_scenario(spec, seed=1)
        second = run_scenario(spec, seed=2)
        assert chrome_trace_json(first.trace) != chrome_trace_json(second.trace)

    def test_example_scenario_trace_is_stable(self):
        path = Path(__file__).resolve().parents[2] / "examples/scenarios/traced_rebalance.toml"
        spec = load_scenario(path)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.trace is not None
        assert chrome_trace_json(first.trace) == chrome_trace_json(second.trace)


def _run_traced(tmp_path: Path, hash_seed: str) -> bytes:
    spec = tmp_path / "probe.toml"
    spec.write_text(SPEC)
    out = tmp_path / f"trace_{hash_seed}.json"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "trace", str(spec), "-q", "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, (
        f"trace run failed under PYTHONHASHSEED={hash_seed}:\n{proc.stdout}\n{proc.stderr}"
    )
    return out.read_bytes()


class TestCrossProcessDeterminism:
    def test_trace_bytes_identical_across_hash_seeds(self, tmp_path):
        first = _run_traced(tmp_path, "1")
        second = _run_traced(tmp_path, "31337")
        assert first == second
        document = json.loads(first)
        assert document["traceEvents"]
