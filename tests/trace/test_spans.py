"""Span-tree construction: nesting, timing reconstruction, lifecycle."""

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.trace import Span, TraceSession


def config(num_nodes=3, seed=11):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
        seed=seed,
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


def by_name(spans, name):
    return [span for span in spans if span.name == name]


class TestSessionSpan:
    def test_root_session_span_covers_the_clock(self):
        db = Database(config())
        trace = db.start_trace()
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(200))
        for key in range(20):
            dataset.get(key)
        final_clock = db.metrics.clock.now
        db.close()
        (root,) = by_name(trace.spans, "session")
        assert root.parent_id is None
        assert root.category == "session"
        assert root.start == 0.0
        assert root.end >= final_clock
        assert root.attributes["nodes"] == 3

    def test_closing_the_database_finishes_the_trace(self):
        db = Database(config())
        trace = db.start_trace()
        db.close()
        assert trace.finished
        assert all(span.duration >= 0.0 for span in trace.spans)

    def test_start_trace_replaces_a_prior_session(self):
        with Database(config()) as db:
            first = db.start_trace()
            second = db.start_trace()
            assert first.finished
            assert not second.finished
            assert db.trace_session is second


class TestOpSpans:
    def test_consecutive_reads_aggregate_into_one_run(self):
        with Database(config()) as db:
            trace = db.start_trace()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(100))
            started = db.metrics.clock.now
            for key in range(25):
                dataset.get(key)
            ended = db.metrics.clock.now
            trace.finish()
        reads = by_name(trace.spans, "ops/read")
        assert len(reads) == 1
        (span,) = reads
        assert span.attributes["count"] == 25
        assert span.attributes["dataset"] == "t"
        assert span.start == pytest.approx(started)
        assert span.end == pytest.approx(ended)

    def test_verb_change_breaks_the_run(self):
        with Database(config()) as db:
            trace = db.start_trace()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(100))
            for key in range(5):
                dataset.get(key)
            dataset.upsert([{"k": 1, "payload": "y"}])
            for key in range(5):
                dataset.get(key)
            trace.finish()
        assert len(by_name(trace.spans, "ops/read")) == 2
        assert len(by_name(trace.spans, "ops/update")) == 1

    def test_span_payload_shape(self):
        span = Span(
            span_id=3, parent_id=1, name="ops/read", category="ops", start=1.5, duration=0.5
        )
        assert span.end == 2.0
        assert span.to_payload() == {
            "id": 3,
            "parent": 1,
            "name": "ops/read",
            "cat": "ops",
            "start": 1.5,
            "dur": 0.5,
            "attrs": {},
        }


class TestRebalanceSpans:
    @pytest.fixture
    def traced_rebalance(self):
        db = Database(config())
        trace = db.start_trace()
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(600))
        report = db.rebalance(add=1)
        db.close()
        return trace, report

    def test_rebalance_span_duration_comes_from_the_report(self, traced_rebalance):
        trace, report = traced_rebalance
        (span,) = by_name(trace.spans, "rebalance")
        assert span.duration == pytest.approx(report.simulated_seconds)
        assert span.attributes["committed"] is True
        assert span.attributes["new_nodes"] == 4

    def test_phase_spans_tile_the_dataset_span(self, traced_rebalance):
        trace, _ = traced_rebalance
        (dataset_span,) = by_name(trace.spans, "rebalance/t")
        phases = [
            span
            for span in trace.spans
            if span.parent_id == dataset_span.span_id and span.name.startswith("phase/")
        ]
        assert [span.name for span in phases] == [
            "phase/initialization",
            "phase/data_movement",
            "phase/finalization",
        ]
        cursor = dataset_span.start
        for span in phases:
            assert span.start == pytest.approx(cursor)
            cursor += span.duration
        assert cursor == pytest.approx(dataset_span.end)

    def test_bucket_moves_tile_the_data_movement_phase(self, traced_rebalance):
        trace, report = traced_rebalance
        (phase,) = by_name(trace.spans, "phase/data_movement")
        moves = [span for span in trace.spans if span.parent_id == phase.span_id]
        assert moves, "a committed resize must ship at least one bucket"
        assert len(moves) == report.dataset_reports[0].buckets_moved
        assert sum(span.duration for span in moves) == pytest.approx(phase.duration)
        assert all(span.name.startswith("move/") for span in moves)
        assert all(span.attributes["payload_bytes"] > 0 for span in moves)

    def test_commit_mark_is_recorded(self, traced_rebalance):
        trace, _ = traced_rebalance
        (commit,) = by_name(trace.spans, "commit")
        assert commit.duration == 0.0
        assert commit.attributes["buckets_moved"] >= 1


class TestFaultedRebalance:
    def test_error_closes_the_rebalance_span_with_the_fault(self):
        from repro.api import FaultInjected

        db = Database(config())
        trace = db.start_trace()
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(600))
        with pytest.raises(FaultInjected):
            db.rebalance(add=1, fault_sites=["cc_fail_before_commit"])
        db.recover()
        db.close()
        (span,) = by_name(trace.spans, "rebalance")
        assert "error" in span.attributes
        (recovery,) = by_name(trace.spans, "recovery")
        assert recovery.duration == 0.0


class TestTraceSessionPayload:
    def test_payload_shape_and_version(self):
        with Database(config()) as db:
            trace = db.start_trace()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(50))
            trace.finish()
            payload = trace.to_payload(scenario="unit", seed=11)
        assert payload["version"] == 1
        assert payload["scenario"] == "unit"
        assert payload["seed"] == 11
        assert payload["interval_seconds"] == 0.25
        assert {series["name"] for series in payload["series"]} >= {
            "rebalance.in_flight",
            "write.p99.rolling",
        }
        assert payload["spans"][0]["name"] == "session"

    def test_tracing_is_off_by_default(self):
        with Database(config()) as db:
            assert db.trace_session is None
            assert db.cluster.heat is None
            assert not db.events.has_subscribers("trace.phase.start")
            assert not db.events.has_subscribers("rebalance.bucket_move")
