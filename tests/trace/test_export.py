"""Chrome trace-event export and the terminal renderings."""

import json

from repro.trace import (
    chrome_trace_json,
    chrome_trace_payload,
    render_gantt,
    render_span_tree,
    timeline_csv,
)

PAYLOAD = {
    "version": 1,
    "scenario": "unit",
    "seed": 7,
    "interval_seconds": 0.25,
    "spans": [
        {
            "id": 0,
            "parent": None,
            "name": "session",
            "cat": "session",
            "start": 0.0,
            "dur": 2.0,
            "attrs": {"nodes": 3},
        },
        {
            "id": 1,
            "parent": 0,
            "name": "workload/steady",
            "cat": "workload",
            "start": 0.0,
            "dur": 1.0,
            "attrs": {"ops": 40},
        },
        {
            "id": 2,
            "parent": 1,
            "name": "ops/read",
            "cat": "ops",
            "start": 0.25,
            "dur": 0.5,
            "attrs": {"count": 10, "dataset": "t"},
        },
        {
            "id": 3,
            "parent": 0,
            "name": "rebalance",
            "cat": "rebalance",
            "start": 1.0,
            "dur": 0.75,
            "attrs": {"committed": True},
        },
        {
            "id": 4,
            "parent": 0,
            "name": "autopilot/evaluate",
            "cat": "autopilot",
            "start": 0.5,
            "dur": 0.0,
            "attrs": {"action": "none", "policy": "Threshold"},
        },
    ],
    "series": [
        {"name": "node.bytes.nc0", "times": [0.0, 1.0], "values": [100.0, 250.0]},
    ],
    "heat": {"read": [], "write": []},
}


class TestChromeTracePayload:
    def test_document_shape(self):
        document = chrome_trace_payload(PAYLOAD)
        assert set(document) == {"displayTimeUnit", "otherData", "traceEvents"}
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"] == {"clock": "simulated", "scenario": "unit", "seed": 7}

    def test_metadata_names_the_tracks(self):
        events = chrome_trace_payload(PAYLOAD)["traceEvents"]
        meta = [event for event in events if event["ph"] == "M"]
        assert {"process_name", "thread_name"} == {event["name"] for event in meta}
        thread_names = {
            event["tid"]: event["args"]["name"]
            for event in meta
            if event["name"] == "thread_name"
        }
        assert thread_names == {
            0: "session",
            1: "workload",
            2: "ops",
            3: "rebalance",
            4: "autopilot",
            5: "chaos",
        }

    def test_spans_become_complete_events_in_microseconds(self):
        events = chrome_trace_payload(PAYLOAD)["traceEvents"]
        (read,) = [event for event in events if event.get("name") == "ops/read"]
        assert read["ph"] == "X"
        assert read["ts"] == 250_000.0
        assert read["dur"] == 500_000.0
        assert read["tid"] == 2
        assert read["args"]["span_id"] == 2
        assert read["args"]["parent_id"] == 1
        assert read["args"]["count"] == 10

    def test_zero_duration_spans_become_instants(self):
        events = chrome_trace_payload(PAYLOAD)["traceEvents"]
        (mark,) = [event for event in events if event.get("name") == "autopilot/evaluate"]
        assert mark["ph"] == "i"
        assert mark["s"] == "t"
        assert "dur" not in mark

    def test_series_become_counter_events(self):
        events = chrome_trace_payload(PAYLOAD)["traceEvents"]
        counters = [event for event in events if event["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["name"] == "node.bytes.nc0"
        assert counters[0]["args"] == {"value": 100.0}
        assert counters[1]["ts"] == 1_000_000.0


class TestChromeTraceJson:
    def test_serialization_is_byte_stable(self):
        first = chrome_trace_json(PAYLOAD)
        second = chrome_trace_json(json.loads(json.dumps(PAYLOAD)))
        assert first == second
        assert first.endswith("\n")
        # Compact separators and sorted keys (the determinism contract for
        # trace files).
        assert '"traceEvents":' in first
        assert '": ' not in first
        assert json.loads(first)["traceEvents"]


class TestTerminalRenderings:
    def test_span_tree_indents_children(self):
        tree = render_span_tree(PAYLOAD)
        lines = tree.splitlines()
        assert lines[0].startswith("session")
        assert any(line.startswith("  workload/steady") for line in lines)
        assert any(line.startswith("    ops/read") for line in lines)
        assert "count=10" in tree

    def test_span_tree_empty(self):
        assert render_span_tree({"spans": []}) == "(no spans)"

    def test_gantt_shows_structural_rows_only(self):
        gantt = render_gantt(PAYLOAD)
        assert "workload/steady" in gantt
        assert "rebalance" in gantt
        assert "ops/read" not in gantt  # leaf op batches stay out of the Gantt
        assert "█" in gantt

    def test_gantt_empty(self):
        assert render_gantt({"spans": []}) == "(no phase spans)"


class TestTimelineCsv:
    SERIES = {
        "series": [
            # Deliberately out of name order: the export sorts by name.
            {"name": "z.late", "times": [1.0, 2.0], "values": [10.0, 20.0]},
            {"name": "a.early", "times": [0.0, 2.0], "values": [1.5, 2.5]},
        ]
    }

    def test_wide_shape_with_sorted_columns(self):
        csv = timeline_csv(self.SERIES)
        lines = csv.splitlines()
        assert lines[0] == "simulated_seconds,a.early,z.late"
        # Union of sample instants; a series has empty cells before its first
        # sample (e.g. a node provisioned mid-run).
        assert lines[1] == "0.0,1.5,"
        assert lines[2] == "1.0,,10.0"
        assert lines[3] == "2.0,2.5,20.0"
        assert csv.endswith("\n")

    def test_byte_stable_and_order_independent(self):
        reversed_series = {"series": list(reversed(self.SERIES["series"]))}
        assert timeline_csv(self.SERIES) == timeline_csv(self.SERIES)
        assert timeline_csv(self.SERIES) == timeline_csv(reversed_series)

    def test_numbers_format_like_the_chrome_export(self):
        payload = {"series": [{"name": "s", "times": [0.125], "values": [1e-07]}]}
        line = timeline_csv(payload).splitlines()[1]
        assert line == f"{json.dumps(0.125)},{json.dumps(1e-07)}"

    def test_header_fields_are_rfc4180_quoted(self):
        payload = {"series": [{"name": 'a,b"c', "times": [0.0], "values": [1.0]}]}
        assert timeline_csv(payload).splitlines()[0] == 'simulated_seconds,"a,b""c"'

    def test_empty_trace_is_just_the_header(self):
        assert timeline_csv({}) == "simulated_seconds\n"

    def test_real_payload_round_trips_columns(self):
        csv = timeline_csv(PAYLOAD)
        lines = csv.splitlines()
        assert lines[0] == "simulated_seconds,node.bytes.nc0"
        assert lines[1:] == ["0.0,100.0", "1.0,250.0"]
