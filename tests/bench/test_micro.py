"""Tests for the microbenchmark harness and its perf gate (PR 4)."""

import json

from repro.bench.micro import (
    BENCHMARKS,
    bench_calibration,
    bench_event_emit,
    bench_histogram_record,
    bench_histogram_record_many,
    compare_to_baseline,
    format_suite,
    main,
)


def tiny_payload(scale=1.0):
    return {
        "name": "micro",
        "repeats": 1,
        "calibration_score": 100.0,
        "ops_per_second": {name: 100.0 * scale for name in BENCHMARKS},
        "normalized": {name: 1.0 * scale for name in BENCHMARKS},
    }


class TestBenchmarks:
    def test_each_micro_benchmark_reports_positive_throughput(self):
        assert bench_calibration(loops=20_000) > 0
        assert bench_event_emit(emits=5_000) > 0
        assert bench_histogram_record(samples=20_000) > 0
        assert bench_histogram_record_many(samples=20_000) > 0

    def test_registry_covers_the_issue_surface(self):
        # event emit, histogram record, driver ops/sec, feed ingest.
        assert {"event_emit", "histogram_record", "driver_ops", "feed_ingest"} <= set(
            BENCHMARKS
        )


class TestPerfGate:
    def test_gate_passes_on_identical_numbers(self):
        assert compare_to_baseline(tiny_payload(), tiny_payload()) == []

    def test_gate_passes_within_tolerance(self):
        assert compare_to_baseline(tiny_payload(0.80), tiny_payload(), tolerance=0.25) == []

    def test_gate_fails_past_tolerance(self):
        failures = compare_to_baseline(tiny_payload(0.5), tiny_payload(), tolerance=0.25)
        assert len(failures) == len(BENCHMARKS)
        assert "below baseline" in failures[0]

    def test_gate_ignores_benchmarks_missing_from_baseline(self):
        baseline = tiny_payload()
        baseline["normalized"] = {"event_emit": 1.0}
        current = tiny_payload(0.9)
        assert compare_to_baseline(current, baseline) == []

    def test_gate_ignores_benchmarks_missing_from_current(self):
        current = tiny_payload()
        current["normalized"] = {}
        assert compare_to_baseline(current, tiny_payload()) == []

    def test_faster_numbers_never_fail(self):
        assert compare_to_baseline(tiny_payload(3.0), tiny_payload()) == []

    def test_format_suite_lists_every_benchmark(self):
        table = format_suite(tiny_payload())
        for name in BENCHMARKS:
            assert name in table


class TestCli:
    def test_main_writes_artifact_and_baseline(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        # One repeat keeps the CLI smoke test fast; the benchmarks themselves
        # run at their default sizes (a few seconds total).
        status = main(
            [
                "--repeats",
                "1",
                "--artifact-dir",
                str(tmp_path),
                "--write-baseline",
                str(baseline_path),
            ]
        )
        assert status == 0
        artifact = json.loads((tmp_path / "BENCH_micro.json").read_text())
        assert set(artifact["ops_per_second"]) == set(BENCHMARKS)
        assert baseline_path.exists()
        # And the gate accepts the baseline it just wrote (generous tolerance
        # absorbs run-to-run noise in the same process).
        status = main(
            ["--repeats", "1", "--check", str(baseline_path), "--tolerance", "0.9"]
        )
        assert status == 0
