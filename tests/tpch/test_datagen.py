"""Tests for the TPC-H data generator and schema."""

import pytest

from repro.tpch.datagen import TPCHGenerator
from repro.tpch.schema import (
    ALL_TABLES,
    LINEITEM,
    LINEITEM_INDEX,
    ORDERS,
    ORDERS_INDEX,
    TABLES_BY_NAME,
    dataset_spec,
    rows_at_scale,
)


class TestSchema:
    def test_eight_tables(self):
        assert len(ALL_TABLES) == 8
        assert set(TABLES_BY_NAME) == {
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        }

    def test_cardinality_ratios(self):
        # Per the TPC-H spec: 4 lineitems per order on average, 10 customers
        # per supplier x 15, etc.
        assert LINEITEM.rows_per_sf == 4 * ORDERS.rows_per_sf
        assert rows_at_scale(ORDERS, 2.0) == 3_000_000

    def test_fixed_tables_ignore_scale(self):
        assert rows_at_scale(TABLES_BY_NAME["nation"], 100.0) == 25
        assert rows_at_scale(TABLES_BY_NAME["region"], 0.001) == 5

    def test_dataset_specs_attach_paper_indexes(self):
        lineitem_spec = dataset_spec(LINEITEM)
        orders_spec = dataset_spec(ORDERS)
        assert lineitem_spec.index_names() == [LINEITEM_INDEX.name]
        assert orders_spec.index_names() == [ORDERS_INDEX.name]
        assert dataset_spec(TABLES_BY_NAME["customer"]).index_names() == []

    def test_lineitem_composite_primary_key(self):
        assert dataset_spec(LINEITEM).primary_key == ("l_orderkey", "l_linenumber")


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        first = list(TPCHGenerator(0.001, seed=7).orders())
        second = list(TPCHGenerator(0.001, seed=7).orders())
        assert first == second

    def test_different_seeds_differ(self):
        first = list(TPCHGenerator(0.001, seed=7).orders())
        second = list(TPCHGenerator(0.001, seed=8).orders())
        assert first != second

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TPCHGenerator(0)

    def test_row_counts_scale(self):
        generator = TPCHGenerator(0.002)
        assert generator.row_count(ORDERS) == 3000
        assert generator.row_count(LINEITEM) == 12000

    def test_orders_have_unique_keys_and_valid_custkeys(self):
        generator = TPCHGenerator(0.001)
        orders = list(generator.orders())
        keys = [o["o_orderkey"] for o in orders]
        assert len(keys) == len(set(keys))
        num_customers = generator.row_count(TABLES_BY_NAME["customer"])
        assert all(1 <= o["o_custkey"] <= num_customers for o in orders)

    def test_lineitem_references_orders_and_has_1_to_7_lines(self):
        generator = TPCHGenerator(0.001)
        orders = list(generator.orders())
        items = list(generator.lineitem(orders_rows=orders))
        order_keys = {o["o_orderkey"] for o in orders}
        assert all(item["l_orderkey"] in order_keys for item in items)
        lines_per_order = {}
        for item in items:
            lines_per_order.setdefault(item["l_orderkey"], set()).add(item["l_linenumber"])
        assert all(1 <= len(lines) <= 7 for lines in lines_per_order.values())
        # Composite primary keys are unique.
        composite = [(i["l_orderkey"], i["l_linenumber"]) for i in items]
        assert len(composite) == len(set(composite))

    def test_dates_are_within_tpch_range(self):
        generator = TPCHGenerator(0.0005)
        for item in generator.lineitem():
            assert "1992-01-01" <= item["l_shipdate"] <= "1998-12-31"

    def test_discounts_and_quantities_in_domain(self):
        generator = TPCHGenerator(0.0005)
        for item in generator.lineitem():
            assert 0.0 <= item["l_discount"] <= 0.1
            assert 1 <= item["l_quantity"] <= 50

    def test_partsupp_composite_keys_unique(self):
        generator = TPCHGenerator(0.001)
        keys = [(r["ps_partkey"], r["ps_suppkey"]) for r in generator.partsupp()]
        assert len(keys) == len(set(keys))

    def test_nation_and_region_fixed_content(self):
        generator = TPCHGenerator(0.001)
        nations = list(generator.nation())
        regions = list(generator.region())
        assert len(nations) == 25
        assert len(regions) == 5
        assert all(0 <= n["n_regionkey"] <= 4 for n in nations)

    def test_all_tables_materialisation(self):
        tables = TPCHGenerator(0.0005).all_tables()
        assert set(tables) == set(TABLES_BY_NAME)
        assert len(tables["lineitem"]) > len(tables["orders"])

    def test_table_dispatch_unknown(self):
        with pytest.raises(KeyError):
            TPCHGenerator(0.001).table("widgets")
