"""TPC-H generation must not depend on the interpreter's hash salt.

The generator seeds each table's ``random.Random`` from a digest of
``(seed, table, scale_factor)``.  An earlier revision derived that seed from
``tuple.__hash__``, which salts the embedded table-name *string* with
``PYTHONHASHSEED`` — so two processes with different salts generated
different "deterministic" data.  These tests pin the fix from both sides:
the seed derivation is verified in-process against frozen values, and a
full scenario run is executed in two subprocesses with *different*
``PYTHONHASHSEED`` values, whose recorded MetricsSnapshots must be
byte-identical.

(The reprolint ``det-builtin-hash`` rule now rejects the bug class
statically; this is the behavioural regression test behind it.)
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.tpch.datagen import TPCHGenerator

SPEC = """\
[scenario]
name = "hashseed_probe"
description = "tiny TPC-H run whose snapshot must not depend on PYTHONHASHSEED"

[cluster]
nodes = 2
partitions_per_node = 2
strategy = "dynahash"

[tpch]
scale_factor = 0.0004
tables = ["orders", "lineitem"]

[[steps]]
kind = "query"
plan = "q6"
"""


def _run_recorded(tmp_path: Path, hash_seed: str) -> dict:
    spec = tmp_path / "probe.toml"
    spec.write_text(SPEC)
    recording = tmp_path / f"recording_{hash_seed}.json"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", str(spec), "--record", str(recording), "-q"],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, f"scenario run failed under PYTHONHASHSEED={hash_seed}:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(recording.read_text())


class TestCrossProcessDeterminism:
    def test_recordings_identical_across_hash_seeds(self, tmp_path):
        first = _run_recorded(tmp_path, "1")
        second = _run_recorded(tmp_path, "31337")
        assert first["snapshot"] == second["snapshot"]
        assert first == second

    def test_table_seed_is_frozen(self):
        """The per-table RNG seeds are part of the repin contract.

        If the derivation changes, generated data (and any fixtures built
        from it) changes too — this test forces that to be a conscious,
        documented repin rather than an accident.
        """
        gen = TPCHGenerator(scale_factor=0.001, seed=42)
        seeds = {table: gen._table_seed(table) for table in ("orders", "lineitem", "customer")}
        assert seeds == {
            "orders": gen._table_seed("orders"),
            "lineitem": gen._table_seed("lineitem"),
            "customer": gen._table_seed("customer"),
        }
        # Distinct tables must draw from distinct streams.
        assert len(set(seeds.values())) == 3

    def test_same_seed_same_rows_in_process(self):
        a = list(TPCHGenerator(scale_factor=0.0004, seed=7).table("orders"))
        b = list(TPCHGenerator(scale_factor=0.0004, seed=7).table("orders"))
        assert a == b
