"""Tests for the TPC-H workload loader and the query-spec catalogue."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.cluster.controller import SimulatedCluster
from repro.rebalance import DynaHashStrategy
from repro.tpch import (
    LINEITEM_INDEX,
    ORDERS_INDEX,
    QUERY_NAMES,
    SCAN_HEAVY_QUERIES,
    TPCH_QUERIES,
    TPCHWorkload,
    paper_scale_factor,
    query_spec,
)
from repro.query.executor import ACCESS_SECONDARY_INDEX


def small_cluster():
    return SimulatedCluster(
        ClusterConfig(
            num_nodes=2,
            partitions_per_node=2,
            lsm=LSMConfig(memory_component_bytes=32 * 1024),
            bucketing=BucketingConfig(initial_buckets_per_partition=1),
        ),
        strategy=DynaHashStrategy(),
    )


class TestQueryCatalogue:
    def test_all_22_queries_defined(self):
        assert QUERY_NAMES == [f"q{i}" for i in range(1, 23)]
        assert set(TPCH_QUERIES) == set(QUERY_NAMES)

    def test_every_query_has_description_and_accesses(self):
        for name, spec in TPCH_QUERIES.items():
            assert spec.description, name
            assert spec.accesses, name

    def test_scan_heavy_queries_are_scan_dominated(self):
        # The queries the paper calls out as scan-heavy have shallow operator
        # pipelines compared to the join-heavy ones.
        for name in SCAN_HEAVY_QUERIES:
            assert query_spec(name).operator_depth <= 5
        assert query_spec("q9").operator_depth > query_spec("q17").operator_depth

    def test_q18_requires_primary_key_order(self):
        assert query_spec("q18").requires_primary_key_order
        assert not query_spec("q1").requires_primary_key_order

    def test_index_only_queries_use_paper_indexes(self):
        q6_accesses = query_spec("q6").accesses
        assert all(a.access == ACCESS_SECONDARY_INDEX for a in q6_accesses)
        assert q6_accesses[0].index_name == LINEITEM_INDEX.name
        q4_first = query_spec("q4").accesses[0]
        assert q4_first.index_name == ORDERS_INDEX.name

    def test_q21_scans_lineitem_multiple_times(self):
        lineitem_access = query_spec("q21").accesses[0]
        assert lineitem_access.dataset == "lineitem"
        assert lineitem_access.scan_count >= 2


class TestWorkloadLoader:
    def test_paper_scale_factor_proportional_to_nodes(self):
        assert paper_scale_factor(4) == pytest.approx(2 * paper_scale_factor(2))
        with pytest.raises(ValueError):
            paper_scale_factor(0)

    def test_load_creates_datasets_and_ingests(self):
        cluster = small_cluster()
        workload = TPCHWorkload(scale_factor=0.0002)
        result = workload.load(cluster, tables=("orders", "lineitem"))
        assert set(result.reports) == {"orders", "lineitem"}
        assert cluster.record_count("orders") == result.row_counts["orders"]
        assert cluster.record_count("lineitem") == result.row_counts["lineitem"]
        assert result.total_rows == sum(result.row_counts.values())
        assert result.total_simulated_seconds > 0

    def test_lineitem_foreign_keys_consistent_without_orders(self):
        cluster = small_cluster()
        workload = TPCHWorkload(scale_factor=0.0002)
        result = workload.load(cluster, tables=("lineitem",))
        assert result.row_counts["lineitem"] > 0

    def test_secondary_indexes_created_per_paper(self):
        cluster = small_cluster()
        TPCHWorkload(scale_factor=0.0001).load(cluster, tables=("orders", "lineitem"))
        lineitem_partition = next(iter(cluster.dataset("lineitem").partitions.values()))
        orders_partition = next(iter(cluster.dataset("orders").partitions.values()))
        assert LINEITEM_INDEX.name in lineitem_partition.secondary_indexes
        assert ORDERS_INDEX.name in orders_partition.secondary_indexes

    def test_concurrent_lineitem_rows_use_fresh_order_keys(self):
        workload = TPCHWorkload(scale_factor=0.0002)
        rows = workload.concurrent_lineitem_rows(50)
        assert len(rows) == 50
        assert all(row["l_orderkey"] >= 50_000_000 for row in rows)
        keys = {(row["l_orderkey"], row["l_linenumber"]) for row in rows}
        assert len(keys) == 50
