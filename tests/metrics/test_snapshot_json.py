"""MetricsSnapshot JSON export: the persist/replay contract.

Bench runs and the autopilot persist telemetry as JSON artifacts; the
round trip must be lossless so a replayed snapshot still satisfies the
determinism contract (snapshot equality).
"""

import json

import pytest

from repro.common.events import EventBus
from repro.metrics import MetricsRegistry, MetricsSnapshot


def populated_registry():
    bus = EventBus()
    registry = MetricsRegistry().attach(bus)
    for index in range(50):
        bus.emit("op.read", latency_seconds=0.001 * (index + 1), records=1, dataset="t")
    bus.emit("op.insert", latency_seconds=0.004, records=32, dataset="t")
    bus.emit("rebalance.start", old_nodes=3, target_nodes=4)
    bus.emit("op.update", latency_seconds=0.008, records=1, dataset="t")
    bus.emit("rebalance.error", target_nodes=4, error="boom")
    bus.emit("node.provision", node="nc3", nodes=4)
    bus.emit("autopilot.start", policy="Threshold")
    bus.emit("autopilot.decision", action="add", target_nodes=4, outcome="executed")
    return registry


class TestRoundTrip:
    def test_round_trip_equality(self):
        snapshot = populated_registry().snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored == snapshot

    def test_round_trip_preserves_histogram_tuples(self):
        snapshot = populated_registry().snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        for key, value in restored.histograms.items():
            assert isinstance(value, tuple)
            assert isinstance(value[0], tuple)
            assert value == snapshot.histograms[key]

    def test_round_trip_of_empty_snapshot(self):
        snapshot = MetricsRegistry().snapshot()
        assert MetricsSnapshot.from_json(snapshot.to_json()) == snapshot

    def test_gauge_none_survives(self):
        registry = MetricsRegistry()
        registry.gauge("unset")  # value stays None
        snapshot = registry.snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored.gauges["unset"] is None
        assert restored == snapshot

    def test_histogram_count_accessor_works_after_restore(self):
        snapshot = populated_registry().snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored.histogram_count("read", "steady") == 50
        assert restored.histogram_count("update", "rebalance") == 1


class TestDocumentShape:
    def test_json_is_stable_and_sorted(self):
        snapshot = populated_registry().snapshot()
        assert snapshot.to_json() == snapshot.to_json()
        document = json.loads(snapshot.to_json())
        assert document["version"] == 1
        assert list(document["counters"]) == sorted(document["counters"])

    def test_indent_pretty_prints(self):
        snapshot = populated_registry().snapshot()
        assert "\n" in snapshot.to_json(indent=2)

    def test_autopilot_counters_survive_the_trip(self):
        snapshot = populated_registry().snapshot()
        restored = MetricsSnapshot.from_json(snapshot.to_json())
        assert restored.counters["autopilot.decision"] == 1
        assert restored.counters["autopilot.start"] == 1

    def test_unknown_version_rejected(self):
        snapshot = populated_registry().snapshot()
        document = json.loads(snapshot.to_json())
        document["version"] = 99
        with pytest.raises(ValueError, match="version"):
            MetricsSnapshot.from_json(json.dumps(document))
