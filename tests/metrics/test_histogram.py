"""Latency histogram: exact percentiles on known inputs, merging, validation."""

import pytest

from repro.metrics import LatencyHistogram


def edge_histogram():
    """Buckets with upper edges 1, 2, 4, 8 ms (growth 2 from 1 ms)."""
    return LatencyHistogram(min_latency=1e-3, growth=2.0, buckets=4)


class TestRecording:
    def test_counts_land_in_the_right_buckets(self):
        hist = edge_histogram()
        hist.record(0.5e-3)  # at/below the first edge
        hist.record(1e-3)  # exactly on the first edge
        hist.record(3e-3)  # inside (2, 4]
        hist.record(100e-3)  # beyond the last edge -> overflow
        assert hist.counts == [2, 0, 1, 0, 1]
        assert hist.count == 4

    def test_min_max_mean_are_exact(self):
        hist = edge_histogram()
        for value in (1e-3, 2e-3, 6e-3):
            hist.record(value)
        assert hist.min_value == 1e-3
        assert hist.max_value == 6e-3
        assert hist.mean == pytest.approx(3e-3)

    def test_weighted_record(self):
        hist = edge_histogram()
        hist.record(1e-3, count=10)
        assert hist.count == 10
        assert hist.total == pytest.approx(10e-3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            edge_histogram().record(-1.0)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            edge_histogram().record(1e-3, count=0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=0)


class TestPercentiles:
    def test_exact_on_bucket_edges(self):
        """Values recorded on bucket edges are reported exactly."""
        hist = edge_histogram()
        for _ in range(50):
            hist.record(1e-3)
        for _ in range(45):
            hist.record(4e-3)
        for _ in range(5):
            hist.record(8e-3)
        assert hist.percentile(0.50) == pytest.approx(1e-3)
        assert hist.percentile(0.95) == pytest.approx(4e-3)
        assert hist.percentile(0.99) == pytest.approx(8e-3)
        assert hist.percentile(1.0) == pytest.approx(8e-3)

    def test_never_under_reports(self):
        """Off-edge values report the containing bucket's upper edge."""
        hist = edge_histogram()
        for _ in range(100):
            hist.record(2.5e-3)  # inside (2, 4]
        assert hist.percentile(0.5) == pytest.approx(4e-3)
        assert hist.percentile(0.5) >= 2.5e-3

    def test_overflow_reports_exact_observed_max(self):
        hist = edge_histogram()
        hist.record(123e-3)
        assert hist.percentile(0.99) == pytest.approx(123e-3)

    def test_empty_histogram_reports_zero(self):
        assert edge_histogram().percentile(0.99) == 0.0
        assert edge_histogram().mean == 0.0

    def test_quantile_validation(self):
        hist = edge_histogram()
        hist.record(1e-3)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_summary_row(self):
        hist = edge_histogram()
        for _ in range(99):
            hist.record(1e-3)
        hist.record(8e-3)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(1e-3)
        assert summary["p99"] == pytest.approx(1e-3)
        assert summary["max"] == pytest.approx(8e-3)


class TestMergeAndSnapshot:
    def test_merge_combines_counts_and_extremes(self):
        left, right = edge_histogram(), edge_histogram()
        left.record(1e-3)
        right.record(8e-3)
        right.record(0.2e-3)
        left.merge(right)
        assert left.count == 3
        assert left.min_value == 0.2e-3
        assert left.max_value == 8e-3
        assert left.percentile(1.0) == pytest.approx(8e-3)

    def test_merge_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            edge_histogram().merge(LatencyHistogram(min_latency=1e-6))

    def test_snapshot_equality_tracks_content(self):
        left, right = edge_histogram(), edge_histogram()
        left.record(1e-3)
        right.record(1e-3)
        assert left.snapshot() == right.snapshot()
        right.record(2e-3)
        assert left.snapshot() != right.snapshot()

    def test_since_isolates_newer_samples(self):
        hist = edge_histogram()
        hist.record(1e-3, count=10)
        earlier = hist.snapshot()
        hist.record(8e-3, count=5)
        delta = hist.since(earlier)
        assert delta.count == 5
        assert delta.percentile(0.5) == pytest.approx(8e-3)
        assert hist.count == 15  # the source histogram is untouched

    def test_since_none_copies_everything(self):
        hist = edge_histogram()
        hist.record(2e-3, count=3)
        delta = hist.since(None)
        assert delta.snapshot() == hist.snapshot()

    def test_since_rejects_foreign_snapshots(self):
        hist = edge_histogram()
        hist.record(1e-3)
        with pytest.raises(ValueError, match="bucket grid"):
            hist.since(LatencyHistogram(min_latency=1e-6).snapshot())
        other = edge_histogram()
        other.record(1e-3, count=5)
        with pytest.raises(ValueError, match="past"):
            hist.since(other.snapshot())

    def test_nonzero_buckets(self):
        hist = edge_histogram()
        hist.record(1e-3, count=3)
        hist.record(100e-3)
        populated = hist.nonzero_buckets()
        assert populated[0] == (1e-3, 3)
        assert populated[-1] == (float("inf"), 1)
        assert len(hist) == 4
