"""Counters and gauges."""

import pytest

from repro.metrics import Counter, Gauge


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("ops")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("ops").increment(-1)


class TestGauge:
    def test_set_is_last_value_wins(self):
        gauge = Gauge("nodes")
        gauge.set(4)
        gauge.set(3)
        assert gauge.value == 3

    def test_add_from_unset_starts_at_zero(self):
        gauge = Gauge("inflight")
        gauge.add(2)
        gauge.add(-1)
        assert gauge.value == 1
