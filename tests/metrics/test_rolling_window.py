"""Rolling-window deltas over cumulative histograms (`LatencyHistogram.since`).

The timeline recorder's ``write.p99.rolling`` gauge is built on these
semantics: snapshot the cumulative histogram each sample, and the delta
between consecutive snapshots is exactly the samples of that window.
"""

import pytest

from repro.metrics.histogram import LatencyHistogram


class TestSince:
    def test_none_snapshot_returns_everything(self):
        histogram = LatencyHistogram()
        histogram.record(0.001, count=10)
        window = histogram.since(None)
        assert window.count == 10
        assert window.counts == histogram.counts

    def test_delta_holds_only_the_new_samples(self):
        histogram = LatencyHistogram()
        histogram.record(0.001, count=5)
        snap = histogram.snapshot()
        histogram.record(0.004, count=3)
        window = histogram.since(snap)
        assert window.count == 3
        assert window.total == pytest.approx(0.012)
        # Only the 4 ms bucket gained counts.
        gained = [index for index, count in enumerate(window.counts) if count]
        assert len(gained) == 1
        assert window.percentile(0.99) >= 0.004

    def test_empty_window_reports_zero(self):
        histogram = LatencyHistogram()
        histogram.record(0.002, count=4)
        snap = histogram.snapshot()
        window = histogram.since(snap)
        assert window.count == 0
        assert window.percentile(0.99) == 0.0

    def test_consecutive_windows_partition_the_stream(self):
        histogram = LatencyHistogram()
        snapshots = [histogram.snapshot()]
        for value, count in ((0.001, 4), (0.002, 2), (0.008, 1)):
            histogram.record(value, count=count)
            snapshots.append(histogram.snapshot())
        window_counts = [
            histogram.since(snapshots[i]).count - histogram.since(snapshots[i + 1]).count
            for i in range(len(snapshots) - 1)
        ]
        assert window_counts == [4, 2, 1]
        assert sum(window_counts) == histogram.count

    def test_foreign_snapshot_is_rejected(self):
        histogram = LatencyHistogram()
        other = LatencyHistogram(buckets=5)
        with pytest.raises(ValueError):
            histogram.since(other.snapshot())

    def test_ahead_snapshot_is_rejected(self):
        histogram = LatencyHistogram()
        histogram.record(0.001, count=2)
        snap = histogram.snapshot()
        rewound = LatencyHistogram()
        rewound.record(0.001)
        with pytest.raises(ValueError):
            rewound.since(snap)

    def test_delta_keeps_cumulative_bounds(self):
        histogram = LatencyHistogram()
        histogram.record(0.1)
        snap = histogram.snapshot()
        histogram.record(0.001)
        window = histogram.since(snap)
        # Bounds stay cumulative (conservative percentiles), documented
        # behaviour: the extremes of only-the-new-samples are unrecoverable.
        assert window.max_value == 0.1
        assert window.min_value == 0.001
