"""The metrics registry: event-driven, phase-tagged telemetry."""

import pytest

from repro.common.events import EventBus
from repro.metrics import (
    MetricsRegistry,
    PHASE_REBALANCE,
    PHASE_STEADY,
)


def attached():
    bus = EventBus()
    registry = MetricsRegistry().attach(bus)
    return bus, registry


class TestPhaseTagging:
    def test_starts_steady(self):
        _bus, registry = attached()
        assert registry.phase == PHASE_STEADY
        assert not registry.in_rebalance

    def test_rebalance_events_flip_the_phase(self):
        bus, registry = attached()
        bus.emit("op.update", latency_seconds=1e-3)
        bus.emit("rebalance.start", old_nodes=4, target_nodes=5)
        assert registry.in_rebalance
        bus.emit("op.update", latency_seconds=2e-3)
        bus.emit("rebalance.complete")
        assert registry.phase == PHASE_STEADY
        bus.emit("op.update", latency_seconds=1e-3)

        assert registry.histogram("update", PHASE_STEADY).count == 2
        assert registry.histogram("update", PHASE_REBALANCE).count == 1

    def test_rebalance_error_returns_to_steady(self):
        bus, registry = attached()
        bus.emit("rebalance.start")
        bus.emit("rebalance.error", error="boom")
        assert registry.phase == PHASE_STEADY
        assert registry.counter("rebalance.errors").value == 1

    def test_write_latency_merges_the_write_ops(self):
        bus, registry = attached()
        bus.emit("op.insert", latency_seconds=1e-3)
        bus.emit("op.update", latency_seconds=2e-3)
        bus.emit("op.delete", latency_seconds=4e-3)
        bus.emit("op.read", latency_seconds=8e-3)
        writes = registry.write_latency(PHASE_STEADY)
        assert writes.count == 3
        assert writes.max_value == pytest.approx(4e-3)


class TestEventHandling:
    def test_op_events_feed_counters_and_clock(self):
        bus, registry = attached()
        bus.emit("op.read", latency_seconds=2e-3, records=1, dataset="orders")
        bus.emit("op.insert", latency_seconds=3e-3, records=10, dataset="orders")
        assert registry.counter("ops.total").value == 2
        assert registry.counter("ops.read").value == 1
        assert registry.counter("records.insert").value == 10
        assert registry.counter("ops.dataset.orders").value == 2
        assert registry.clock.now == pytest.approx(5e-3)
        assert registry.ops_per_second() == pytest.approx(2 / 5e-3)

    def test_node_and_dataset_events(self):
        bus, registry = attached()
        bus.emit("dataset.create", dataset="orders")
        bus.emit("node.provision", node="nc4", nodes=5)
        bus.emit("node.decommission", node="nc4", nodes=4)
        bus.emit("dataset.drop", dataset="orders")
        assert registry.counter("datasets.created").value == 1
        assert registry.counter("datasets.dropped").value == 1
        assert registry.gauge("cluster.nodes").value == 4

    def test_ingest_complete_counts_records_and_splits(self):
        bus, registry = attached()
        bus.emit("ingest.complete", dataset="orders", records=100, splits=3)
        assert registry.counter("ingest.records").value == 100
        assert registry.counter("ingest.splits").value == 3


class TestWiring:
    def test_attach_is_idempotent_per_bus(self):
        bus = EventBus()
        registry = MetricsRegistry()
        registry.attach(bus)
        before = bus.subscriber_count
        registry.attach(bus)
        assert bus.subscriber_count == before

    def test_detach_stops_recording(self):
        bus, registry = attached()
        registry.detach()
        bus.emit("op.read", latency_seconds=1e-3)
        assert registry.counter("ops.total").value == 0
        assert bus.subscriber_count == 0


class TestSnapshotAndReport:
    def test_identical_event_sequences_snapshot_equal(self):
        def drive(bus):
            bus.emit("op.read", latency_seconds=1e-3)
            bus.emit("rebalance.start")
            bus.emit("op.update", latency_seconds=2e-3)
            bus.emit("rebalance.complete")

        bus_a, registry_a = attached()
        bus_b, registry_b = attached()
        drive(bus_a)
        drive(bus_b)
        assert registry_a.snapshot() == registry_b.snapshot()

        bus_a.emit("op.read", latency_seconds=1e-3)
        assert registry_a.snapshot() != registry_b.snapshot()

    def test_snapshot_histogram_count_accessor(self):
        bus, registry = attached()
        bus.emit("rebalance.start")
        bus.emit("op.update", latency_seconds=1e-3)
        snapshot = registry.snapshot()
        assert snapshot.histogram_count("update", PHASE_REBALANCE) == 1
        assert snapshot.histogram_count("update", PHASE_STEADY) == 0

    def test_report_renders_rows_per_op_and_phase(self):
        bus, registry = attached()
        bus.emit("op.read", latency_seconds=1e-3)
        bus.emit("rebalance.start")
        bus.emit("op.update", latency_seconds=2e-3)
        text = registry.report()
        assert "read" in text and "update" in text
        assert "steady" in text and "rebalance" in text
        assert "p99" in text

    def test_empty_report(self):
        _bus, registry = attached()
        assert "no operation samples" in registry.report()

    def test_passive_reads_never_change_the_snapshot(self):
        """latency()/write_latency()/ops_per_second()/report() are read-only."""
        bus, registry = attached()
        bus.emit("op.read", latency_seconds=1e-3)
        before = registry.snapshot()
        registry.latency("scan", PHASE_REBALANCE)
        registry.latency("update")
        registry.write_latency(PHASE_REBALANCE)
        registry.ops_per_second("delete")
        registry.report()
        assert registry.snapshot() == before

    def test_latency_since_scopes_to_a_snapshot(self):
        bus, registry = attached()
        bus.emit("op.update", latency_seconds=1e-3)
        mark = registry.snapshot()
        bus.emit("op.update", latency_seconds=4e-3)
        bus.emit("op.insert", latency_seconds=2e-3)
        delta = registry.write_latency_since(mark, PHASE_STEADY)
        assert delta.count == 2
        assert registry.latency_since(mark, "update", PHASE_STEADY).count == 1
        assert registry.latency_since(mark, "scan", PHASE_STEADY).count == 0
        # since=None means everything recorded so far.
        assert registry.write_latency_since(None, PHASE_STEADY).count == 3

    def test_rebalance_duration_is_not_double_counted(self):
        """Ops sampled mid-rebalance overlap it; only the remainder advances
        the clock when the rebalance completes."""

        class FakeReport:
            simulated_seconds = 10.0

        bus, registry = attached()
        bus.emit("rebalance.start")
        bus.emit("op.update", latency_seconds=4.0)  # concurrent with the resize
        bus.emit("rebalance.complete", report=FakeReport())
        assert registry.clock.now == pytest.approx(10.0)  # not 14.0

        bus.emit("rebalance.start")
        bus.emit("op.update", latency_seconds=12.0)  # ops outlast the resize
        bus.emit("rebalance.complete", report=FakeReport())
        assert registry.clock.now == pytest.approx(22.0)
