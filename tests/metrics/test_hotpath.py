"""Equivalence tests for the metrics hot paths (PR 4).

The batched sinks (``record_many``, ``observe_op_batch``, the ``op.batch``
event) must be indistinguishable from their per-sample counterparts — same
bucket counts, same float totals, same counters, same clock — because the
determinism contract compares snapshots bit for bit across pipelines.
"""

import random
from bisect import bisect_left

from repro.common.events import EventBus
from repro.metrics import MetricsRegistry
from repro.metrics.histogram import LatencyHistogram


def _random_latencies(count, seed=7):
    rng = random.Random(seed)
    # Spread across the whole grid including sub-minimum and overflow values.
    return [rng.random() ** 6 * 2500.0 + 1e-9 for _ in range(count)]


class TestBucketIndex:
    def test_log_index_matches_bisect_for_random_values(self):
        histogram = LatencyHistogram()
        for value in _random_latencies(5000):
            assert histogram._bucket_index(value) == bisect_left(
                histogram.upper_edges, value
            ), value

    def test_log_index_matches_bisect_on_exact_edges(self):
        histogram = LatencyHistogram()
        for index, edge in enumerate(histogram.upper_edges):
            assert histogram._bucket_index(edge) == index
            # Nudges just above an edge must move to the next bucket.
            above = edge * (1 + 1e-12)
            if above > edge:
                assert histogram._bucket_index(above) == bisect_left(
                    histogram.upper_edges, above
                )

    def test_log_index_on_unusual_grids(self):
        for growth, buckets in ((1.5, 64), (4.0, 10), (1.01, 200)):
            histogram = LatencyHistogram(min_latency=3e-7, growth=growth, buckets=buckets)
            for value in _random_latencies(1500, seed=int(growth * 100)):
                assert histogram._bucket_index(value) == bisect_left(
                    histogram.upper_edges, value
                )


class TestRecordMany:
    def test_record_many_equals_looped_record(self):
        values = _random_latencies(3000)
        looped = LatencyHistogram()
        for value in values:
            looped.record(value)
        batched = LatencyHistogram()
        batched.record_many(values)
        assert batched.snapshot() == looped.snapshot()
        assert batched.total == looped.total  # same float accumulation order

    def test_record_many_empty_is_noop(self):
        histogram = LatencyHistogram()
        histogram.record_many([])
        assert histogram.count == 0
        assert histogram.min_value is None

    def test_record_many_rejects_negative_without_partial_mutation(self):
        histogram = LatencyHistogram()
        histogram.record(5e-4)
        before = histogram.snapshot()
        try:
            histogram.record_many([1e-3, 2e-3, -1.0])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("negative latency must raise")
        # The whole batch is rejected: no bucket count leaked in.
        assert histogram.snapshot() == before


class TestObserveOpBatch:
    def test_batch_equals_looped_observe(self):
        values = _random_latencies(500)
        looped = MetricsRegistry()
        for value in values:
            looped.observe_op("read", value, records=1, dataset="t")
        batched = MetricsRegistry()
        batched.observe_op_batch("read", values, records_per_op=1, dataset="t")
        assert batched.snapshot() == looped.snapshot()

    def test_op_batch_event_equals_per_op_events(self):
        values = _random_latencies(400, seed=11)

        bus_single = EventBus()
        single = MetricsRegistry().attach(bus_single)
        for value in values:
            bus_single.emit(
                "op.update", dataset="t", latency_seconds=value, records=1
            )

        bus_batch = EventBus()
        batch = MetricsRegistry().attach(bus_batch)
        bus_batch.emit(
            "op.batch",
            op="update",
            dataset="t",
            latencies=values,
            records_per_op=1,
            count=len(values),
        )
        assert batch.snapshot() == single.snapshot()

    def test_op_batch_not_double_counted_by_wildcard_handler(self):
        bus = EventBus()
        registry = MetricsRegistry().attach(bus)
        bus.emit(
            "op.batch",
            op="read",
            dataset="t",
            latencies=[1e-4, 2e-4],
            records_per_op=1,
            count=2,
        )
        assert registry.counter_value("ops.total") == 2
        assert registry.counter_value("ops.read") == 2
        # No phantom "batch" op may appear.
        assert registry.counter_value("ops.batch") == 0

    def test_empty_batch_is_noop(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.observe_op_batch("read", [])
        assert registry.snapshot() == before
