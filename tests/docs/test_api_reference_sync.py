"""The generated API reference must track the live public surface.

This is the tier-1 half of the CI `docs` job: regenerating the reference in
memory must reproduce the committed ``docs/api/*.md`` byte for byte, every
symbol in ``repro.api.__all__`` / ``repro.scenario.__all__`` must appear,
and the public surface itself must be fully docstringed (the sweep that
keeps the generated pages useful).
"""

import importlib
import importlib.util
import inspect
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
API_DIR = ROOT / "docs" / "api"


@pytest.fixture(scope="module")
def gen_api_docs():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", ROOT / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def generated_pages(gen_api_docs):
    return gen_api_docs.generate()


def test_reference_directory_is_committed():
    assert (API_DIR / "index.md").exists()
    assert (API_DIR / "repro.api.md").exists()
    assert (API_DIR / "repro.scenario.md").exists()


def test_committed_reference_matches_regeneration(generated_pages):
    for filename, content in generated_pages.items():
        committed = API_DIR / filename
        assert committed.exists(), f"{committed} missing — run scripts/gen_api_docs.py"
        assert committed.read_text() == content, (
            f"{committed} is stale — run `python scripts/gen_api_docs.py` "
            "after changing the public surface or its docstrings"
        )


def test_no_stray_pages_in_docs_api(generated_pages):
    committed = {path.name for path in API_DIR.glob("*.md")}
    assert committed == set(generated_pages)


@pytest.mark.parametrize("module_name", ["repro.api", "repro.scenario"])
def test_every_public_symbol_is_listed(module_name, generated_pages):
    module = importlib.import_module(module_name)
    page = generated_pages[f"{module_name}.md"]
    for name in module.__all__:
        assert f"### `{name}`" in page, f"{module_name}.{name} missing from the reference"


@pytest.mark.parametrize("module_name", ["repro.api", "repro.scenario"])
def test_every_public_symbol_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"public symbols of {module_name} without docstrings: {undocumented}"
    )


def test_check_mode_passes_on_committed_tree(gen_api_docs, capsys):
    assert gen_api_docs.main(["--check"]) == 0
    assert "in sync" in capsys.readouterr().out
