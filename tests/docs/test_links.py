"""Tier-1 half of the CI docs job: the markdown link check must pass."""

import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", ROOT / "scripts" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_documentation_links_resolve(check_links, capsys):
    assert check_links.main() == 0, capsys.readouterr().out


def test_github_slugs_match_expectations(check_links):
    assert check_links.github_slug("Driving traffic & reading metrics") == (
        "driving-traffic--reading-metrics"
    )
    assert check_links.github_slug("`python -m repro` CLI") == "python--m-repro-cli"
    assert check_links.github_slug("Run, record, replay") == "run-record-replay"


def test_checker_catches_broken_relative_link(check_links, tmp_path, monkeypatch):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text("see [missing](./nope.md) and [ok](#heading)\n# Heading\n")
    monkeypatch.setattr(check_links, "ROOT", tmp_path)
    monkeypatch.setattr(check_links, "DOC_FILES", ())
    assert check_links.main() == 1
