"""docs/STATIC_ANALYSIS.md stays in sync with the live rule catalogue.

``repro.analysis.violations.RULE_CATALOG`` promises its complete rule list
is mirrored by the static-analysis guide; this is the test that holds both
sides to it, in each direction.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.violations import RULE_CATALOG

DOC = Path(__file__).resolve().parents[2] / "docs" / "STATIC_ANALYSIS.md"

#: Backticked tokens shaped like rule ids (``det-builtin-hash``, ...).
RULE_TOKEN = re.compile(r"`((?:det|evt|reg|pragma|parse)-[a-z-]+)`")


@pytest.fixture(scope="module")
def doc_text():
    return DOC.read_text()


def test_every_catalogued_rule_is_documented(doc_text):
    missing = [rule for rule in RULE_CATALOG if f"`{rule}`" not in doc_text]
    assert not missing, f"docs/STATIC_ANALYSIS.md does not document {missing}"


def test_the_doc_names_no_unknown_rules(doc_text):
    unknown = sorted(set(RULE_TOKEN.findall(doc_text)) - set(RULE_CATALOG))
    assert not unknown, f"docs/STATIC_ANALYSIS.md mentions undeclared rule ids {unknown}"


def test_pragma_syntax_is_documented(doc_text):
    assert "reprolint: allow[" in doc_text
    assert "-- " in doc_text, "the mandatory pragma reason syntax is undocumented"


def test_cli_entry_points_are_documented(doc_text):
    for fragment in ("python -m repro lint", "--format github", "--list-rules"):
        assert fragment in doc_text, f"missing CLI usage: {fragment}"
