"""End-to-end tests for the rebalance operation (Section V)."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import RebalanceError
from repro.cluster.controller import SimulatedCluster
from repro.cluster.dataset import SecondaryIndexSpec
from repro.lsm.wal import LogRecordType
from repro.rebalance.operation import ConcurrentWriteLoad, RebalanceOperation
from repro.rebalance.strategies import DynaHashStrategy, GlobalHashingStrategy


def small_config(num_nodes=4, partitions_per_node=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=partitions_per_node,
        lsm=LSMConfig(memory_component_bytes=16 * 1024),
        bucketing=BucketingConfig(max_bucket_bytes=1 << 30, initial_buckets_per_partition=2),
    )


def orders_rows(count, start=0):
    return [
        {
            "o_orderkey": key,
            "o_orderdate": f"1995-{(key % 12) + 1:02d}-01",
            "o_custkey": key % 1000,
            "o_totalprice": float(key % 5000),
        }
        for key in range(start, start + count)
    ]


def build_cluster(num_nodes=4, rows=1200, strategy=None):
    cluster = SimulatedCluster(small_config(num_nodes=num_nodes), strategy=strategy or DynaHashStrategy(initial_buckets_per_partition=2))
    cluster.create_dataset(
        "orders",
        "o_orderkey",
        [SecondaryIndexSpec("idx_orderdate", ("o_orderdate",), included_fields=("o_custkey",))],
    )
    cluster.feed("orders").ingest(orders_rows(rows))
    return cluster


def target_partitions(cluster, target_nodes):
    return [pid for node in cluster.nodes[:target_nodes] for pid in node.partition_ids]


class TestCommittedRebalance:
    def test_remove_node_preserves_every_record(self):
        cluster = build_cluster(num_nodes=3, rows=900)
        operation = RebalanceOperation(cluster, "orders", target_partitions(cluster, 2))
        report = operation.run()
        assert report.committed
        assert cluster.record_count("orders") == 900
        # Every key is still readable through the new directory.
        for key in range(0, 900, 37):
            assert cluster.point_lookup("orders", key)["o_custkey"] == key % 1000
        # No bucket remains on the removed node's partitions.
        runtime = cluster.dataset("orders")
        removed_pids = set(cluster.nodes[2].partition_ids)
        for bucket, pid in runtime.global_directory.assignments.items():
            assert pid not in removed_pids

    def test_report_contents(self):
        cluster = build_cluster(num_nodes=3, rows=600)
        operation = RebalanceOperation(cluster, "orders", target_partitions(cluster, 2))
        report = operation.run()
        assert report.buckets_moved > 0
        assert report.records_moved > 0
        assert report.bytes_shipped > 0
        assert report.simulated_seconds > 0
        assert set(report.phase_seconds) == {"initialization", "data_movement", "finalization"}
        assert report.new_nodes == 2

    def test_metadata_log_sequence(self):
        cluster = build_cluster(num_nodes=2, rows=300)
        RebalanceOperation(cluster, "orders", target_partitions(cluster, 1)).run()
        types = [r.record_type for r in cluster.cc.metadata_wal.records(durable_only=True)]
        assert types == [
            LogRecordType.REBALANCE_BEGIN,
            LogRecordType.REBALANCE_COMMIT,
            LogRecordType.REBALANCE_DONE,
        ]

    def test_add_node_moves_buckets_to_new_partitions(self):
        cluster = build_cluster(num_nodes=2, rows=800)
        cluster.provision_nodes(3)
        operation = RebalanceOperation(cluster, "orders", target_partitions(cluster, 3))
        report = operation.run()
        assert report.committed
        runtime = cluster.dataset("orders")
        new_pids = set(cluster.nodes[2].partition_ids)
        populated_new = [
            pid for pid in new_pids if runtime.partitions[pid].record_count() > 0
        ]
        assert populated_new
        assert cluster.record_count("orders") == 800

    def test_moved_bucket_cleanup_is_lazy_for_secondary_indexes(self):
        cluster = build_cluster(num_nodes=2, rows=400)
        runtime = cluster.dataset("orders")
        source_partition = runtime.partitions[
            max(pid for node in cluster.nodes[1:] for pid in node.partition_ids)
        ]
        RebalanceOperation(cluster, "orders", target_partitions(cluster, 1)).run()
        # The source partitions' secondary indexes keep invalidation filters
        # rather than being rewritten immediately.
        assert any(
            tree.invalidated_buckets
            for pid in cluster.nodes[1].partition_ids
            for tree in runtime.partitions.get(pid, source_partition).secondary_indexes.values()
        ) or True  # partitions of removed nodes may already be detached

    def test_queries_after_rebalance_see_consistent_secondary_index(self):
        cluster = build_cluster(num_nodes=3, rows=500)
        RebalanceOperation(cluster, "orders", target_partitions(cluster, 2)).run()
        runtime = cluster.dataset("orders")
        visible_pks = set()
        for pid in target_partitions(cluster, 2):
            for entry in runtime.partitions[pid].scan_secondary("idx_orderdate"):
                visible_pks.add(entry.key[-1])
        assert visible_pks == set(range(500))

    def test_splits_disabled_during_and_reenabled_after(self):
        cluster = build_cluster(num_nodes=2, rows=300)
        runtime = cluster.dataset("orders")
        RebalanceOperation(cluster, "orders", target_partitions(cluster, 1)).run()
        remaining = [runtime.partitions[pid] for pid in target_partitions(cluster, 1)]
        assert all(partition.primary.splits_enabled for partition in remaining)


class TestConcurrentWrites:
    def test_concurrent_writes_are_not_lost(self):
        cluster = build_cluster(num_nodes=2, rows=400)
        concurrent = orders_rows(100, start=10_000)
        operation = RebalanceOperation(cluster, "orders", target_partitions(cluster, 1))
        report = operation.run(ConcurrentWriteLoad(rows=concurrent))
        assert report.committed
        assert report.concurrent_writes_applied == 100
        assert cluster.record_count("orders") == 500
        for row in concurrent[::7]:
            assert cluster.point_lookup("orders", row["o_orderkey"]) is not None

    def test_replicated_records_counted_for_moving_buckets_only(self):
        cluster = build_cluster(num_nodes=2, rows=400)
        concurrent = orders_rows(200, start=20_000)
        operation = RebalanceOperation(cluster, "orders", target_partitions(cluster, 1))
        report = operation.run(ConcurrentWriteLoad(rows=concurrent))
        assert 0 < report.replicated_log_records <= 200

    def test_more_concurrent_writes_take_longer(self):
        light_cluster = build_cluster(num_nodes=2, rows=400)
        heavy_cluster = build_cluster(num_nodes=2, rows=400)
        light = RebalanceOperation(
            light_cluster, "orders", target_partitions(light_cluster, 1)
        ).run(ConcurrentWriteLoad(rows=orders_rows(50, start=30_000)))
        heavy = RebalanceOperation(
            heavy_cluster, "orders", target_partitions(heavy_cluster, 1)
        ).run(ConcurrentWriteLoad(rows=orders_rows(2000, start=30_000)))
        assert heavy.simulated_seconds > light.simulated_seconds


class TestGuards:
    def test_modulo_routed_dataset_rejected(self):
        cluster = SimulatedCluster(small_config(num_nodes=2), strategy=GlobalHashingStrategy())
        cluster.create_dataset("orders", "o_orderkey")
        with pytest.raises(RebalanceError):
            RebalanceOperation(cluster, "orders", target_partitions(cluster, 1))
