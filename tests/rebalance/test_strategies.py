"""Tests for the rebalancing strategies (Hashing, StaticHash, DynaHash, ConsistentHash)."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import ConfigError
from repro.cluster.controller import SimulatedCluster
from repro.cluster.dataset import SecondaryIndexSpec
from repro.rebalance.strategies import (
    ConsistentHashStrategy,
    DynaHashStrategy,
    GlobalHashingStrategy,
    StaticHashStrategy,
    strategy_by_name,
)


def small_config(num_nodes=2, ppn=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=ppn,
        lsm=LSMConfig(memory_component_bytes=16 * 1024),
        bucketing=BucketingConfig(max_bucket_bytes=1 << 30, initial_buckets_per_partition=2),
    )


def orders_rows(count, start=0):
    return [
        {"o_orderkey": key, "o_orderdate": f"1996-{(key % 12) + 1:02d}-15", "o_custkey": key % 77}
        for key in range(start, start + count)
    ]


def build_cluster(strategy, rows=600, num_nodes=2, ppn=2):
    cluster = SimulatedCluster(small_config(num_nodes, ppn), strategy=strategy)
    cluster.create_dataset(
        "orders",
        "o_orderkey",
        [SecondaryIndexSpec("idx_orderdate", ("o_orderdate",))],
    )
    if rows:
        cluster.feed("orders").ingest(orders_rows(rows))
    return cluster


def assert_all_readable(cluster, count):
    assert cluster.record_count("orders") == count
    for key in range(0, count, max(1, count // 50)):
        assert cluster.point_lookup("orders", key) is not None


class TestFactory:
    def test_names(self):
        assert isinstance(strategy_by_name("DynaHash"), DynaHashStrategy)
        assert isinstance(strategy_by_name("statichash"), StaticHashStrategy)
        assert isinstance(strategy_by_name("Hashing"), GlobalHashingStrategy)
        assert isinstance(strategy_by_name("consistent"), ConsistentHashStrategy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            strategy_by_name("mystery")  # reprolint: allow[reg-unknown-strategy] -- asserts the unknown-name error path


class TestLayouts:
    def test_dynahash_layout_is_dynamic(self):
        cluster = build_cluster(DynaHashStrategy(), rows=0)
        runtime = cluster.dataset("orders")
        assert runtime.routing_mode == "directory"
        assert not runtime.bucketing.static

    def test_statichash_layout_has_fixed_buckets(self):
        cluster = build_cluster(StaticHashStrategy(total_buckets=64), rows=0)
        runtime = cluster.dataset("orders")
        assert runtime.bucketing.static
        assert len(runtime.global_directory) == 64
        # Paper: buckets are spread evenly, 64 buckets / 4 partitions = 16 each.
        per_partition = [
            len(runtime.global_directory.buckets_of_partition(pid))
            for pid in cluster.partition_ids()
        ]
        assert per_partition == [16, 16, 16, 16]

    def test_hashing_layout_is_modulo(self):
        cluster = build_cluster(GlobalHashingStrategy(), rows=0)
        runtime = cluster.dataset("orders")
        assert runtime.routing_mode == "modulo"
        assert runtime.global_directory is None

    def test_consistent_hash_layout_covers_space(self):
        cluster = build_cluster(ConsistentHashStrategy(total_buckets=64), rows=0)
        runtime = cluster.dataset("orders")
        assert len(runtime.global_directory) == 64
        assert set(runtime.global_directory.partitions()) <= set(cluster.partition_ids())

    def test_statichash_rejects_bad_bucket_count(self):
        with pytest.raises(ConfigError):
            StaticHashStrategy(total_buckets=0)


class TestScaleIn:
    @pytest.mark.parametrize(
        "strategy",
        [DynaHashStrategy(), StaticHashStrategy(total_buckets=32), ConsistentHashStrategy(total_buckets=32)],
        ids=["DynaHash", "StaticHash", "ConsistentHash"],
    )
    def test_remove_node_keeps_data(self, strategy):
        cluster = build_cluster(strategy, rows=600, num_nodes=3)
        report = cluster.remove_nodes(1)
        assert report.committed
        assert cluster.num_nodes == 2
        assert_all_readable(cluster, 600)

    def test_hashing_remove_node_keeps_data(self):
        cluster = build_cluster(GlobalHashingStrategy(), rows=600, num_nodes=3)
        report = cluster.remove_nodes(1)
        assert report.committed
        assert cluster.num_nodes == 2
        assert_all_readable(cluster, 600)

    def test_bucketed_moves_less_than_hashing(self):
        # Use a large workload scale so data-movement work (not fixed RPC
        # latency) dominates the simulated durations, as it does at the
        # paper's 100 GB/node scale.
        bucketed = SimulatedCluster(
            small_config(4, 2), strategy=DynaHashStrategy(), workload_scale=500.0
        )
        hashed = SimulatedCluster(
            small_config(4, 2), strategy=GlobalHashingStrategy(), workload_scale=500.0
        )
        for cluster in (bucketed, hashed):
            cluster.create_dataset("orders", "o_orderkey")
            cluster.feed("orders").ingest(orders_rows(800))
        bucketed_report = bucketed.remove_nodes(1)
        hashed_report = hashed.remove_nodes(1)
        assert bucketed_report.total_records_moved < hashed_report.total_records_moved
        assert bucketed_report.simulated_seconds < hashed_report.simulated_seconds

    def test_consistent_hash_moves_only_affected_buckets(self):
        cluster = build_cluster(ConsistentHashStrategy(total_buckets=64), rows=400, num_nodes=4)
        runtime = cluster.dataset("orders")
        before = dict(runtime.global_directory.assignments)
        removed_pids = set(cluster.nodes[-1].partition_ids)
        cluster.remove_nodes(1)
        after = cluster.dataset("orders").global_directory.assignments
        for bucket, old_pid in before.items():
            if old_pid not in removed_pids:
                assert after[bucket] == old_pid


class TestScaleOut:
    @pytest.mark.parametrize(
        "strategy",
        [DynaHashStrategy(initial_buckets_per_partition=2), StaticHashStrategy(total_buckets=32)],
        ids=["DynaHash", "StaticHash"],
    )
    def test_add_node_keeps_data_and_uses_new_node(self, strategy):
        cluster = build_cluster(strategy, rows=600, num_nodes=2)
        report = cluster.add_nodes(1)
        assert report.committed
        assert cluster.num_nodes == 3
        assert_all_readable(cluster, 600)
        new_pids = cluster.nodes[2].partition_ids
        runtime = cluster.dataset("orders")
        assert any(runtime.partitions[pid].record_count() > 0 for pid in new_pids)

    def test_hashing_add_node(self):
        cluster = build_cluster(GlobalHashingStrategy(), rows=600, num_nodes=2)
        report = cluster.add_nodes(1)
        assert report.committed
        assert cluster.num_nodes == 3
        assert_all_readable(cluster, 600)

    def test_remove_then_add_back(self):
        """The Figure 7 experiment shape: N -> N-1 -> N."""
        cluster = build_cluster(DynaHashStrategy(), rows=500, num_nodes=3)
        cluster.remove_nodes(1)
        assert_all_readable(cluster, 500)
        cluster.add_nodes(1)
        assert cluster.num_nodes == 3
        assert_all_readable(cluster, 500)


class TestConcurrentWritesThroughStrategy:
    def test_concurrent_rows_are_preserved(self):
        cluster = build_cluster(DynaHashStrategy(), rows=400, num_nodes=2)
        report = cluster.rebalance_to(
            1, concurrent_rows={"orders": orders_rows(80, start=5000)}
        )
        assert report.committed
        assert cluster.record_count("orders") == 480

    def test_ingestion_still_works_after_rebalance(self):
        cluster = build_cluster(DynaHashStrategy(), rows=300, num_nodes=3)
        cluster.remove_nodes(1)
        cluster.feed("orders").ingest(orders_rows(200, start=9000))
        assert cluster.record_count("orders") == 500
