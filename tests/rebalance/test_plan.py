"""Tests for Algorithm 2 (BALANCE) and plan construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import RebalanceError
from repro.hashing.bucket_id import BucketId, covers_exactly
from repro.hashing.extendible import GlobalDirectory
from repro.rebalance.plan import (
    compute_balanced_directory,
    compute_round_robin_directory,
    plan_from_directories,
)


def uniform_directory(num_partitions, buckets_per_partition=4):
    return GlobalDirectory.initial(num_partitions, buckets_per_partition)


def nodes_for(partitions, per_node=4):
    return {pid: f"nc{pid // per_node}" for pid in partitions}


class TestBalanceRemoveNode:
    def test_displaced_buckets_are_reassigned(self):
        # 4 partitions x 4 buckets; remove partition 3.
        directory = uniform_directory(4, 4)
        targets = [0, 1, 2]
        plan = compute_balanced_directory(directory, targets, nodes_for(range(4), per_node=1))
        assert covers_exactly(plan.new_directory.buckets)
        assert set(plan.new_directory.partitions()) <= set(targets)
        # Only the displaced buckets moved (local rebalancing).
        displaced = directory.buckets_of_partition(3)
        assert {move.bucket for move in plan.moves} == set(displaced)

    def test_load_is_balanced_after_removal(self):
        directory = uniform_directory(4, 4)
        targets = [0, 1, 2]
        plan = compute_balanced_directory(directory, targets, nodes_for(range(4), per_node=1))
        load = plan.new_directory.normalized_load()
        assert max(load.values()) - min(load.values()) <= max(
            b.normalized_size(plan.new_directory.global_depth)
            for b in plan.new_directory.buckets
        )

    def test_existing_buckets_stay_put(self):
        """Local rebalancing: buckets on surviving partitions do not move."""
        directory = uniform_directory(8, 2)
        targets = list(range(6))
        plan = compute_balanced_directory(directory, targets, nodes_for(range(8), per_node=1))
        for bucket, partition in directory.assignments.items():
            if partition in targets:
                assert plan.new_directory.partition_of_bucket(bucket) == partition


class TestBalanceAddNode:
    def test_new_partitions_receive_buckets(self):
        directory = uniform_directory(4, 4)
        targets = list(range(6))  # two new empty partitions
        plan = compute_balanced_directory(directory, targets, nodes_for(range(6), per_node=1))
        load = plan.new_directory.normalized_load()
        assert load.get(4, 0) > 0
        assert load.get(5, 0) > 0
        assert covers_exactly(plan.new_directory.buckets)

    def test_movement_is_proportional_not_global(self):
        """Adding one partition moves roughly 1/(P+1) of the buckets, not all."""
        directory = uniform_directory(8, 4)
        targets = list(range(9))
        plan = compute_balanced_directory(directory, targets, nodes_for(range(9), per_node=1))
        total_buckets = len(directory)
        assert 0 < plan.moved_buckets <= total_buckets // 3

    def test_iterations_reduce_imbalance(self):
        directory = uniform_directory(4, 8)
        targets = list(range(5))
        plan = compute_balanced_directory(directory, targets, nodes_for(range(5), per_node=1))
        assert plan.normalized_imbalance() < 2.0


class TestBalanceEdgeCases:
    def test_empty_targets_rejected(self):
        with pytest.raises(RebalanceError):
            compute_balanced_directory(uniform_directory(2), [], {})

    def test_missing_node_mapping_rejected(self):
        with pytest.raises(RebalanceError):
            compute_balanced_directory(uniform_directory(2), [0, 1], {0: "nc0"})

    def test_single_target_partition_gets_everything(self):
        directory = uniform_directory(4, 2)
        plan = compute_balanced_directory(directory, [0], {0: "nc0"})
        assert set(plan.new_directory.partitions()) == {0}
        assert plan.moved_buckets == len(directory) - len(directory.buckets_of_partition(0))

    def test_mixed_depth_buckets(self):
        # Partition 0 split one of its buckets: depths differ across buckets.
        directory = GlobalDirectory(
            {
                BucketId(0b00, 2): 0,
                BucketId(0b010, 3): 0,
                BucketId(0b110, 3): 0,
                BucketId(0b01, 2): 1,
                BucketId(0b11, 2): 1,
            }
        )
        plan = compute_balanced_directory(directory, [0, 1], {0: "nc0", 1: "nc1"})
        assert covers_exactly(plan.new_directory.buckets)

    def test_node_tiebreak_prefers_less_loaded_node(self):
        """With equal partition loads, displaced buckets go to the partition
        whose *node* carries less total load."""
        directory = GlobalDirectory(
            {
                BucketId(0b00, 2): 0,
                BucketId(0b01, 2): 1,
                BucketId(0b10, 2): 2,
                BucketId(0b11, 2): 3,
            }
        )
        # Partitions 0,1 on nc0; partition 2 on nc1; partition 3 removed.
        partition_nodes = {0: "nc0", 1: "nc0", 2: "nc1", 3: "nc1"}
        plan = compute_balanced_directory(directory, [0, 1, 2], partition_nodes)
        moved = plan.moves[0]
        assert moved.destination_partition == 2  # nc1 is the lighter node


class TestRoundRobinBaseline:
    def test_round_robin_covers_space(self):
        directory = uniform_directory(4, 4)
        plan = compute_round_robin_directory(directory, [0, 1, 2])
        assert covers_exactly(plan.new_directory.buckets)
        assert set(plan.new_directory.partitions()) <= {0, 1, 2}

    def test_round_robin_moves_more_than_greedy(self):
        directory = uniform_directory(8, 4)
        targets = list(range(7))
        greedy = compute_balanced_directory(directory, targets, nodes_for(range(8), per_node=1))
        naive = compute_round_robin_directory(directory, targets)
        assert naive.moved_buckets > greedy.moved_buckets

    def test_round_robin_empty_targets_rejected(self):
        with pytest.raises(RebalanceError):
            compute_round_robin_directory(uniform_directory(2), [])


class TestPlanFromDirectories:
    def test_diff_produces_moves(self):
        old = uniform_directory(2, 2)
        new_assignments = dict(old.assignments)
        moved_bucket = next(iter(new_assignments))
        new_assignments[moved_bucket] = 1 - new_assignments[moved_bucket]
        plan = plan_from_directories(old, GlobalDirectory(new_assignments))
        assert plan.moved_buckets == 1
        assert plan.moves[0].bucket == moved_bucket

    def test_mismatched_bucket_sets_rejected(self):
        old = uniform_directory(2, 2)
        other = uniform_directory(2, 4)
        with pytest.raises(RebalanceError):
            plan_from_directories(old, other)

    def test_moves_to_and_from_helpers(self):
        old = uniform_directory(2, 2)
        plan = compute_balanced_directory(old, [0], {0: "nc0", 1: "nc0"})
        assert all(move.destination_partition == 0 for move in plan.moves_to(0))
        assert all(move.source_partition == 1 for move in plan.moves_from(1))


class TestBalanceProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_partitions=st.integers(min_value=2, max_value=16),
        buckets_per_partition=st.integers(min_value=1, max_value=8),
        removed=st.integers(min_value=1, max_value=4),
    )
    def test_balance_always_produces_valid_cover(
        self, num_partitions, buckets_per_partition, removed
    ):
        removed = min(removed, num_partitions - 1)
        directory = uniform_directory(num_partitions, buckets_per_partition)
        targets = list(range(num_partitions - removed))
        plan = compute_balanced_directory(
            directory, targets, nodes_for(range(num_partitions), per_node=2)
        )
        assert covers_exactly(plan.new_directory.buckets)
        assert set(plan.new_directory.partitions()) <= set(targets)
        # Every bucket is assigned to exactly one partition.
        assert set(plan.new_directory.assignments.keys()) == set(directory.assignments.keys())
