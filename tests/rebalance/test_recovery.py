"""Tests for rebalance failure handling — the six cases of Section V-D."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import FaultInjected
from repro.cluster.controller import SimulatedCluster
from repro.cluster.dataset import SecondaryIndexSpec
from repro.rebalance.operation import FaultInjector, RebalanceOperation
from repro.rebalance.recovery import RebalanceRecoveryManager
from repro.rebalance.strategies import DynaHashStrategy


def small_config(num_nodes=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=16 * 1024),
        bucketing=BucketingConfig(initial_buckets_per_partition=2),
    )


def orders_rows(count, start=0):
    return [
        {"o_orderkey": key, "o_orderdate": f"1995-{(key % 12) + 1:02d}-01", "o_custkey": key % 100}
        for key in range(start, start + count)
    ]


def build_cluster(rows=400, num_nodes=2):
    cluster = SimulatedCluster(small_config(num_nodes), strategy=DynaHashStrategy())
    cluster.create_dataset(
        "orders",
        "o_orderkey",
        [SecondaryIndexSpec("idx_orderdate", ("o_orderdate",))],
    )
    cluster.feed("orders").ingest(orders_rows(rows))
    return cluster


def target_partitions(cluster, target_nodes):
    return [pid for node in cluster.nodes[:target_nodes] for pid in node.partition_ids]


def dataset_is_consistent(cluster, expected_keys):
    """Every expected key readable exactly once; directory covers the space."""
    runtime = cluster.dataset("orders")
    assert runtime.blocked is False
    assert all(not p.blocked for p in runtime.partitions.values())
    count = cluster.record_count("orders")
    assert count == len(expected_keys)
    for key in list(expected_keys)[:: max(1, len(expected_keys) // 40)]:
        assert cluster.point_lookup("orders", key) is not None
    return True


class TestAbortPaths:
    def test_case1_nc_fails_before_prepare(self):
        """Case 1: the CC aborts and every NC cleans up its received buckets."""
        cluster = build_cluster(rows=400)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["nc_fail_before_prepare"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        outcomes = RebalanceRecoveryManager(cluster).recover()
        assert [o.action for o in outcomes] == ["aborted"]
        # The dataset is exactly as it was before the rebalance.
        assert dataset_is_consistent(cluster, range(400))
        runtime = cluster.dataset("orders")
        assert all(not p.pending_received for p in runtime.partitions.values())

    def test_case3_cc_fails_before_commit(self):
        """Case 3: the CC recovers, sees BEGIN without COMMIT, and aborts."""
        cluster = build_cluster(rows=300)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["cc_fail_before_commit"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        # Simulate losing the CC's unforced log tail.
        cluster.cc.metadata_wal.crash()
        outcomes = RebalanceRecoveryManager(cluster).recover()
        assert [o.action for o in outcomes] == ["aborted"]
        assert dataset_is_consistent(cluster, range(300))
        # Old routing still in force: buckets remain on both nodes.
        runtime = cluster.dataset("orders")
        assert len(set(runtime.global_directory.partitions())) == 4

    def test_case2_nc_fails_after_prepare_then_abort(self):
        """Case 2 (abort variant): the NC recovers and is told to clean up."""
        cluster = build_cluster(rows=300)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["nc_fail_after_prepare"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        outcomes = RebalanceRecoveryManager(cluster).recover_node("nc1")
        assert [o.action for o in outcomes] == ["aborted"]
        assert dataset_is_consistent(cluster, range(300))

    def test_abort_is_idempotent(self):
        cluster = build_cluster(rows=200)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["nc_fail_before_prepare"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        manager = RebalanceRecoveryManager(cluster)
        first = manager.recover()
        second = manager.recover()
        assert [o.action for o in first] == ["aborted"]
        assert [o.action for o in second] == ["already-done"]
        assert dataset_is_consistent(cluster, range(200))


class TestCommitPaths:
    def test_case4_nc_fails_before_acking_commit(self):
        """Case 4: COMMIT is durable; recovery re-applies the commit tasks."""
        cluster = build_cluster(rows=400)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["nc_fail_before_committed"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        outcomes = RebalanceRecoveryManager(cluster).recover()
        assert [o.action for o in outcomes] == ["committed"]
        assert dataset_is_consistent(cluster, range(400))
        # After the committed recovery, no bucket lives on node 1's partitions.
        runtime = cluster.dataset("orders")
        removed = set(cluster.nodes[1].partition_ids)
        assert not (set(runtime.global_directory.partitions()) & removed)

    def test_case5_cc_fails_after_commit_before_done(self):
        """Case 5: the CC re-notifies the NCs and finally writes DONE."""
        cluster = build_cluster(rows=400)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["cc_fail_after_commit"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        manager = RebalanceRecoveryManager(cluster)
        outcomes = manager.recover()
        assert [o.action for o in outcomes] == ["committed"]
        assert dataset_is_consistent(cluster, range(400))
        # A second recovery finds the DONE record and does nothing.
        assert [o.action for o in manager.recover()] == ["already-done"]

    def test_case6_cc_fails_after_done(self):
        """Case 6: nothing to do on recovery."""
        cluster = build_cluster(rows=300)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["cc_fail_after_done"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        outcomes = RebalanceRecoveryManager(cluster).recover()
        assert [o.action for o in outcomes] == ["already-done"]
        assert dataset_is_consistent(cluster, range(300))

    def test_commit_recovery_is_idempotent(self):
        cluster = build_cluster(rows=300)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["nc_fail_before_committed"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        manager = RebalanceRecoveryManager(cluster)
        manager.recover()
        manager.recover()
        assert dataset_is_consistent(cluster, range(300))


class TestPendingAnalysis:
    def test_pending_rebalances_reconstruction(self):
        cluster = build_cluster(rows=200)
        operation = RebalanceOperation(
            cluster,
            "orders",
            target_partitions(cluster, 1),
            fault_injector=FaultInjector(["cc_fail_after_commit"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        pending = RebalanceRecoveryManager(cluster).pending_rebalances()
        assert len(pending) == 1
        assert pending[0].is_committed
        assert not pending[0].is_finished

    def test_clean_run_leaves_nothing_pending(self):
        cluster = build_cluster(rows=200)
        RebalanceOperation(cluster, "orders", target_partitions(cluster, 1)).run()
        pending = RebalanceRecoveryManager(cluster).pending_rebalances()
        assert all(p.is_finished for p in pending)
