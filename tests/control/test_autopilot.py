"""Autopilot engine tests: guardrails, events, and the closed loop.

The last class pins the PR's acceptance criterion: a hotspot-spike workload
run with ``db.autopilot(policy="cost_aware")`` triggers at least one
rebalance with **no explicit** ``db.rebalance`` call, the ``autopilot.*``
decision events appear in the metrics snapshot, and the same seed reproduces
identical decisions.
"""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    OperationMix,
    Phase,
    Schedule,
    WorkloadDriver,
    WorkloadSpec,
)
from repro.common.errors import ConfigError
from repro.control import (
    ACTION_ADD,
    Autopilot,
    AutopilotPolicy,
    PolicyDecision,
    ThresholdPolicy,
)


def config(num_nodes=3, seed=2022):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
        seed=seed,
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


class AlwaysAct(AutopilotPolicy):
    """Test double: demands the same rebalance on every evaluation."""

    name = "AlwaysAct"

    def __init__(self, action=ACTION_ADD):
        self.action = action
        self.calls = 0

    def decide(self, observation, planner):
        self.calls += 1
        target = observation.num_nodes + (1 if self.action == ACTION_ADD else 0)
        return PolicyDecision(self.action, target_nodes=target, reason="always")


class TestEngineBasics:
    def test_start_stop_events_and_gauge(self):
        with Database(config()) as db:
            seen = []
            db.on("autopilot.*", lambda event: seen.append(event.name))
            pilot = db.autopilot(policy="threshold", check_every_ops=1000)
            assert pilot.active
            pilot.stop()
            assert not pilot.active
            assert seen == ["autopilot.start", "autopilot.stop"]
            snapshot = db.metrics.snapshot()
            assert snapshot.counters["autopilot.start"] == 1
            assert snapshot.counters["autopilot.stop"] == 1
            assert snapshot.gauges["autopilot.active"] == 0

    def test_database_close_stops_the_engine(self):
        db = Database(config())
        pilot = db.autopilot(policy="threshold")
        db.close()
        assert not pilot.active

    def test_attaching_a_new_engine_stops_the_old(self):
        with Database(config()) as db:
            first = db.autopilot(policy="threshold")
            second = db.autopilot(policy="cost_aware")
            assert not first.active
            assert second.active
            assert db.autopilot_engine is second

    def test_engine_option_validation(self):
        with Database(config()) as db:
            with pytest.raises(ConfigError):
                Autopilot(db, "threshold", check_every_ops=0)
            with pytest.raises(ConfigError):
                Autopilot(db, "threshold", cooldown_seconds=-1)
            with pytest.raises(ConfigError):
                Autopilot(db, "threshold", hysteresis=0)

    def test_traffic_drives_evaluations(self):
        with Database(config()) as db:
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(50))
            policy = ThresholdPolicy(skew_threshold=100.0)
            pilot = db.autopilot(policy=policy, check_every_ops=10)
            for key in range(35):
                dataset.get(key)
            pilot.stop()
            # The 35 reads after attach each count; the engine evaluated at
            # ops 10, 20, and 30 (and the quiet policy never acted).
            assert pilot._ops_seen == 35
            assert not pilot.decisions


class TestGuardrails:
    def _db_with_pilot(self, **engine_options):
        db = Database(config())
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(400))
        policy = AlwaysAct()
        pilot = db.autopilot(policy=policy, **engine_options)
        return db, dataset, policy, pilot

    def test_dry_run_never_rebalances(self):
        db, dataset, _policy, pilot = self._db_with_pilot(
            check_every_ops=10, dry_run=True
        )
        for key in range(60):
            dataset.get(key)
        assert pilot.rebalances_triggered == 0
        assert db.num_nodes == 3
        assert any(d.outcome == "dry_run" for d in pilot.decisions)
        assert db.metrics.snapshot().counters.get("autopilot.dry_run", 0) >= 1
        db.close()

    def test_cooldown_spaces_actions(self):
        db, dataset, _policy, pilot = self._db_with_pilot(
            check_every_ops=5, cooldown_seconds=1e9
        )
        for key in range(100):
            dataset.get(key)
        # The first action executes; every later decision hits the cooldown.
        assert pilot.rebalances_triggered == 1
        outcomes = {d.outcome for d in pilot.decisions}
        assert "cooldown" in outcomes
        db.close()

    def test_hysteresis_requires_consecutive_confirmations(self):
        db, dataset, policy, pilot = self._db_with_pilot(
            check_every_ops=10, hysteresis=3, cooldown_seconds=1e9
        )
        for key in range(25):
            dataset.get(key)
        # Two evaluations so far: both vetoed by hysteresis.
        assert pilot.rebalances_triggered == 0
        assert [d.outcome for d in pilot.decisions] == ["hysteresis", "hysteresis"]
        for key in range(15):
            dataset.get(key)
        # The third consecutive identical decision executes.
        assert pilot.rebalances_triggered == 1
        db.close()

    def test_max_rebalances_cap(self):
        db, dataset, _policy, pilot = self._db_with_pilot(
            check_every_ops=5, max_rebalances=1
        )
        for key in range(100):
            dataset.get(key)
        assert pilot.rebalances_triggered == 1
        assert any(d.outcome == "max_rebalances" for d in pilot.decisions)
        db.close()

    def test_max_one_rebalance_in_flight(self):
        """Op samples emitted *during* an autopilot rebalance (concurrent
        write replication) must not re-enter the engine."""
        db = Database(config())
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(400))
        pilot = db.autopilot(policy=AlwaysAct(), check_every_ops=1)
        in_flight_steps = []
        db.on(
            "rebalance.phase",
            lambda event: in_flight_steps.append(pilot.step()),
        )
        dataset.get(0)  # triggers the rebalance on the first evaluation
        assert pilot.rebalances_triggered >= 1
        # step() calls made mid-rebalance all returned None (skipped).
        assert in_flight_steps and all(step is None for step in in_flight_steps)
        db.close()

    def test_skipped_decisions_emit_skip_events(self):
        db, dataset, _policy, pilot = self._db_with_pilot(
            check_every_ops=5, cooldown_seconds=1e9
        )
        for key in range(50):
            dataset.get(key)
        counters = db.metrics.snapshot().counters
        assert counters.get("autopilot.skip", 0) >= 1
        assert counters["autopilot.decision"] == len(pilot.decisions)
        db.close()


class TestAcceptanceCriterion:
    """The ISSUE's acceptance test, as a reusable recipe."""

    def _storm_run(self, seed=2022):
        db = Database(config(seed=seed))
        pilot = db.autopilot(
            policy="cost_aware",
            policy_options={
                # Above the preload's natural skew; the spike's insert volume
                # drives the capacity trigger.
                "balance_bar": 1.8,
                "node_capacity_bytes": 52 * KIB,
            },
            check_every_ops=40,
            cooldown_seconds=0.05,
        )
        spike_mix = OperationMix(name="spike", read=0.3, insert=0.6, update=0.1)
        spec = WorkloadSpec(
            dataset="traffic",
            initial_records=600,
            mix="B",
            keys="zipfian",
            schedule=Schedule(
                (
                    Phase(name="warmup", ops=80, keys="uniform"),
                    Phase(name="steady", ops=240),
                    Phase(name="spike", ops=320, keys="hotspot", mix=spike_mix),
                    Phase(name="recover", ops=160),
                )
            ),
        )
        report = WorkloadDriver(db, spec).run()  # seeded from config.seed
        snapshot = db.metrics.snapshot()
        trace = pilot.decision_trace()
        nodes = db.num_nodes
        db.close()
        return report, snapshot, trace, nodes

    def test_hotspot_spike_triggers_policy_rebalance(self):
        report, snapshot, trace, nodes = self._storm_run()
        # ≥ 1 rebalance, with no rebalance= key anywhere in the schedule and
        # no explicit db.rebalance call.
        assert report.autopilot_rebalances >= 1
        assert all(phase.rebalance_report is None for phase in report.phases)
        assert nodes > 3
        # The autopilot.* decision events appear in the metrics snapshot.
        assert snapshot.counters["autopilot.decision"] >= 1
        assert snapshot.counters["autopilot.rebalance.start"] >= 1
        assert snapshot.counters["autopilot.rebalance.complete"] >= 1
        # And the run's report carries the decisions the engine took.
        assert len(report.autopilot_decisions) == len(trace)
        assert any(d.outcome == "executed" for d in report.autopilot_decisions)
        # Both latency populations exist: traffic genuinely overlapped the
        # policy-triggered rebalance.
        assert snapshot.histogram_count("read", "steady") > 0
        assert snapshot.counters["rebalance.completed"] >= 1

    def test_same_seed_reproduces_identical_decisions(self):
        first_report, first_snapshot, first_trace, _ = self._storm_run(seed=7)
        second_report, second_snapshot, second_trace, _ = self._storm_run(seed=7)
        assert first_trace == second_trace
        assert first_snapshot == second_snapshot
        assert [d.simulated_seconds for d in first_report.autopilot_decisions] == [
            d.simulated_seconds for d in second_report.autopilot_decisions
        ]

    def test_different_seed_may_differ_but_still_triggers(self):
        _report, snapshot, trace, _nodes = self._storm_run(seed=99)
        assert snapshot.counters["autopilot.rebalance.complete"] >= 1
        assert len(trace) >= 1
