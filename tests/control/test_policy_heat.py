"""ThresholdPolicy's hot-bucket trigger reading the observation heat counters.

The per-bucket heat tables on :class:`ClusterObservation` are populated only
while a tracing session's :class:`~repro.trace.TimelineRecorder` has its
heat tracker installed on the cluster — these tests pin both halves: the
observation surfaces real heat from a traced session, and the policy turns
it into a retarget decision (and stays inert untraced / unconfigured).
"""

from dataclasses import replace

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.common.errors import ConfigError
from repro.control import (
    ACTION_NONE,
    ACTION_RETARGET,
    ClusterObservation,
    ThresholdPolicy,
    resolve_policy,
)
from repro.trace import TimelineRecorder


def config(num_nodes=3):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


class StubPlanner:
    """A planner whose projection always (or never) moves buckets."""

    def __init__(self, buckets_moved=1):
        self.buckets_moved = buckets_moved

    def project(self, target_nodes):
        class _Projection:
            pass

        projection = _Projection()
        projection.buckets_moved = self.buckets_moved
        return projection


class TestObservationHeat:
    def test_untraced_capture_reports_no_heat(self):
        with Database(config()) as db:
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(100))
            observation = ClusterObservation.capture(db)
        assert observation.bucket_read_heat == ()
        assert observation.bucket_write_heat == ()
        assert observation.max_bucket_heat() == 0

    def test_traced_capture_surfaces_real_heat(self):
        with Database(config()) as db:
            recorder = TimelineRecorder(db).attach()
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(100))
            for _ in range(200):
                dataset.get(1)  # hammer one key -> one hot bucket
            observation = ClusterObservation.capture(db)
            recorder.finish()
        assert observation.bucket_write_heat != ()
        assert observation.max_bucket_heat() >= 200
        hottest = max(
            count for _, _, count in observation.bucket_read_heat
        )
        assert hottest >= 200

    def test_max_bucket_heat_combines_reads_and_writes(self):
        with Database(config()) as db:
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(10))
            observation = ClusterObservation.capture(db)
        combined = replace(
            observation,
            bucket_read_heat=(("t", "0", 30), ("t", "1", 5)),
            bucket_write_heat=(("t", "0", 12), ("t", "2", 50)),
        )
        assert combined.max_bucket_heat() == 50  # bucket "2" writes alone
        assert (
            replace(combined, bucket_write_heat=(("t", "0", 12),)).max_bucket_heat() == 42
        )  # bucket "0" reads + writes


class TestHotBucketTrigger:
    @pytest.fixture
    def hot_observation(self):
        with Database(config()) as db:
            dataset = db.create_dataset("t", primary_key="k")
            dataset.insert(rows(200))
            observation = ClusterObservation.capture(db)
        return replace(observation, bucket_read_heat=(("t", "010", 500),))

    def test_hot_bucket_retargets(self, hot_observation):
        policy = ThresholdPolicy(hot_bucket_ops=100)
        decision = policy.decide(hot_observation, StubPlanner(buckets_moved=2))
        assert decision.action == ACTION_RETARGET
        assert decision.target_nodes == hot_observation.num_nodes
        assert "hot bucket" in decision.reason

    def test_no_move_projection_stays_quiet(self, hot_observation):
        policy = ThresholdPolicy(hot_bucket_ops=100)
        decision = policy.decide(hot_observation, StubPlanner(buckets_moved=0))
        assert decision.action == ACTION_NONE

    def test_threshold_not_exceeded_stays_quiet(self, hot_observation):
        policy = ThresholdPolicy(hot_bucket_ops=500)  # heat == 500, need >
        decision = policy.decide(hot_observation, StubPlanner())
        assert decision.action == ACTION_NONE

    def test_disabled_by_default(self, hot_observation):
        decision = ThresholdPolicy().decide(hot_observation, StubPlanner())
        assert decision.action == ACTION_NONE

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThresholdPolicy(hot_bucket_ops=0)

    def test_resolves_through_the_registry(self):
        policy = resolve_policy("threshold", hot_bucket_ops=25)
        assert isinstance(policy, ThresholdPolicy)
        assert policy.hot_bucket_ops == 25
