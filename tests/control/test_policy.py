"""Policy unit tests: registry, decisions, and each built-in policy."""

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.common.errors import ConfigError
from repro.control import (
    ACTION_ADD,
    ACTION_NONE,
    ACTION_REMOVE,
    ACTION_RETARGET,
    AutopilotPolicy,
    ClusterObservation,
    CostAwarePolicy,
    PolicyDecision,
    ScheduledPolicy,
    ThresholdPolicy,
    WhatIfPlanner,
    available_policies,
    policy_by_name,
    register_policy,
    resolve_policy,
)


def config(num_nodes=3):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy="dynahash",
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


@pytest.fixture
def loaded_db():
    with Database(config()) as db:
        dataset = db.create_dataset("t", primary_key="k")
        dataset.insert(rows(500))
        yield db


def observe(db):
    return ClusterObservation.capture(db)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_policies()
        assert {"threshold", "cost_aware", "scheduled"} <= set(names)

    def test_aliases_resolve(self):
        assert isinstance(policy_by_name("cost"), CostAwarePolicy)
        assert isinstance(policy_by_name("skew"), ThresholdPolicy)
        assert isinstance(policy_by_name("cron", interval_seconds=1.0), ScheduledPolicy)

    def test_factory_kwargs_forwarded(self):
        policy = policy_by_name("threshold", skew_threshold=2.0)
        assert policy.skew_threshold == 2.0

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigError, match="cost_aware"):
            policy_by_name("nope")  # reprolint: allow[reg-unknown-policy] -- asserts the unknown-name error path

    def test_register_custom_policy(self):
        class AlwaysAdd(AutopilotPolicy):
            name = "AlwaysAdd"

            def decide(self, observation, planner):
                return PolicyDecision(
                    ACTION_ADD, target_nodes=observation.num_nodes + 1, reason="test"
                )

        register_policy("always_add", AlwaysAdd, aliases=("aa",))
        try:
            assert isinstance(policy_by_name("aa"), AlwaysAdd)
            assert isinstance(resolve_policy("always_add"), AlwaysAdd)
        finally:
            # keep the global registry clean for other tests
            from repro.control.policy import _POLICY_ALIASES, _POLICY_FACTORIES

            _POLICY_FACTORIES.pop("always_add", None)
            _POLICY_ALIASES.pop("always_add", None)
            _POLICY_ALIASES.pop("aa", None)

    def test_resolve_rejects_non_policy(self):
        with pytest.raises(ConfigError, match="decide"):
            resolve_policy(object())

    def test_resolve_rejects_options_with_instance(self):
        with pytest.raises(ConfigError, match="policy name"):
            resolve_policy(ThresholdPolicy(), skew_threshold=2.0)


class TestPolicyDecision:
    def test_action_validation(self):
        with pytest.raises(ConfigError):
            PolicyDecision("explode")

    def test_rebalance_actions_need_target(self):
        with pytest.raises(ConfigError):
            PolicyDecision(ACTION_ADD)

    def test_signature_identity(self):
        first = PolicyDecision(ACTION_ADD, target_nodes=4, reason="a")
        second = PolicyDecision(ACTION_ADD, target_nodes=4, reason="b")
        assert first.signature() == second.signature()
        assert PolicyDecision(ACTION_NONE).wants_rebalance is False
        assert first.wants_rebalance is True


class TestThresholdPolicy:
    def test_quiet_when_everything_clear(self, loaded_db):
        policy = ThresholdPolicy(skew_threshold=10.0)
        decision = policy.decide(observe(loaded_db), WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_NONE

    def test_capacity_pressure_adds_a_node(self, loaded_db):
        observation = observe(loaded_db)
        tight = int(observation.max_node_bytes / 0.9)  # peak utilization ~0.9
        policy = ThresholdPolicy(skew_threshold=10.0, node_capacity_bytes=tight)
        decision = policy.decide(observation, WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_ADD
        assert decision.target_nodes == observation.num_nodes + 1
        assert "capacity" in decision.reason

    def test_capacity_respects_max_nodes(self, loaded_db):
        observation = observe(loaded_db)
        tight = int(observation.max_node_bytes / 0.9)
        policy = ThresholdPolicy(
            skew_threshold=10.0,
            node_capacity_bytes=tight,
            max_nodes=observation.num_nodes,
        )
        assert policy.decide(observation, WhatIfPlanner(loaded_db)).action == ACTION_NONE

    def test_skew_triggers_retarget_when_buckets_can_move(self, loaded_db):
        from repro.control import PlanProjection

        class StubPlanner:
            def __init__(self, buckets_moved):
                self.buckets_moved = buckets_moved

            def project(self, target_nodes):
                return PlanProjection(
                    target_nodes=target_nodes,
                    feasible=True,
                    buckets_moved=self.buckets_moved,
                )

        observation = observe(loaded_db)
        policy = ThresholdPolicy(skew_threshold=1.0 + 1e-9)
        decision = policy.decide(observation, StubPlanner(buckets_moved=2))
        assert decision.action == ACTION_RETARGET
        assert decision.target_nodes == observation.num_nodes
        # Skew a rebalance cannot fix must not burn an empty rebalance.
        quiet = policy.decide(observation, StubPlanner(buckets_moved=0))
        assert quiet.action == ACTION_NONE

    def test_unfixable_skew_does_not_retarget(self, loaded_db):
        """The real planner: this layout's Algorithm 2 pass moves nothing at
        the current size, so the skew trigger stays quiet instead of looping
        no-op rebalances."""
        observation = observe(loaded_db)
        planner = WhatIfPlanner(loaded_db)
        assert planner.project(observation.num_nodes).buckets_moved == 0
        policy = ThresholdPolicy(skew_threshold=1.0 + 1e-9)
        assert policy.decide(observation, planner).action == ACTION_NONE

    def test_underutilization_removes_a_node(self, loaded_db):
        observation = observe(loaded_db)
        # A giant budget: mean utilization far below the low-water mark.
        policy = ThresholdPolicy(
            skew_threshold=10.0,
            node_capacity_bytes=observation.total_bytes * 100,
        )
        decision = policy.decide(observation, WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_REMOVE
        assert decision.target_nodes == observation.num_nodes - 1

    def test_p99_regression_uses_first_baseline(self, loaded_db):
        policy = ThresholdPolicy(skew_threshold=10.0, p99_regression_factor=2.0)
        observation = observe(loaded_db)
        assert observation.steady_write_p99 > 0
        # First evaluation arms the baseline without acting.
        assert policy.decide(observation, WhatIfPlanner(loaded_db)).action == ACTION_NONE
        assert policy._baseline_p99 == observation.steady_write_p99
        import dataclasses

        regressed = dataclasses.replace(
            observation, steady_write_p99=observation.steady_write_p99 * 3
        )
        decision = policy.decide(regressed, WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_ADD
        assert "regressed" in decision.reason
        # Acting re-baselines at the regressed level: the cumulative p99 can
        # never fall back, so the same episode must not re-fire forever.
        assert policy._baseline_p99 == regressed.steady_write_p99
        assert policy.decide(regressed, WhatIfPlanner(loaded_db)).action == ACTION_NONE

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            ThresholdPolicy(skew_threshold=0.5)
        with pytest.raises(ConfigError):
            ThresholdPolicy(capacity_low=0.9, capacity_high=0.5)
        with pytest.raises(ConfigError):
            ThresholdPolicy(step=0)


class TestCostAwarePolicy:
    def test_quiet_when_balanced(self, loaded_db):
        policy = CostAwarePolicy(balance_bar=10.0)
        assert policy.decide(observe(loaded_db), WhatIfPlanner(loaded_db)).action == ACTION_NONE

    def test_capacity_trigger_picks_cheapest_clearing_plan(self, loaded_db):
        observation = observe(loaded_db)
        tight = int(observation.max_node_bytes / 0.9)
        policy = CostAwarePolicy(balance_bar=3.0, node_capacity_bytes=tight)
        decision = policy.decide(observation, WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_ADD
        assert decision.projection is not None
        assert decision.projection.feasible
        # The chosen plan actually clears the bar it advertises.
        assert decision.projection.projected_balance_ratio <= 3.0

    def test_skew_trigger_declines_when_nothing_clears(self, loaded_db):
        observation = observe(loaded_db)
        # Bar below every achievable balance: trigger fires, nothing clears,
        # and a pure skew trigger must not act.
        policy = CostAwarePolicy(balance_bar=1.0 + 1e-9, max_nodes=observation.num_nodes)
        decision = policy.decide(observation, WhatIfPlanner(loaded_db))
        assert decision.action in (ACTION_NONE, ACTION_RETARGET)
        if decision.action == ACTION_RETARGET:
            # Only allowed when the plan genuinely clears the bar.
            assert decision.projection.projected_balance_ratio <= 1.0 + 1e-9

    def test_underutilization_scales_in_when_plan_clears(self, loaded_db):
        observation = observe(loaded_db)
        policy = CostAwarePolicy(
            balance_bar=3.0, node_capacity_bytes=observation.total_bytes * 100
        )
        decision = policy.decide(observation, WhatIfPlanner(loaded_db))
        assert decision.action == ACTION_REMOVE
        assert decision.target_nodes == observation.num_nodes - 1

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            CostAwarePolicy(balance_bar=0.9)
        with pytest.raises(ConfigError):
            CostAwarePolicy(max_step=0)


class TestScheduledPolicy:
    def test_simulated_clock_schedule(self, loaded_db):
        import dataclasses

        policy = ScheduledPolicy(interval_seconds=10.0, action=ACTION_RETARGET)
        planner = WhatIfPlanner(loaded_db)
        observation = observe(loaded_db)
        # First observation arms the schedule.
        assert policy.decide(observation, planner).action == ACTION_NONE
        early = dataclasses.replace(
            observation, simulated_seconds=observation.simulated_seconds + 5.0
        )
        assert policy.decide(early, planner).action == ACTION_NONE
        due = dataclasses.replace(
            observation, simulated_seconds=observation.simulated_seconds + 10.0
        )
        decision = policy.decide(due, planner)
        assert decision.action == ACTION_RETARGET
        assert decision.target_nodes == observation.num_nodes

    def test_missed_intervals_fire_once(self, loaded_db):
        import dataclasses

        policy = ScheduledPolicy(interval_seconds=1.0, action=ACTION_ADD)
        planner = WhatIfPlanner(loaded_db)
        observation = observe(loaded_db)
        policy.decide(observation, planner)  # arm
        far_future = dataclasses.replace(
            observation, simulated_seconds=observation.simulated_seconds + 57.0
        )
        decision = policy.decide(far_future, planner)
        assert decision.action == ACTION_ADD
        # The catch-up collapsed every missed tick into one firing.
        just_after = dataclasses.replace(
            observation, simulated_seconds=observation.simulated_seconds + 57.1
        )
        assert policy.decide(just_after, planner).action == ACTION_NONE

    def test_remove_respects_min_nodes(self, loaded_db):
        import dataclasses

        observation = observe(loaded_db)
        policy = ScheduledPolicy(
            interval_seconds=1.0, action=ACTION_REMOVE, min_nodes=observation.num_nodes
        )
        planner = WhatIfPlanner(loaded_db)
        policy.decide(observation, planner)  # arm
        due = dataclasses.replace(
            observation, simulated_seconds=observation.simulated_seconds + 2.0
        )
        assert policy.decide(due, planner).action == ACTION_NONE

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            ScheduledPolicy(interval_seconds=0)
        with pytest.raises(ConfigError):
            ScheduledPolicy(interval_seconds=1.0, action="explode")
