"""What-if planner tests: projections vs. the real rebalance machinery."""

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.control import ClusterObservation, WhatIfPlanner


def config(num_nodes=3, strategy="dynahash"):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=48 * KIB),
        strategy=strategy,
    )


def rows(count, start=0):
    return [{"k": key, "payload": "x" * 64} for key in range(start, start + count)]


@pytest.fixture
def loaded_db():
    with Database(config()) as db:
        db.create_dataset("t", primary_key="k").insert(rows(600))
        yield db


class TestProjections:
    def test_invalid_target_is_infeasible(self, loaded_db):
        projection = WhatIfPlanner(loaded_db).project(0)
        assert not projection.feasible
        assert "one node" in projection.reason

    def test_add_node_projects_movement_and_better_balance(self, loaded_db):
        observation = ClusterObservation.capture(loaded_db)
        projection = WhatIfPlanner(loaded_db).project(4)
        assert projection.feasible
        assert projection.buckets_moved > 0
        assert projection.bytes_moved > 0
        assert projection.records_moved > 0
        assert projection.estimated_seconds > 0
        assert projection.projected_balance_ratio < observation.node_balance_ratio
        assert len(projection.projected_storage_per_node) == 4

    def test_remove_node_moves_displaced_buckets(self, loaded_db):
        projection = WhatIfPlanner(loaded_db).project(2)
        assert projection.feasible
        assert projection.buckets_moved > 0
        # Everything on the removed node has to go somewhere.
        removed_bytes = dict(ClusterObservation.capture(loaded_db).storage_per_node)["nc2"]
        assert projection.bytes_moved >= removed_bytes * 0.5

    def test_projection_does_not_mutate_the_cluster(self, loaded_db):
        before = ClusterObservation.capture(loaded_db)
        planner = WhatIfPlanner(loaded_db)
        planner.candidates([2, 3, 4, 5])
        after = ClusterObservation.capture(loaded_db)
        assert before == after
        assert loaded_db.num_nodes == 3

    def test_projection_is_deterministic(self, loaded_db):
        planner = WhatIfPlanner(loaded_db)
        assert planner.project(4) == planner.project(4)

    def test_candidates_deduplicate_and_sort(self, loaded_db):
        projections = WhatIfPlanner(loaded_db).candidates([4, 2, 4, 2])
        assert [p.target_nodes for p in projections] == [2, 4]

    def test_projected_direction_matches_real_rebalance(self):
        """The projection's balance forecast points the same way the real
        rebalance lands: adding a node reduces the per-node peak."""
        with Database(config()) as db:
            db.create_dataset("t", primary_key="k").insert(rows(600))
            projection = WhatIfPlanner(db).project(4)
            before_peak = ClusterObservation.capture(db).max_node_bytes
            db.rebalance(target_nodes=4)
            after = ClusterObservation.capture(db)
            assert after.max_node_bytes < before_peak
            # Forecast and outcome agree on the direction of the change.
            assert projection.projected_max_node_bytes < before_peak

    def test_modulo_routing_projects_a_full_rewrite(self):
        with Database(config(strategy="hashing")) as db:
            db.create_dataset("t", primary_key="k").insert(rows(400))
            observation = ClusterObservation.capture(db)
            projection = WhatIfPlanner(db).project(4)
            assert projection.feasible
            # The Hashing baseline rebuilds the dataset: (nearly) all bytes move.
            assert projection.bytes_moved == observation.total_bytes
            assert projection.records_moved == observation.total_records

    def test_empty_cluster_projection(self):
        with Database(config()) as db:
            projection = WhatIfPlanner(db).project(4)
            assert projection.feasible
            assert projection.buckets_moved == 0
            assert projection.projected_balance_ratio == 1.0
