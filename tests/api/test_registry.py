"""Strategy registry: name resolution, aliases, errors, custom registration."""

import pytest

from repro.api import (
    ConfigError,
    available_strategies,
    register_strategy,
    resolve_strategy,
    strategy_by_name,
)
from repro.rebalance import (
    ConsistentHashStrategy,
    DynaHashStrategy,
    GlobalHashingStrategy,
    RebalancingStrategy,
    StaticHashStrategy,
)


class TestStrategyByName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("dynahash", DynaHashStrategy),
            ("DynaHash", DynaHashStrategy),
            ("dyna", DynaHashStrategy),
            ("statichash", StaticHashStrategy),
            ("static", StaticHashStrategy),
            ("hashing", GlobalHashingStrategy),
            ("global", GlobalHashingStrategy),
            ("globalhashing", GlobalHashingStrategy),
            ("consistent", ConsistentHashStrategy),
            ("consistenthash", ConsistentHashStrategy),
        ],
    )
    def test_known_names_and_aliases(self, name, expected):
        assert isinstance(strategy_by_name(name), expected)

    def test_factory_kwargs_forwarded(self):
        strategy = strategy_by_name("static", total_buckets=33)
        assert strategy.total_buckets == 33

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            strategy_by_name("raft")  # reprolint: allow[reg-unknown-strategy] -- asserts the unknown-name error path
        message = str(excinfo.value)
        assert "raft" in message
        for choice in ("consistenthash", "dynahash", "hashing", "statichash"):
            assert choice in message

    def test_available_strategies_sorted(self):
        names = available_strategies()
        assert names == sorted(names)
        assert {"dynahash", "statichash", "hashing", "consistenthash"} <= set(names)

    def test_exported_from_repro_top_level(self):
        import repro

        assert repro.strategy_by_name is strategy_by_name
        assert isinstance(repro.strategy_by_name("dynahash"), DynaHashStrategy)


class TestResolveStrategy:
    def test_none_passes_through(self):
        assert resolve_strategy(None) is None

    def test_name_resolves(self):
        assert isinstance(resolve_strategy("dynahash"), DynaHashStrategy)

    def test_instance_passes_through(self):
        strategy = StaticHashStrategy()
        assert resolve_strategy(strategy) is strategy

    def test_options_without_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_strategy(None, max_bucket_bytes=1)
        with pytest.raises(ConfigError):
            resolve_strategy(StaticHashStrategy(), total_buckets=3)

    def test_non_strategy_object_rejected(self):
        with pytest.raises(ConfigError):
            resolve_strategy(object())


class TestCustomRegistration:
    def test_register_and_resolve_custom_strategy(self):
        class NoopStrategy(RebalancingStrategy):
            name = "Noop"

        register_strategy("noop-test", NoopStrategy, aliases=("noop",))
        try:
            assert isinstance(strategy_by_name("noop"), NoopStrategy)
            assert "noop-test" in available_strategies()
        finally:
            from repro.rebalance.strategies import _STRATEGY_ALIASES, _STRATEGY_FACTORIES

            _STRATEGY_FACTORIES.pop("noop-test", None)
            _STRATEGY_ALIASES.pop("noop-test", None)
            _STRATEGY_ALIASES.pop("noop", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            register_strategy("", RebalancingStrategy)
