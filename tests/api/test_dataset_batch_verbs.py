"""Tests for the batched dataset verbs ``get_many`` / ``upsert_each`` (PR 4).

Both verbs promise *observational equivalence* with their looped
counterparts: the same results, the same per-op simulated latencies, and the
same registry state — the only difference is that samples travel as one
``op.batch`` event.
"""

from repro.api import ClusterConfig, Database


def open_loaded(rows=300):
    db = Database(
        ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash")
    )
    dataset = db.create_dataset("t", primary_key="k")
    dataset.insert([{"k": i, "v": f"value-{i}"} for i in range(rows)])
    return db, dataset


class TestGetMany:
    def test_results_match_looped_get(self):
        db_a, ds_a = open_loaded()
        looped = [ds_a.get(key) for key in range(0, 300, 3)]
        db_b, ds_b = open_loaded()
        batched = ds_b.get_many(list(range(0, 300, 3)))
        assert batched == looped
        db_a.close()
        db_b.close()

    def test_registry_state_matches_looped_get(self):
        keys = [1, 5, 250, 9999, 42, 42]  # includes a miss and a repeat
        db_a, ds_a = open_loaded()
        for key in keys:
            ds_a.get(key)
        db_b, ds_b = open_loaded()
        ds_b.get_many(keys)
        assert db_b.metrics.snapshot() == db_a.metrics.snapshot()
        db_a.close()
        db_b.close()

    def test_empty_batch_emits_nothing(self):
        db, dataset = open_loaded(10)
        before = db.metrics.snapshot()
        assert dataset.get_many([]) == []
        assert db.metrics.snapshot() == before
        db.close()


class TestUpsertEach:
    def test_storage_and_registry_match_looped_upsert(self):
        rows = [{"k": i, "v": f"new-{i}"} for i in range(40, 80)]
        db_a, ds_a = open_loaded()
        for row in rows:
            ds_a.upsert([row], batch_size=1)
        db_b, ds_b = open_loaded()
        reports = ds_b.upsert_each(rows)
        assert db_b.metrics.snapshot() == db_a.metrics.snapshot()
        assert len(reports) == len(rows)
        assert all(report.records == 1 for report in reports)
        # The data landed: spot-check a rewritten row.
        assert ds_b.get(41)["v"] == "new-41"
        db_a.close()
        db_b.close()

    def test_empty_batch_returns_no_reports(self):
        db, dataset = open_loaded(10)
        before = db.metrics.snapshot()
        assert dataset.upsert_each([]) == []
        assert db.metrics.snapshot() == before
        db.close()


class TestEmitSkipsWithoutSubscribers:
    def test_detached_registry_skips_op_payloads(self):
        db, dataset = open_loaded(20)
        db.metrics.detach()
        seen = []
        # No op.* subscriber is left; the emit fast path skips entirely, so
        # the next subscriber's first event keeps a contiguous seq stream.
        dataset.get(1)
        db.on("op.*", seen.append)
        dataset.get(2)
        assert len(seen) == 1
        db.close()

    def test_get_results_unaffected_by_skipped_emission(self):
        db, dataset = open_loaded(20)
        db.metrics.detach()
        assert dataset.get(3) is not None
        assert dataset.get(9999) is None
        db.close()
