"""Instrumented verbs: op.* events, db.metrics wiring, phase tagging."""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    MetricsRegistry,
    PHASE_REBALANCE,
    PHASE_STEADY,
)


def config():
    return ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
        strategy="dynahash",
    )


def order_rows(count, start=0):
    return [
        {"o_orderkey": key, "o_custkey": key % 100, "o_totalprice": float(key)}
        for key in range(start, start + count)
    ]


@pytest.fixture()
def db():
    with Database(config()) as database:
        yield database


class TestOpEvents:
    def test_every_verb_emits_its_op_event(self, db):
        events = []
        db.on("op.*", events.append)
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(50))
        orders.upsert(order_rows(5))
        orders.get(3)
        list(orders.scan(low=0, high=10))
        orders.delete([3, 4])
        orders.query().aggregate(n=("count", None)).execute()
        names = [event.name for event in events]
        assert names == [
            "op.insert",
            "op.update",
            "op.read",
            "op.scan",
            "op.delete",
            "op.query",
        ]
        for event in events:
            assert event["latency_seconds"] > 0

    def test_insert_event_carries_batch_records(self, db):
        events = []
        db.on("op.insert", events.append)
        db.create_dataset("orders", primary_key="o_orderkey").insert(order_rows(25))
        assert events[0]["records"] == 25
        assert events[0]["dataset"] == "orders"

    def test_read_event_reports_found(self, db):
        events = []
        db.on("op.read", events.append)
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(10))
        orders.get(5)
        orders.get(10_000)
        assert events[0]["found"] is True
        assert events[1]["found"] is False

    def test_abandoned_scan_emits_nothing(self, db):
        events = []
        db.on("op.scan", events.append)
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(50))
        iterator = orders.scan()
        next(iterator)
        del iterator
        assert events == []
        list(orders.scan())
        assert len(events) == 1

    def test_estimate_emits_op_query(self, db):
        events = []
        db.on("op.query", events.append)
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(20))
        orders.query("probe").filter(selectivity=0.5).estimate()
        assert len(events) == 1
        assert events[0]["query"] == "probe"


class TestDatabaseMetrics:
    def test_metrics_handle_records_traffic(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(30))
        orders.get(1)
        registry = db.metrics
        assert isinstance(registry, MetricsRegistry)
        assert registry.counter("ops.total").value == 2
        assert registry.counter("records.insert").value == 30
        assert registry.counter("datasets.created").value == 1
        assert registry.histogram("read", PHASE_STEADY).count == 1

    def test_rebalance_flips_the_metrics_phase_and_is_counted(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(200))
        assert not db.metrics.in_rebalance
        db.rebalance(add=1, concurrent_rows={"orders": order_rows(20, start=500)})
        assert not db.metrics.in_rebalance  # back to steady after commit
        assert db.metrics.counter("rebalance.completed").value == 1
        # The concurrent writes were sampled while the rebalance was in flight.
        assert db.metrics.histogram("update", PHASE_REBALANCE).count == 20
        assert db.metrics.gauge("cluster.nodes").value == 3

    def test_concurrent_write_latency_exceeds_steady_per_event(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(200))
        orders.upsert(order_rows(1))  # one steady single-row write sample
        db.rebalance(add=1, concurrent_rows={"orders": order_rows(10, start=500)})
        steady = db.metrics.histogram("update", PHASE_STEADY)
        rehash = db.metrics.histogram("update", PHASE_REBALANCE)
        assert rehash.count == 10
        # The replication round trip makes mid-rehash writes slower.
        assert rehash.percentile(0.99) >= steady.percentile(0.99)

    def test_metrics_survive_close_but_stop_recording(self):
        database = Database(config())
        orders = database.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(10))
        database.close()
        assert database.metrics.counter("records.insert").value == 10
        database.cluster.events.emit("op.read", latency_seconds=1.0)
        assert database.metrics.counter("ops.read").value == 0

    def test_attach_wraps_cluster_with_metrics(self):
        from repro.cluster import SimulatedCluster

        cluster = SimulatedCluster(config(), strategy="dynahash")
        database = Database.attach(cluster)
        orders = database.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(5))
        assert database.metrics.counter("records.insert").value == 5
