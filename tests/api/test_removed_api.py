"""The PR 1 deprecation cycle is finished: the legacy shims are *gone*.

``SimulatedCluster.ingest`` / ``.lookup`` and the bench helper
``build_loaded_cluster`` spent two releases emitting ``DeprecationWarning``;
this module pins down their removal — the attributes no longer exist, the
canonical replacements cover the old behaviour, and none of the supported
paths raise deprecation warnings anymore.
"""

import warnings

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.cluster import SimulatedCluster


def config():
    return ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )


def order_rows(count):
    return [
        {"o_orderkey": key, "o_custkey": key % 100, "o_totalprice": float(key)}
        for key in range(count)
    ]


class TestShimsRemoved:
    def test_cluster_ingest_shim_is_gone(self):
        cluster = SimulatedCluster(config(), strategy="dynahash")
        assert not hasattr(cluster, "ingest")

    def test_cluster_lookup_shim_is_gone(self):
        cluster = SimulatedCluster(config(), strategy="dynahash")
        assert not hasattr(cluster, "lookup")

    def test_build_loaded_cluster_is_gone(self):
        import repro.bench

        assert not hasattr(repro.bench, "build_loaded_cluster")
        with pytest.raises(ImportError):
            from repro.bench import build_loaded_cluster  # noqa: F401

    def test_internal_feed_path_replaces_ingest(self):
        """``feed(...).ingest(rows)`` is the canonical low-level write path."""
        cluster = SimulatedCluster(config(), strategy="dynahash")
        cluster.create_dataset("orders", primary_key="o_orderkey")
        report = cluster.feed("orders").ingest(order_rows(100))
        assert report.records == 100
        assert cluster.point_lookup("orders", 3)["o_custkey"] == 3

    def test_api_handles_match_the_internal_path(self):
        rows = order_rows(500)

        low_level = SimulatedCluster(config(), strategy="dynahash")
        low_level.create_dataset("orders", primary_key="o_orderkey")
        low_report = low_level.feed("orders").ingest(rows)

        with Database(config(), strategy="dynahash") as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            api_report = orders.insert(rows)

            assert api_report.records == low_report.records
            assert api_report.bytes_ingested == low_report.bytes_ingested
            assert api_report.per_partition_records == low_report.per_partition_records
            assert api_report.simulated_seconds == pytest.approx(
                low_report.simulated_seconds
            )
            for key in (0, 123, 499, 10_000):
                assert low_level.point_lookup("orders", key) == orders.get(key)


class TestNoDeprecationWarnings:
    def test_api_verbs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                orders = db.create_dataset("orders", primary_key="o_orderkey")
                orders.insert(order_rows(50))
                assert orders.get(7) is not None
                orders.delete([7])
                assert orders.count() == 49

    def test_tpch_load_path_does_not_warn(self):
        from repro.api import load_tpch

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                load = load_tpch(db, scale_factor=0.0002, tables=("region", "nation"))
                assert load.total_rows > 0

    def test_traffic_engine_paths_do_not_warn(self):
        from repro.api import run_workload

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                report = run_workload(db, initial_records=40, default_ops=30)
                assert report.total_ops == 30

    def test_bench_builder_does_not_warn(self):
        from repro.bench import SMOKE, build_loaded_database

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db, _workload, load = build_loaded_database(
                SMOKE, num_nodes=2, strategy_name="DynaHash", tables=("region",)
            )
            assert load.total_rows > 0
            assert db.cluster.record_count("region") == load.total_rows

    def test_autopilot_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                db.create_dataset("orders", primary_key="o_orderkey")
                pilot = db.autopilot(policy="threshold", check_every_ops=5)
                orders = db.dataset("orders")
                orders.insert(order_rows(30))
                for key in range(20):
                    orders.get(key)
                pilot.stop()
