"""Fluent query builder: plan-mode results and spec-mode parity."""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    KIB,
    LSMConfig,
    QueryError,
    QuerySpec,
    SecondaryIndexSpec,
    TableAccess,
)
from repro.query.executor import (
    ACCESS_PRIMARY_KEY_LOOKUPS,
    ACCESS_SECONDARY_INDEX,
)


def order_rows(count):
    return [
        {
            "o_orderkey": key,
            "o_custkey": key % 10,
            "o_orderdate": f"199{5 + key % 3}-{(key % 12) + 1:02d}-01",
            "o_totalprice": float(key),
        }
        for key in range(count)
    ]


@pytest.fixture
def db():
    config = ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )
    with Database(config, strategy="dynahash") as database:
        orders = database.create_dataset(
            "orders",
            primary_key="o_orderkey",
            secondary_indexes=[
                SecondaryIndexSpec(
                    "idx_date", ("o_orderdate",), included_fields=("o_custkey",)
                )
            ],
        )
        orders.insert(order_rows(1000))
        yield database


class TestPlanMode:
    def test_filter_matches_manual_evaluation(self, db):
        result = (
            db["orders"].query().filter(lambda row: row["o_totalprice"] >= 990.0).execute()
        )
        assert sorted(row["o_orderkey"] for row in result) == list(range(990, 1000))
        assert result.report.records_scanned == 1000

    def test_group_by_aggregate_matches_manual(self, db):
        result = (
            db["orders"].query()
            .group_by("o_custkey")
            .aggregate(total=("sum", "o_totalprice"), n=("count", None))
            .order_by("o_custkey")
            .execute()
        )
        rows = list(result)
        assert len(rows) == 10
        # Each customer owns keys c, c+10, ..., c+990: 100 orders each.
        for row in rows:
            expected = sum(float(k) for k in range(row["o_custkey"], 1000, 10))
            assert row["n"] == 100
            assert row["total"] == pytest.approx(expected)

    def test_order_by_and_limit(self, db):
        result = (
            db["orders"].query()
            .order_by("o_totalprice", descending=True)
            .limit(3)
            .execute()
        )
        assert [row["o_orderkey"] for row in result] == [999, 998, 997]

    def test_project_with_computed_columns(self, db):
        result = (
            db["orders"].query()
            .filter(lambda row: row["o_orderkey"] < 5)
            .project("o_orderkey", double=lambda row: row["o_totalprice"] * 2)
            .order_by("o_orderkey")
            .execute()
        )
        assert list(result)[2] == {"o_orderkey": 2, "double": 4.0}

    def test_scalar_aggregate_and_scalar_accessor(self, db):
        result = (
            db["orders"].query().aggregate(revenue=("sum", "o_totalprice")).execute()
        )
        assert result.scalar("revenue") == pytest.approx(sum(range(1000)))
        assert result.scalar() == pytest.approx(sum(range(1000)))

    def test_count_shortcut(self, db):
        assert db["orders"].query().count() == 1000
        assert (
            db["orders"].query().filter(lambda row: row["o_custkey"] == 3).count() == 100
        )

    def test_via_index_scans_covered_fields(self, db):
        result = (
            db["orders"].query()
            .via_index("idx_date")
            .group_by("o_custkey")
            .aggregate(n=("count", None))
            .execute()
        )
        assert sum(row["n"] for row in result) == 1000

    def test_group_by_without_aggregate_raises(self, db):
        builder = db["orders"].query().group_by("o_custkey")
        with pytest.raises(QueryError):
            builder.execute()
        with pytest.raises(QueryError):
            builder.count()
        with pytest.raises(QueryError):
            builder.to_spec()
        with pytest.raises(QueryError):
            builder.estimate()

    def test_count_after_group_counts_groups(self, db):
        grouped = (
            db["orders"].query().group_by("o_custkey").aggregate(n=("count", None))
        )
        assert grouped.count() == 10

    def test_unknown_column_raises_library_error(self, db):
        from repro.common.errors import UnknownColumnError

        with pytest.raises(UnknownColumnError):
            list(
                db["orders"].query().group_by("missing").aggregate(n=("count", None)).execute()
            )
        with pytest.raises(UnknownColumnError):
            list(db["orders"].query().order_by("missing").execute())

    def test_results_identical_across_rebalance(self, db):
        query = lambda: (
            db["orders"].query()
            .group_by("o_custkey")
            .aggregate(total=("sum", "o_totalprice"))
            .order_by("o_custkey")
            .execute()
        )
        before = [dict(row) for row in query()]
        db.rebalance(remove=1)
        after = [dict(row) for row in query()]
        assert before == after


class TestSpecParity:
    def test_to_spec_matches_hand_built_spec(self, db):
        built = (
            db["orders"].query("parity")
            .filter(selectivity=0.25)
            .scans(2)
            .depth(5)
            .ordered()
            .to_spec()
        )
        hand = QuerySpec(
            name="parity",
            accesses=(
                TableAccess(
                    dataset="orders",
                    scan_count=2,
                    selectivity=0.25,
                ),
            ),
            operator_depth=5,
            requires_primary_key_order=True,
        )
        assert built == hand

    def test_estimate_equals_hand_built_spec_execution(self, db):
        report_built = (
            db["orders"].query("parity").filter(selectivity=0.5).depth(4).estimate()
        )
        report_hand = db.execute_spec(
            QuerySpec(
                name="parity",
                accesses=(TableAccess(dataset="orders", selectivity=0.5),),
                operator_depth=4,
            )
        )
        assert report_built.simulated_seconds == pytest.approx(
            report_hand.simulated_seconds
        )
        assert report_built.rows_returned == report_hand.rows_returned
        assert report_built.bytes_scanned == report_hand.bytes_scanned

    def test_selectivities_multiply(self, db):
        spec = (
            db["orders"].query().filter(selectivity=0.5).filter(selectivity=0.5).to_spec()
        )
        assert spec.accesses[0].selectivity == pytest.approx(0.25)

    def test_via_index_spec(self, db):
        spec = db["orders"].query().via_index("idx_date").to_spec("by_index")
        assert spec.accesses[0].access == ACCESS_SECONDARY_INDEX
        assert spec.accesses[0].index_name == "idx_date"

    def test_by_keys_spec_and_execute_guard(self, db):
        builder = db["orders"].query().by_keys(64)
        spec = builder.to_spec()
        assert spec.accesses[0].access == ACCESS_PRIMARY_KEY_LOOKUPS
        assert spec.accesses[0].lookups == 64
        assert builder.estimate().simulated_seconds > 0
        with pytest.raises(QueryError):
            builder.execute()

    def test_unknown_index_raises(self, db):
        with pytest.raises(Exception):
            db["orders"].query().via_index("nope")

    def test_filter_needs_an_argument(self, db):
        with pytest.raises(QueryError):
            db["orders"].query().filter()
