"""Legacy SimulatedCluster shims: deprecation warnings + identical results."""

import warnings

import pytest

from repro.api import BucketingConfig, ClusterConfig, Database, KIB, LSMConfig
from repro.cluster import SimulatedCluster


def config():
    return ClusterConfig(
        num_nodes=2,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )


def order_rows(count):
    return [
        {"o_orderkey": key, "o_custkey": key % 100, "o_totalprice": float(key)}
        for key in range(count)
    ]


class TestDeprecatedShims:
    def test_ingest_warns(self):
        cluster = SimulatedCluster(config(), strategy="dynahash")
        cluster.create_dataset("orders", primary_key="o_orderkey")
        with pytest.warns(DeprecationWarning, match="Dataset.insert"):
            cluster.ingest("orders", order_rows(10))

    def test_lookup_warns(self):
        cluster = SimulatedCluster(config(), strategy="dynahash")
        cluster.create_dataset("orders", primary_key="o_orderkey")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster.ingest("orders", order_rows(10))
        with pytest.warns(DeprecationWarning, match="Dataset.get"):
            assert cluster.lookup("orders", 3)["o_custkey"] == 3

    def test_old_and_new_paths_return_identical_results(self):
        rows = order_rows(500)

        old = SimulatedCluster(config(), strategy="dynahash")
        old.create_dataset("orders", primary_key="o_orderkey")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_report = old.ingest("orders", rows)

        with Database(config(), strategy="dynahash") as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            new_report = orders.insert(rows)

            assert new_report.records == old_report.records
            assert new_report.bytes_ingested == old_report.bytes_ingested
            assert new_report.per_partition_records == old_report.per_partition_records
            assert new_report.simulated_seconds == pytest.approx(
                old_report.simulated_seconds
            )

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                for key in (0, 123, 499, 10_000):
                    assert old.lookup("orders", key) == orders.get(key)

    def test_non_deprecated_internals_do_not_warn(self):
        """The feed path and the API handles must not trip the shims."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                orders = db.create_dataset("orders", primary_key="o_orderkey")
                orders.insert(order_rows(50))
                assert orders.get(7) is not None
                orders.delete([7])
                assert orders.count() == 49

    def test_tpch_load_path_does_not_warn(self):
        from repro.api import load_tpch

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                load = load_tpch(db, scale_factor=0.0002, tables=("region", "nation"))
                assert load.total_rows > 0

    def test_build_loaded_cluster_warns_and_matches_the_database_variant(self):
        """The legacy bench helper is a duplicate of build_loaded_database."""
        from repro.bench import SMOKE, build_loaded_cluster, build_loaded_database

        with pytest.warns(DeprecationWarning, match="build_loaded_database"):
            cluster, _workload, load = build_loaded_cluster(
                SMOKE, num_nodes=2, strategy_name="DynaHash", tables=("region",)
            )
        db, _workload, db_load = build_loaded_database(
            SMOKE, num_nodes=2, strategy_name="DynaHash", tables=("region",)
        )
        assert cluster.record_count("region") == db.cluster.record_count("region")
        assert load.total_rows == db_load.total_rows

    def test_traffic_engine_paths_do_not_warn(self):
        """The new workload driver never trips the deprecated shims."""
        from repro.api import run_workload

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(config(), strategy="dynahash") as db:
                report = run_workload(db, initial_records=40, default_ops=30)
                assert report.total_ops == 30
