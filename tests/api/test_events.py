"""Event bus unit behaviour and lifecycle-event ordering across operations."""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    Database,
    EventBus,
    KIB,
    LSMConfig,
)


def order_rows(count):
    return [
        {"o_orderkey": key, "o_custkey": key % 100, "o_totalprice": float(key)}
        for key in range(count)
    ]


def open_db(num_nodes=3):
    config = ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
    )
    return Database(config, strategy="dynahash")


class TestEventBus:
    def test_exact_subscription(self):
        bus = EventBus()
        seen = []
        bus.on("a.b", lambda event: seen.append(event.name))
        bus.emit("a.b", x=1)
        bus.emit("a.c")
        assert seen == ["a.b"]

    def test_wildcard_patterns(self):
        bus = EventBus()
        seen = []
        bus.on("rebalance.*", lambda event: seen.append(event.name))
        bus.on("*", lambda event: seen.append("any:" + event.name))
        bus.emit("rebalance.start")
        bus.emit("ingest.start")
        assert seen == ["rebalance.start", "any:rebalance.start", "any:ingest.start"]

    def test_payload_access(self):
        bus = EventBus()
        captured = []
        bus.on("x", captured.append)
        bus.emit("x", value=41)
        event = captured[0]
        assert event["value"] == 41
        assert event.get("missing", "d") == "d"

    def test_seq_is_monotonic(self):
        bus = EventBus()
        seqs = []
        bus.on("*", lambda event: seqs.append(event.seq))
        for _ in range(4):
            bus.emit("tick")
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 4

    def test_cancel_unsubscribes(self):
        bus = EventBus()
        seen = []
        subscription = bus.on("*", lambda event: seen.append(event.name))
        bus.emit("one")
        subscription.cancel()
        subscription.cancel()  # idempotent
        bus.emit("two")
        assert seen == ["one"]
        assert bus.subscriber_count == 0

    def test_once_fires_a_single_time(self):
        bus = EventBus()
        seen = []
        bus.once("tick", lambda event: seen.append(event.seq))
        bus.emit("tick")
        bus.emit("tick")
        assert len(seen) == 1


class TestLifecycleEvents:
    def test_dataset_and_ingest_events(self):
        with open_db() as db:
            names = []
            db.on("*", lambda event: names.append(event.name))
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(50))
            orders.delete([1, 2])
            db.drop_dataset("orders")
        assert names[0] == "dataset.create"
        assert "ingest.start" in names
        assert "ingest.complete" in names
        assert names.index("ingest.start") < names.index("ingest.complete")
        assert "dataset.delete" in names
        assert names[-2:] == ["dataset.drop", "database.close"]

    def test_ingest_complete_carries_report(self):
        with open_db() as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            reports = []
            db.on("ingest.complete", lambda event: reports.append(event["report"]))
            direct = orders.insert(order_rows(25))
            assert reports[0] is direct

    def test_rebalance_event_order(self):
        with open_db() as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(800))
            names = []
            db.on("rebalance.*", lambda event: names.append(event.name))
            report = db.rebalance(remove=1)
            assert report.committed

        assert names[0] == "rebalance.start"
        assert names[-1] == "rebalance.complete"
        inner = names[1:-1]
        assert inner[0] == "rebalance.dataset.start"
        assert inner[-1] == "rebalance.dataset.complete"
        phases = [name for name in inner if name == "rebalance.phase"]
        assert len(phases) == 3
        # The commit point comes after data movement and before the operation
        # completes.
        assert inner.index("rebalance.commit") > inner.index("rebalance.dataset.start")
        assert inner.index("rebalance.commit") < inner.index("rebalance.dataset.complete")

    def test_rebalance_phase_payloads(self):
        with open_db() as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(400))
            phases = []
            db.on("rebalance.phase", lambda event: phases.append(event["phase"]))
            db.rebalance(add=1)
        assert phases == ["initialization", "data_movement", "finalization"]

    def test_node_events_on_resize(self):
        with open_db() as db:
            db.create_dataset("orders", primary_key="o_orderkey")
            db["orders"].insert(order_rows(300))
            names = []
            db.on("node.*", lambda event: names.append(event.name))
            db.rebalance(add=1)
            db.rebalance(remove=1)
        assert names == ["node.provision", "node.decommission"]

    def test_rebalance_error_event_on_injected_fault(self):
        from repro.api import FaultInjected

        with open_db() as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(300))
            names = []
            db.on("rebalance.*", lambda event: names.append(event.name))
            with pytest.raises(FaultInjected):
                db.rebalance(remove=1, fault_sites=["nc_fail_before_prepare"])
            assert names[-1] == "rebalance.error"
            db.recover()

    def test_rebalance_complete_carries_report(self):
        with open_db() as db:
            orders = db.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(200))
            payloads = []
            db.on("rebalance.complete", lambda event: payloads.append(event.payload))
            report = db.rebalance(add=1)
        assert payloads[0]["report"] is report
        assert payloads[0]["committed"] is True
        assert payloads[0]["new_nodes"] == 4
