"""Database/Dataset façade: session lifecycle and dataset-handle verbs."""

import pytest

from repro.api import (
    BucketingConfig,
    ClusterConfig,
    ClusterError,
    ConfigError,
    Database,
    KIB,
    LSMConfig,
    SecondaryIndexSpec,
    UnknownDatasetError,
)


def small_config(**kwargs):
    return ClusterConfig(
        num_nodes=kwargs.pop("num_nodes", 2),
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=32 * KIB),
        bucketing=BucketingConfig(max_bucket_bytes=64 * KIB),
        **kwargs,
    )


def order_rows(count, start=0):
    return [
        {
            "o_orderkey": key,
            "o_custkey": key % 100,
            "o_orderdate": f"199{5 + key % 3}-{(key % 12) + 1:02d}-01",
            "o_totalprice": float(key % 500),
        }
        for key in range(start, start + count)
    ]


@pytest.fixture
def db():
    with Database(small_config(), strategy="dynahash") as database:
        yield database


class TestSessionLifecycle:
    def test_context_manager_closes(self):
        with Database(small_config(), strategy="dynahash") as database:
            assert not database.closed
        assert database.closed

    def test_closed_session_rejects_verbs(self):
        database = Database(small_config(), strategy="dynahash")
        database.close()
        with pytest.raises(ClusterError):
            database.create_dataset("orders", primary_key="o_orderkey")
        with pytest.raises(ClusterError):
            database.dataset_names()
        with pytest.raises(ClusterError):
            database.rebalance(add=1)

    def test_escaped_dataset_handle_rejects_verbs_after_close(self):
        database = Database(small_config(), strategy="dynahash")
        orders = database.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(10))
        database.close()
        with pytest.raises(ClusterError):
            orders.insert(order_rows(1, start=10))
        with pytest.raises(ClusterError):
            orders.get(1)
        with pytest.raises(ClusterError):
            list(orders.scan())
        with pytest.raises(ClusterError):
            orders.delete([1])
        with pytest.raises(ClusterError):
            orders.count()
        with pytest.raises(ClusterError):
            orders.query().execute()
        with pytest.raises(ClusterError):
            orders.query().estimate()
        # `exists` is a non-throwing probe: it answers even on a closed session.
        assert orders.exists

    def test_close_is_idempotent_and_emits_once(self):
        database = Database(small_config(), strategy="dynahash")
        events = []
        database.on("database.close", lambda event: events.append(event.name))
        database.close()
        database.close()
        assert events == ["database.close"]

    def test_attach_wraps_existing_cluster(self):
        from repro.cluster import SimulatedCluster

        cluster = SimulatedCluster(small_config(), strategy="dynahash")
        cluster.create_dataset("orders", primary_key="o_orderkey")
        database = Database.attach(cluster)
        assert database.dataset_names() == ["orders"]
        assert database.cluster is cluster

    def test_open_alias(self):
        database = Database.open(small_config(), strategy="static")
        assert database.num_nodes == 2

    def test_describe_snapshot(self, db):
        db.create_dataset("orders", primary_key="o_orderkey")
        snapshot = db.describe()
        assert snapshot["nodes"] == 2
        assert snapshot["strategy"] == "DynaHash"
        assert snapshot["node_ids"] == ["nc0", "nc1"]
        assert "orders" in snapshot["datasets"]


class TestDatasetHandle:
    def test_insert_get_roundtrip(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        report = orders.insert(order_rows(500))
        assert report.records == 500
        assert orders.count() == 500
        assert len(orders) == 500
        assert orders.get(123)["o_custkey"] == 23
        assert orders.get(10_000) is None
        assert 123 in orders
        assert 10_000 not in orders

    def test_upsert_replaces_by_key(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(100))
        orders.upsert([{**orders.get(42), "o_totalprice": 999.5}])
        assert orders.get(42)["o_totalprice"] == 999.5
        assert orders.count() == 100

    def test_delete_tombstones_and_reports(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(100))
        report = orders.delete([0, 1, 2, 12345])
        assert report.records_deleted == 3
        assert report.keys_requested == 4
        assert report.keys_missing == 1
        assert report.simulated_seconds > 0
        assert orders.get(0) is None
        assert orders.count() == 97

    def test_delete_single_key(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(10))
        report = orders.delete(5)
        assert report.records_deleted == 1
        assert orders.get(5) is None

    def test_scan_yields_all_records(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(200))
        scanned = list(orders.scan())
        assert len(scanned) == 200
        assert {row["o_orderkey"] for row in scanned} == set(range(200))

    def test_secondary_index_in_spec(self, db):
        orders = db.create_dataset(
            "orders",
            primary_key="o_orderkey",
            secondary_indexes=[
                SecondaryIndexSpec("idx_date", ("o_orderdate",), included_fields=("o_custkey",))
            ],
        )
        assert orders.spec.index_names() == ["idx_date"]
        assert orders.describe()["secondary_indexes"] == ["idx_date"]

    def test_handle_survives_rebalance(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(1000))
        db.rebalance(add=1)
        assert db.num_nodes == 3
        assert orders.count() == 1000
        assert orders.get(77)["o_custkey"] == 77

    def test_unknown_dataset_raises(self, db):
        with pytest.raises(UnknownDatasetError):
            db.dataset("nope")

    def test_getitem_and_drop(self, db):
        db.create_dataset("orders", primary_key="o_orderkey")
        handle = db["orders"]
        assert handle.exists
        handle.drop()
        assert db.dataset_names() == []
        assert not handle.exists


class TestRebalanceVerbs:
    def test_exactly_one_size_argument(self, db):
        with pytest.raises(ConfigError):
            db.rebalance()
        with pytest.raises(ConfigError):
            db.rebalance(target_nodes=3, add=1)

    def test_add_remove_roundtrip_preserves_data(self, db):
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(order_rows(800))
        before = orders.count()
        add_report = db.add_nodes(1)
        assert add_report.committed
        remove_report = db.remove_nodes(1)
        assert remove_report.committed
        assert orders.count() == before

    def test_fault_injection_rejected_by_hashing_baseline(self):
        with Database(small_config(num_nodes=3), strategy="hashing") as database:
            orders = database.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(100))
            with pytest.raises(ConfigError, match="fault injection"):
                database.rebalance(remove=1, fault_sites=["cc_fail_before_commit"])

    def test_fault_injection_and_recover(self):
        from repro.api import FaultInjected

        with Database(small_config(num_nodes=3), strategy="dynahash") as database:
            orders = database.create_dataset("orders", primary_key="o_orderkey")
            orders.insert(order_rows(600))
            with pytest.raises(FaultInjected):
                database.rebalance(remove=1, fault_sites=["cc_fail_before_commit"])
            outcomes = database.recover()
            assert [outcome.action for outcome in outcomes] == ["aborted"]
            assert orders.count() == 600


class TestConfigStrategyWiring:
    def test_config_strategy_name_is_resolved(self):
        from repro.rebalance import StaticHashStrategy

        with Database(small_config(strategy="static")) as database:
            assert isinstance(database.strategy, StaticHashStrategy)

    def test_explicit_strategy_overrides_config(self):
        from repro.rebalance import DynaHashStrategy

        with Database(small_config(strategy="static"), strategy="dynahash") as database:
            assert isinstance(database.strategy, DynaHashStrategy)

    def test_strategy_options_forwarded(self):
        with Database(
            small_config(), strategy="dynahash", strategy_options={"max_bucket_bytes": 1234}
        ) as database:
            assert database.strategy.max_bucket_bytes == 1234

    def test_strategy_options_combine_with_config_named_strategy(self):
        with Database(
            small_config(strategy="static"), strategy_options={"total_buckets": 64}
        ) as database:
            assert database.strategy.total_buckets == 64

    def test_simulated_cluster_accepts_strategy_names_too(self):
        from repro.cluster import SimulatedCluster
        from repro.rebalance import GlobalHashingStrategy

        cluster = SimulatedCluster(small_config(), strategy="hashing")
        assert isinstance(cluster.strategy, GlobalHashingStrategy)
        cluster = SimulatedCluster(small_config(strategy="hashing"))
        assert isinstance(cluster.strategy, GlobalHashingStrategy)
