"""Gate: every committed golden is regenerable and reachable from a test.

A golden that no test reads is dead weight that silently drifts; a golden
that ``scripts/regen_goldens.py`` does not know how to produce cannot be
refreshed after a deliberate behaviour change.  This scans the committed
golden inventory (any ``*golden*.json`` fixture or file under a ``goldens/``
directory in ``tests/``) and pins both properties.
"""

import importlib.util
from pathlib import Path

TESTS = Path(__file__).resolve().parents[1]
ROOT = TESTS.parent


def _golden_inventory():
    files = set()
    for path in TESTS.rglob("*.json"):
        if "__pycache__" in path.parts:
            continue
        if "golden" in path.name or "goldens" in path.parts:
            files.add(path)
    return sorted(files)


def _load_regen_module():
    spec = importlib.util.spec_from_file_location(
        "regen_goldens", ROOT / "scripts" / "regen_goldens.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_the_inventory_is_nonempty():
    assert _golden_inventory(), "no committed goldens found — scan is broken"


def test_every_golden_is_referenced_by_a_test():
    sources = "\n".join(
        path.read_text() for path in TESTS.rglob("test_*.py") if "__pycache__" not in path.parts
    )
    unreachable = []
    for golden in _golden_inventory():
        # Reachable = a test names the file, or a test globs its parent
        # directory (the goldens/ pattern).
        if golden.name not in sources and f'"{golden.parent.name}"' not in sources:
            unreachable.append(str(golden.relative_to(ROOT)))
    assert not unreachable, f"goldens no test reads: {unreachable}"


def test_regen_goldens_covers_the_entire_inventory():
    module = _load_regen_module()
    regenerable = {path for path in module.generators()}
    inventory = set(_golden_inventory())
    missing = {str(p.relative_to(ROOT)) for p in inventory - regenerable}
    assert not missing, (
        f"goldens scripts/regen_goldens.py cannot regenerate: {sorted(missing)}"
    )
