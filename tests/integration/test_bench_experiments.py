"""Integration tests for the benchmark harness (tiny scale)."""

from dataclasses import replace

import pytest

from repro.bench import (
    SMOKE,
    BenchScale,
    make_strategy,
    run_concurrent_write_experiment,
    run_ingestion_experiment,
    run_query_experiment,
    run_scaling_experiment,
    run_traffic_experiment,
)
from repro.metrics import PHASE_REBALANCE, PHASE_STEADY
from repro.bench.reporting import format_table, markdown_table, per_query_table, series_table
from repro.rebalance import DynaHashStrategy, GlobalHashingStrategy, StaticHashStrategy


@pytest.fixture(scope="module")
def tiny_scale():
    """A very small scale so the whole harness runs in a few seconds."""
    return replace(
        SMOKE,
        node_counts=(2, 3),
        query_node_counts=(2,),
        scale_per_node=0.0001,
        write_rates_krecords=(0, 5),
        static_total_buckets=32,
    )


class TestScalePreset:
    def test_workload_scale_bridges_to_paper_scale(self):
        scale = BenchScale(scale_per_node=0.0002)
        assert scale.workload_scale == pytest.approx(100.0 / 0.0002)

    def test_cluster_config_matches_preset(self):
        scale = SMOKE
        config = scale.cluster_config(4)
        assert config.num_nodes == 4
        assert config.partitions_per_node == scale.partitions_per_node
        assert config.bucketing.max_bucket_bytes == scale.max_bucket_bytes

    def test_scale_factor_grows_with_nodes(self):
        scale = SMOKE
        assert scale.scale_factor(8) == pytest.approx(scale.scale_factor(2) * 4)

    def test_make_strategy(self):
        assert isinstance(make_strategy("Hashing", SMOKE), GlobalHashingStrategy)
        assert isinstance(make_strategy("StaticHash", SMOKE), StaticHashStrategy)
        assert isinstance(make_strategy("DynaHash", SMOKE), DynaHashStrategy)
        with pytest.raises(ValueError):
            make_strategy("other", SMOKE)


class TestExperimentDrivers:
    def test_ingestion_experiment_shape(self, tiny_scale):
        result = run_ingestion_experiment(tiny_scale, strategies=("Hashing", "DynaHash"))
        assert set(result.minutes) == {"Hashing", "DynaHash"}
        for by_nodes in result.minutes.values():
            assert set(by_nodes) == set(tiny_scale.node_counts)
            assert all(value > 0 for value in by_nodes.values())

    def test_scaling_experiment_bucketed_cheaper(self, tiny_scale):
        result = run_scaling_experiment(tiny_scale, strategies=("Hashing", "DynaHash"))
        for nodes in tiny_scale.node_counts:
            assert result.remove_minutes["DynaHash"][nodes] < result.remove_minutes["Hashing"][nodes]
            assert result.add_minutes["DynaHash"][nodes] < result.add_minutes["Hashing"][nodes]

    def test_concurrent_write_experiment_monotone(self, tiny_scale):
        result = run_concurrent_write_experiment(tiny_scale, num_nodes=3)
        rates = sorted(result.minutes_by_rate)
        assert result.minutes_by_rate[rates[-1]] >= result.minutes_by_rate[rates[0]]

    def test_query_experiment_runs_selected_queries(self, tiny_scale):
        result = run_query_experiment(
            tiny_scale,
            num_nodes=2,
            downsize=False,
            approaches=("Hashing", "DynaHash"),
            queries=("q1", "q6", "q18"),
        )
        assert set(result.seconds) == {"Hashing", "DynaHash"}
        assert set(result.seconds["DynaHash"]) == {"q1", "q6", "q18"}
        assert result.seconds["DynaHash"]["q18"] >= result.seconds["Hashing"]["q18"]

    def test_traffic_experiment_reports_phase_tagged_percentiles(self, tiny_scale):
        result = run_traffic_experiment(
            tiny_scale,
            num_nodes=2,
            initial_records=200,
            warmup=30,
            steady=80,
            spike=80,
            ramp=30,
        )
        assert result.total_ops == 220
        assert result.write_p99_ms[PHASE_REBALANCE] >= result.write_p99_ms[PHASE_STEADY]
        assert result.snapshot.histogram_count("update", PHASE_REBALANCE) > 0
        assert "rebalance" in result.table()
        # Same scale, same seed: the whole experiment is deterministic.
        again = run_traffic_experiment(
            tiny_scale,
            num_nodes=2,
            initial_records=200,
            warmup=30,
            steady=80,
            spike=80,
            ramp=30,
        )
        assert again.snapshot == result.snapshot


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], ["xx", "y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.50" in table

    def test_series_table(self):
        table = series_table({"s1": {2: 1.0, 4: 2.0}, "s2": {2: 3.0}}, "nodes", "min")
        assert "s1 (min)" in table and "s2 (min)" in table
        assert "-" in table  # missing point rendered as a dash

    def test_per_query_table_orders_numerically(self):
        table = per_query_table({"A": {"q2": 1.0, "q10": 2.0}})
        q2_index = table.index("q2 ")
        q10_index = table.index("q10")
        assert q2_index < q10_index

    def test_markdown_table(self):
        table = markdown_table(["h1", "h2"], [[1, 2]])
        assert table.splitlines()[1] == "| --- | --- |"
        assert "| 1 | 2 |" in table
