"""End-to-end integration tests across the whole stack.

These exercise the full pipeline the way the examples and benchmarks do:
load TPC-H, query it, rebalance repeatedly (in and out, with concurrent
writes and injected failures), and keep checking that every record stays
readable and every query answer stays identical.
"""

import pytest

from repro.bench import SMOKE, build_loaded_database
from repro.bench.experiments import QUERY_TABLES
from repro.common.errors import FaultInjected
from repro.query import ClusterQueryExecutor
from repro.rebalance import (
    FaultInjector,
    RebalanceOperation,
    RebalanceRecoveryManager,
)
from repro.tpch import q1_plan, q6_plan


@pytest.fixture(scope="module")
def dynahash_cluster():
    db, workload, load = build_loaded_database(
        SMOKE, num_nodes=4, strategy_name="DynaHash", tables=QUERY_TABLES
    )
    return db.cluster, workload, load


class TestLoadAndQuery:
    def test_load_populates_every_table(self, dynahash_cluster):
        cluster, _workload, load = dynahash_cluster
        for table, count in load.row_counts.items():
            assert cluster.record_count(table) == count

    def test_dynahash_split_buckets_while_loading(self, dynahash_cluster):
        cluster, _workload, _load = dynahash_cluster
        lineitem = cluster.dataset("lineitem")
        bucket_counts = [p.primary.bucket_count for p in lineitem.partitions.values()]
        assert max(bucket_counts) > 1  # the 10GB-style cap split buckets

    def test_q1_and_q6_answers_match_generator_ground_truth(self, dynahash_cluster):
        cluster, workload, _load = dynahash_cluster
        executor = ClusterQueryExecutor(cluster)
        q6, _ = executor.execute_plan("q6", q6_plan())
        expected = 0.0
        orders = list(workload.generator.orders())
        for row in workload.generator.lineitem(orders_rows=orders):
            if (
                "1994-01-01" <= row["l_shipdate"] < "1995-01-01"
                and 0.05 <= row["l_discount"] <= 0.07
                and row["l_quantity"] < 24
            ):
                expected += row["l_extendedprice"] * row["l_discount"]
        assert q6["revenue"] == pytest.approx(expected, rel=1e-9)
        q1, _ = executor.execute_plan("q1", q1_plan())
        assert sum(group["count_order"] for group in q1) <= cluster.record_count("lineitem")


class TestRepeatedRebalancing:
    def test_scale_in_out_cycle_preserves_answers(self):
        db, _workload, _load = build_loaded_database(
            SMOKE, num_nodes=4, strategy_name="DynaHash", tables=("orders", "lineitem", "customer", "part", "supplier", "nation", "region", "partsupp")
        )
        cluster = db.cluster
        executor = ClusterQueryExecutor(cluster)
        baseline, _ = executor.execute_plan("q6", q6_plan())
        record_counts = {name: cluster.record_count(name) for name in cluster.dataset_names()}
        for target in (3, 2, 3, 4):
            report = cluster.rebalance_to(target)
            assert report.committed
            assert cluster.num_nodes == target
            for name, count in record_counts.items():
                assert cluster.record_count(name) == count
        final, _ = ClusterQueryExecutor(cluster).execute_plan("q6", q6_plan())
        assert final["revenue"] == pytest.approx(baseline["revenue"], rel=1e-9)

    def test_concurrent_writes_survive_scale_in(self):
        db, workload, _load = build_loaded_database(
            SMOKE, num_nodes=3, strategy_name="DynaHash"
        )
        cluster = db.cluster
        before = cluster.record_count("lineitem")
        concurrent = workload.concurrent_lineitem_rows(150)
        report = cluster.rebalance_to(2, concurrent_rows={"lineitem": concurrent})
        assert report.committed
        assert cluster.record_count("lineitem") == before + len(concurrent)
        for row in concurrent[::13]:
            key = (row["l_orderkey"], row["l_linenumber"])
            assert cluster.point_lookup("lineitem", key) is not None

    def test_crash_then_recover_then_rebalance_again(self):
        db, _workload, _load = build_loaded_database(
            SMOKE, num_nodes=3, strategy_name="DynaHash"
        )
        cluster = db.cluster
        records = cluster.record_count("lineitem")
        targets = [pid for node in cluster.nodes[:2] for pid in node.partition_ids]
        operation = RebalanceOperation(
            cluster,
            "lineitem",
            targets,
            fault_injector=FaultInjector(["cc_fail_before_commit"]),
        )
        with pytest.raises(FaultInjected):
            operation.run()
        RebalanceRecoveryManager(cluster).recover()
        assert cluster.record_count("lineitem") == records
        # The aborted attempt leaves the cluster fully able to rebalance again.
        report = cluster.rebalance_to(2)
        assert report.committed
        assert cluster.record_count("lineitem") == records
