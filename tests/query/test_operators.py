"""Tests for the relational operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import QueryError, UnknownColumnError
from repro.query.operators import (
    OperatorStats,
    filter_rows,
    hash_group_by,
    hash_join,
    limit,
    order_by,
    project,
    scalar_aggregate,
)


def rows_of(*pairs):
    return [dict(pair) for pair in pairs]


class TestFilterAndProject:
    def test_filter(self):
        rows = [{"a": i} for i in range(10)]
        result = list(filter_rows(rows, lambda r: r["a"] % 2 == 0))
        assert [r["a"] for r in result] == [0, 2, 4, 6, 8]

    def test_filter_counts_all_inputs(self):
        stats = OperatorStats()
        list(filter_rows([{"a": 1}, {"a": 2}], lambda r: False, stats=stats))
        assert stats.counts["filter"] == 2

    def test_project_columns(self):
        result = list(project([{"a": 1, "b": 2}], columns=["a"]))
        assert result == [{"a": 1}]

    def test_project_computed(self):
        result = list(project([{"a": 2}], columns=["a"], computed={"double": lambda r: r["a"] * 2}))
        assert result == [{"a": 2, "double": 4}]

    def test_project_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            list(project([{"a": 1}], columns=["missing"]))


class TestHashJoin:
    def test_inner_join(self):
        left = [{"k": 1, "l": "a"}, {"k": 2, "l": "b"}, {"k": 3, "l": "c"}]
        right = [{"k": 1, "r": "x"}, {"k": 2, "r": "y"}]
        result = list(
            hash_join(left, right, left_key=lambda r: r["k"], right_key=lambda r: r["k"])
        )
        assert len(result) == 2
        assert {(r["l"], r["r"]) for r in result} == {("a", "x"), ("b", "y")}

    def test_inner_join_duplicates_multiply(self):
        left = [{"k": 1, "l": "a"}]
        right = [{"k": 1, "r": "x"}, {"k": 1, "r": "y"}]
        result = list(hash_join(left, right, lambda r: r["k"], lambda r: r["k"]))
        assert len(result) == 2

    def test_left_semi_join(self):
        left = [{"k": 1}, {"k": 2}]
        right = [{"k": 1}]
        result = list(hash_join(left, right, lambda r: r["k"], lambda r: r["k"], how="left_semi"))
        assert result == [{"k": 1}]

    def test_left_anti_join(self):
        left = [{"k": 1}, {"k": 2}]
        right = [{"k": 1}]
        result = list(hash_join(left, right, lambda r: r["k"], lambda r: r["k"], how="left_anti"))
        assert result == [{"k": 2}]

    def test_unknown_join_type(self):
        with pytest.raises(QueryError):
            list(hash_join([], [], lambda r: 1, lambda r: 1, how="outer"))


class TestGroupByAndAggregates:
    def test_sum_count_min_max(self):
        rows = [{"g": "a", "v": 1}, {"g": "a", "v": 3}, {"g": "b", "v": 5}]
        result = {
            r["group_key"]: r
            for r in hash_group_by(
                rows,
                key=lambda r: r["g"],
                aggregates={
                    "total": ("sum", lambda r: r["v"]),
                    "n": ("count", lambda r: 1),
                    "lo": ("min", lambda r: r["v"]),
                    "hi": ("max", lambda r: r["v"]),
                },
            )
        }
        assert result["a"]["total"] == 4 and result["a"]["n"] == 2
        assert result["a"]["lo"] == 1 and result["a"]["hi"] == 3
        assert result["b"]["total"] == 5

    def test_avg(self):
        rows = [{"g": 1, "v": 2}, {"g": 1, "v": 4}]
        result = list(
            hash_group_by(rows, key=lambda r: r["g"], aggregates={"m": ("avg", lambda r: r["v"])})
        )
        assert result[0]["m"] == pytest.approx(3.0)

    def test_dict_group_key_is_merged_into_output(self):
        rows = [{"g": "x", "v": 1}, {"g": "x", "v": 2}, {"g": "y", "v": 3}]
        result = {
            r["g"]: r
            for r in hash_group_by(
                rows,
                key=lambda r: {"g": r["g"]},
                aggregates={"n": ("count", lambda r: 1), "total": ("sum", lambda r: r["v"])},
            )
        }
        assert result["x"]["n"] == 2 and result["x"]["total"] == 3
        assert result["y"]["total"] == 3
        assert "group_key" not in result["x"]

    def test_unsupported_aggregate(self):
        with pytest.raises(QueryError):
            list(hash_group_by([], key=lambda r: 1, aggregates={"x": ("median", lambda r: 1)}))

    def test_scalar_aggregate(self):
        rows = [{"v": 2}, {"v": 3}]
        result = scalar_aggregate(rows, {"total": ("sum", lambda r: r["v"])})
        assert result == {"total": 5}

    def test_scalar_aggregate_empty_input(self):
        result = scalar_aggregate([], {"total": ("sum", lambda r: r["v"]), "n": ("count", lambda r: 1)})
        assert result["total"] == 0 and result["n"] == 0

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=50))
    def test_scalar_sum_matches_python_sum(self, values):
        rows = [{"v": value} for value in values]
        result = scalar_aggregate(rows, {"total": ("sum", lambda r: r["v"])})
        assert result["total"] == sum(values)


class TestOrderAndLimit:
    def test_order_by_ascending_descending(self):
        rows = [{"v": 3}, {"v": 1}, {"v": 2}]
        assert [r["v"] for r in order_by(rows, key=lambda r: r["v"])] == [1, 2, 3]
        assert [r["v"] for r in order_by(rows, key=lambda r: r["v"], descending=True)] == [3, 2, 1]

    def test_limit(self):
        assert limit([{"v": i} for i in range(10)], 3) == [{"v": 0}, {"v": 1}, {"v": 2}]

    def test_limit_negative_rejected(self):
        with pytest.raises(QueryError):
            limit([], -1)

    def test_limit_larger_than_input(self):
        assert limit([{"v": 1}], 10) == [{"v": 1}]
