"""Tests for cluster-parallel query execution (spec mode and plan mode)."""

import pytest

from repro.common.config import BucketingConfig, ClusterConfig, LSMConfig
from repro.common.errors import QueryError
from repro.cluster.controller import SimulatedCluster
from repro.query.executor import (
    ACCESS_FULL_SCAN,
    ACCESS_SECONDARY_INDEX,
    ClusterQueryExecutor,
    QuerySpec,
    TableAccess,
)
from repro.rebalance.strategies import DynaHashStrategy, StaticHashStrategy
from repro.tpch.queries import q1_plan, q3_plan, q6_plan, query_spec
from repro.tpch.workload import TPCHWorkload


def small_config(num_nodes=2):
    return ClusterConfig(
        num_nodes=num_nodes,
        partitions_per_node=2,
        lsm=LSMConfig(memory_component_bytes=64 * 1024),
        bucketing=BucketingConfig(initial_buckets_per_partition=2),
    )


def loaded_cluster(num_nodes=2, scale=0.0004, strategy=None):
    cluster = SimulatedCluster(small_config(num_nodes), strategy=strategy or DynaHashStrategy(initial_buckets_per_partition=2))
    workload = TPCHWorkload(scale_factor=scale)
    workload.load(cluster, tables=("customer", "orders", "lineitem", "part", "supplier", "nation", "region", "partsupp"))
    return cluster, workload


@pytest.fixture(scope="module")
def tpch_cluster():
    return loaded_cluster()


class TestSpecValidation:
    def test_unknown_access_rejected(self):
        with pytest.raises(QueryError):
            TableAccess("lineitem", "table_scan")

    def test_secondary_access_requires_index(self):
        with pytest.raises(QueryError):
            TableAccess("lineitem", ACCESS_SECONDARY_INDEX)

    def test_selectivity_bounds(self):
        with pytest.raises(QueryError):
            TableAccess("lineitem", ACCESS_FULL_SCAN, selectivity=1.5)

    def test_spec_requires_accesses(self):
        with pytest.raises(QueryError):
            QuerySpec("empty", [])

    def test_spec_requires_positive_depth(self):
        with pytest.raises(QueryError):
            QuerySpec("bad", [TableAccess("lineitem")], operator_depth=0)


class TestSpecExecution:
    def test_full_scan_spec(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        report = executor.execute_spec(query_spec("q1"))
        assert report.simulated_seconds > 0
        assert report.records_scanned == cluster.record_count("lineitem")
        assert set(report.per_node_seconds) == {"nc0", "nc1"}

    def test_index_only_query_reads_less(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        q1 = executor.execute_spec(query_spec("q1"))
        q6 = executor.execute_spec(query_spec("q6"))
        assert q6.bytes_scanned < q1.bytes_scanned
        assert q6.simulated_seconds < q1.simulated_seconds

    def test_multiple_scans_cost_more(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        single = executor.execute_spec(
            QuerySpec("one-pass", [TableAccess("lineitem", scan_count=1)], operator_depth=2)
        )
        triple = executor.execute_spec(
            QuerySpec("three-pass", [TableAccess("lineitem", scan_count=3)], operator_depth=2)
        )
        # Compare the parallel (per-node) portion: the fixed coordinator RPC
        # latency is the same for both and can dominate at tiny data scale.
        assert max(triple.per_node_seconds.values()) > 2 * max(single.per_node_seconds.values())

    def test_ordered_scan_costs_more_with_more_buckets(self):
        few_cluster, _ = loaded_cluster(strategy=DynaHashStrategy(initial_buckets_per_partition=1))
        many_cluster, _ = loaded_cluster(strategy=StaticHashStrategy(total_buckets=64))
        spec = query_spec("q18")
        few_time = ClusterQueryExecutor(few_cluster).execute_spec(spec).simulated_seconds
        many_time = ClusterQueryExecutor(many_cluster).execute_spec(spec).simulated_seconds
        few_buckets = next(iter(few_cluster.dataset("lineitem").partitions.values())).primary.bucket_count
        many_buckets = next(iter(many_cluster.dataset("lineitem").partitions.values())).primary.bucket_count
        assert many_buckets > few_buckets
        assert many_time > few_time

    def test_all_22_specs_run(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        for number in range(1, 23):
            report = executor.execute_spec(query_spec(f"q{number}"))
            assert report.simulated_seconds > 0, f"q{number} produced no time"

    def test_unknown_query_name(self):
        with pytest.raises(KeyError):
            query_spec("q23")


class TestPlanExecution:
    def test_q1_plan_produces_groups(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        result, report = executor.execute_plan("q1", q1_plan())
        assert 1 <= len(result) <= 6  # at most 3 returnflags x 2 linestatus
        assert all("sum_qty" in row and row["count_order"] > 0 for row in result)
        assert report.simulated_seconds > 0
        assert report.records_scanned == cluster.record_count("lineitem")

    def test_q6_plan_matches_manual_aggregation(self, tpch_cluster):
        cluster, workload = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        result, _report = executor.execute_plan("q6", q6_plan())
        expected = 0.0
        for row in workload.generator.lineitem():
            if (
                "1994-01-01" <= row["l_shipdate"] < "1995-01-01"
                and 0.05 <= row["l_discount"] <= 0.07
                and row["l_quantity"] < 24
            ):
                expected += row["l_extendedprice"] * row["l_discount"]
        assert result["revenue"] == pytest.approx(expected, rel=1e-9)

    def test_q3_plan_returns_top_10(self, tpch_cluster):
        cluster, _ = tpch_cluster
        executor = ClusterQueryExecutor(cluster)
        result, report = executor.execute_plan("q3", q3_plan())
        assert len(result) <= 10
        revenues = [row["revenue"] for row in result]
        assert revenues == sorted(revenues, reverse=True)
        assert report.bytes_scanned > 0

    def test_plan_results_survive_rebalance(self):
        cluster, _ = loaded_cluster(num_nodes=3, scale=0.0003)
        executor = ClusterQueryExecutor(cluster)
        before, _ = executor.execute_plan("q6", q6_plan())
        cluster.remove_nodes(1)
        after, _ = executor.execute_plan("q6", q6_plan())
        assert after["revenue"] == pytest.approx(before["revenue"], rel=1e-9)
