"""Loading comparisons, headline metrics, and simulated-time alignment.

Covers the degradation contract: single recordings, missing trace payloads,
mismatched scenarios, disjoint time ranges, and version mismatches all either
compare with a loud note or fail with the offending path in the error.
"""

import json

import pytest

from repro.report import (
    CellView,
    Comparison,
    align_series,
    headline_metrics,
    load_comparison,
)
from repro.scenario import ScenarioSpecError


def recording_paths(sweep_dir):
    return sorted(sweep_dir.glob("*.recording.json"))


def tampered_copy(sweep_dir, tmp_path, name, mutate):
    """A recording with `mutate(document)` applied, written under tmp_path."""
    document = json.loads(recording_paths(sweep_dir)[0].read_text())
    mutate(document)
    path = tmp_path / name
    path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
    return path


class TestHeadlineMetrics:
    def test_real_recording_metrics(self, comparison):
        for cell in comparison.cells:
            metrics = cell.metrics
            assert metrics["total_ops"] == 80.0
            assert metrics["simulated_seconds"] > 0
            assert metrics["ops_per_sec"] == pytest.approx(
                metrics["total_ops"] / metrics["simulated_seconds"]
            )
            assert metrics["write_p99_ms[steady]"] > 0
            assert metrics["write_p99_ms[rebalance]"] > 0
            assert metrics["rebalance.count"] == 1.0
            assert metrics["rebalance.records_moved"] > 0
            assert metrics["rebalance.bytes_shipped"] > 0
            assert metrics["checks.passed"] == metrics["checks.total"]

    def test_absent_populations_are_omitted_not_zeroed(self):
        metrics = headline_metrics({"total_ops": 0, "simulated_seconds": 0.0})
        assert metrics == {"total_ops": 0.0, "simulated_seconds": 0.0}


class TestLoadComparison:
    def test_from_manifest(self, comparison, manifest_path):
        assert comparison.labels == ["strategy=dynahash", "strategy=statichash"]
        assert comparison.manifest == str(manifest_path)
        assert comparison.cells[0].overrides == {"strategy": "dynahash"}
        assert comparison.cells[0].strategy == "dynahash"
        assert comparison.notes == []

    def test_from_recording_paths_labels_by_stem(self, sweep_dir):
        comparison = load_comparison(recording_paths(sweep_dir))
        assert all(not label.endswith(".recording") for label in comparison.labels)
        assert len(comparison.cells) == 2
        assert comparison.manifest is None

    def test_duplicate_stems_deduplicate(self, sweep_dir):
        path = recording_paths(sweep_dir)[0]
        comparison = load_comparison([path, path])
        assert comparison.labels[1] == comparison.labels[0] + "#2"

    def test_single_recording_notes_nothing_to_diff(self, sweep_dir):
        comparison = load_comparison([recording_paths(sweep_dir)[0]])
        assert any("single recording" in note for note in comparison.notes)

    def test_missing_trace_payload_notes_the_cells(self, sweep_dir, tmp_path):
        untraced = tampered_copy(
            sweep_dir, tmp_path, "untraced.recording.json", lambda d: d.pop("trace")
        )
        comparison = load_comparison([recording_paths(sweep_dir)[0], untraced])
        assert comparison.cells[1].trace is None
        assert any("no trace payload in: untraced" in note for note in comparison.notes)
        # The traced cell's series still align; the untraced cell is omitted.
        _, aligned = align_series(comparison, comparison.series_names()[0])
        assert list(aligned) == [comparison.cells[0].label]

    def test_mismatched_scenarios_note_not_error(self, sweep_dir, tmp_path):
        def rename(document):
            document["scenario"]["scenario"]["name"] = "other-scenario"

        other = tampered_copy(sweep_dir, tmp_path, "other.recording.json", rename)
        comparison = load_comparison([recording_paths(sweep_dir)[0], other])
        assert any("different scenarios" in note for note in comparison.notes)

    def test_recording_version_mismatch_names_the_path(self, sweep_dir, tmp_path):
        def bump(document):
            document["version"] = 99

        stale = tampered_copy(sweep_dir, tmp_path, "stale.recording.json", bump)
        with pytest.raises(ScenarioSpecError, match="unsupported recording version 99"):
            load_comparison([stale])

    def test_manifest_version_mismatch_fails_with_the_manifest_error(
        self, manifest_path, tmp_path
    ):
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 2
        path = tmp_path / "sweep.manifest.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(ScenarioSpecError, match="unsupported manifest version 2"):
            load_comparison([path])

    def test_manifest_without_cells_fails(self, manifest_path, tmp_path):
        manifest = json.loads(manifest_path.read_text())
        manifest["cells"] = []
        path = tmp_path / "sweep.manifest.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(ScenarioSpecError, match="lists no cells"):
            load_comparison([path])

    def test_no_sources_is_an_error(self):
        with pytest.raises(ScenarioSpecError, match="no recordings"):
            load_comparison([])


def synthetic(series_by_label):
    """A Comparison whose cells carry only timeline series."""
    cells = [
        CellView(
            label=label,
            document={
                "trace": {
                    "series": [
                        {"name": name, "times": times, "values": values}
                        for name, (times, values) in series.items()
                    ]
                }
            },
        )
        for label, series in series_by_label.items()
    ]
    return Comparison(cells=cells)


class TestAlignSeries:
    def test_union_grid_with_step_resampling(self):
        comparison = synthetic(
            {
                "a": {"s": ([0.0, 2.0], [1.0, 3.0])},
                "b": {"s": ([1.0, 2.0, 4.0], [10.0, 20.0, 40.0])},
            }
        )
        grid, aligned = align_series(comparison, "s")
        assert grid == [0.0, 1.0, 2.0, 4.0]
        assert aligned["a"] == [1.0, 1.0, 3.0, 3.0]
        assert aligned["b"] == [None, 10.0, 20.0, 40.0]

    def test_disjoint_time_ranges_still_align(self):
        comparison = synthetic(
            {
                "early": {"s": ([0.0, 1.0], [1.0, 2.0])},
                "late": {"s": ([5.0, 6.0], [9.0, 8.0])},
            }
        )
        grid, aligned = align_series(comparison, "s")
        assert grid == [0.0, 1.0, 5.0, 6.0]
        assert aligned["early"] == [1.0, 2.0, 2.0, 2.0]
        assert aligned["late"] == [None, None, 9.0, 8.0]

    def test_cells_without_the_series_are_omitted(self):
        comparison = synthetic(
            {"has": {"s": ([0.0], [1.0])}, "lacks": {"t": ([0.0], [1.0])}}
        )
        _, aligned = align_series(comparison, "s")
        assert list(aligned) == ["has"]

    def test_series_names_are_the_sorted_union(self):
        comparison = synthetic(
            {"a": {"z": ([0.0], [1.0]), "m": ([0.0], [1.0])}, "b": {"a": ([0.0], [1.0])}}
        )
        assert comparison.series_names() == ["a", "m", "z"]
