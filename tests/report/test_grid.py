"""Axis parsing, axis merging, and grid expansion into cells."""

import pytest

from repro.report import expand_cells, merge_axes, parse_axis_arg
from repro.scenario import ScenarioSpecError, parse_scenario

BASE = """
[scenario]
name = "grid"
[cluster]
nodes = 2
seed = 5
[workload]
initial_records = 10
[[workload.phases]]
name = "steady"
ops = 5
"""


def spec_from(text=BASE):
    return parse_scenario(text, "toml", "<test>")


class TestParseAxisArg:
    def test_strings_stay_strings(self):
        assert parse_axis_arg("strategy=dynahash,statichash") == (
            "strategy",
            ("dynahash", "statichash"),
        )

    def test_values_coerce_like_toml_scalars(self):
        assert parse_axis_arg("seed=1,2") == ("seed", (1, 2))
        name, values = parse_axis_arg("workload_scale=1.5")
        assert values == (1.5,) and isinstance(values[0], float)
        assert parse_axis_arg("trace.enabled=true,false") == ("trace.enabled", (True, False))

    def test_missing_equals_is_an_error(self):
        with pytest.raises(ScenarioSpecError, match=r"NAME=VALUE"):
            parse_axis_arg("strategy")

    def test_empty_value_list_is_an_error(self):
        with pytest.raises(ScenarioSpecError, match="at least one value"):
            parse_axis_arg("seed=")

    def test_unknown_axis_lists_the_aliases(self):
        with pytest.raises(ScenarioSpecError) as excinfo:
            parse_axis_arg("bogus=1")
        assert "unknown axis" in str(excinfo.value)
        assert "strategy" in str(excinfo.value)

    def test_unknown_strategy_lists_the_registry(self):
        with pytest.raises(ScenarioSpecError) as excinfo:
            parse_axis_arg("strategy=nosuch")
        assert "unknown strategy" in str(excinfo.value)
        assert "dynahash" in str(excinfo.value)

    def test_non_integer_seed_is_an_error(self):
        with pytest.raises(ScenarioSpecError, match="seeds must be integers"):
            parse_axis_arg("seed=1.5")


class TestMergeAxes:
    def test_cli_axis_replaces_spec_axis_in_place(self):
        spec_axes = (("strategy", ("a", "b")), ("seed", (1, 2)))
        merged = merge_axes(spec_axes, (("strategy", ("c",)),))
        assert merged == (("strategy", ("c",)), ("seed", (1, 2)))

    def test_new_cli_axis_appends(self):
        merged = merge_axes((("strategy", ("a",)),), (("seed", (1, 2)),))
        assert merged == (("strategy", ("a",)), ("seed", (1, 2)))


class TestExpandCells:
    def test_odometer_order_last_axis_fastest(self):
        cells = expand_cells(
            spec_from(), (("strategy", ("dynahash", "statichash")), ("seed", (1, 2)))
        )
        assert [cell.cell_id for cell in cells] == [
            "strategy=dynahash,seed=1",
            "strategy=dynahash,seed=2",
            "strategy=statichash,seed=1",
            "strategy=statichash,seed=2",
        ]
        assert [cell.spec.cluster.seed for cell in cells] == [1, 2, 1, 2]
        assert cells[2].spec.cluster.strategy == "statichash"

    def test_overrides_and_sweep_stripping(self):
        text = BASE + "\n[sweep.axes]\nseed = [7, 8]\n"
        cells = expand_cells(spec_from(text), (("seed", (7, 8)),))
        assert all(cell.spec.sweep is None for cell in cells)
        assert cells[0].overrides == (("seed", 7),)

    def test_strategy_override_drops_foreign_options(self):
        text = """
        [scenario]
        name = "grid"
        [cluster]
        strategy = "static"
        [cluster.strategy_options]
        total_buckets = 64
        [workload]
        initial_records = 10
        [[workload.phases]]
        name = "steady"
        ops = 5
        """
        cells = expand_cells(spec_from(text), (("strategy", ("static", "dynahash")),))
        assert dict(cells[0].spec.cluster.strategy_options) == {"total_buckets": 64}
        assert dict(cells[1].spec.cluster.strategy_options) == {}

    def test_dotted_path_reaches_into_arrays(self):
        cells = expand_cells(spec_from(), (("workload.phases.0.ops", (5, 9)),))
        assert [cell.spec.workload.phases[0].ops for cell in cells] == [5, 9]

    def test_array_index_out_of_range(self):
        with pytest.raises(ScenarioSpecError, match="out of range"):
            expand_cells(spec_from(), (("workload.phases.5.ops", (1,)),))

    def test_non_index_segment_on_an_array(self):
        with pytest.raises(ScenarioSpecError, match="not an array index"):
            expand_cells(spec_from(), (("workload.phases.first.ops", (1,)),))

    def test_invalid_combination_carries_the_cell_id(self):
        with pytest.raises(ScenarioSpecError, match=r"cell 'cluster.bogus=1'"):
            expand_cells(spec_from(), (("cluster.bogus", (1,)),))

    def test_no_axes_is_an_error(self):
        with pytest.raises(ScenarioSpecError, match="no axes"):
            expand_cells(spec_from(), ())

    def test_slug_is_filesystem_safe(self):
        cells = expand_cells(spec_from(), (("workload.phases.0.ops", (5,)),))
        assert "=" not in cells[0].slug and "," not in cells[0].slug
        assert cells[0].slug == "workload.phases.0.ops-5"
