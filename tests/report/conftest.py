"""Shared sweep fixtures: one tiny traced grid, run once per test session."""

import pytest

from repro.report import load_comparison, run_sweep
from repro.report.executor import MANIFEST_NAME
from repro.scenario import parse_scenario

BASE = """
[scenario]
name = "report-smoke"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 11
[cluster.lsm]
memory_component_bytes = "32 KiB"
[cluster.bucketing]
max_bucket_bytes = "48 KiB"

[trace]

[workload]
initial_records = 120
mix = "A"

[[workload.phases]]
name = "steady"
ops = 40

[[workload.phases]]
name = "shrink"
ops = 40
rebalance = { remove = 1 }

[checks]
expect_nodes = 2
write_p99_budget_ms = { steady = 5000.0, rebalance = 5000.0 }
"""

AXES = (("strategy", ("dynahash", "statichash")),)


@pytest.fixture(scope="session")
def base_spec():
    return parse_scenario(BASE, "toml", "<report-tests>")


@pytest.fixture(scope="session")
def axes():
    return AXES


@pytest.fixture(scope="session")
def sweep_dir(tmp_path_factory, base_spec, axes):
    out = tmp_path_factory.mktemp("sweep-serial")
    run_sweep(base_spec, axes, out, jobs=1)
    return out


@pytest.fixture(scope="session")
def manifest_path(sweep_dir):
    return sweep_dir / MANIFEST_NAME


@pytest.fixture
def comparison(manifest_path):
    return load_comparison([manifest_path])
