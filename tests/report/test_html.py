"""The HTML dashboard: self-contained, byte-stable, hash-seed independent."""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.report import CellView, Comparison, load_comparison, render_dashboard


class TestDashboard:
    def test_document_shape(self, comparison):
        html = render_dashboard(comparison)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "strategy=dynahash" in html and "strategy=statichash" in html
        assert "<svg" in html  # sparklines and gantt strips
        assert "write_p99_ms[rebalance]" in html
        assert "data-sort" in html and "<script>" in html  # sortable cells table

    def test_self_contained_no_external_references(self, comparison):
        html = render_dashboard(comparison)
        for fragment in ("http://", "https://", "src=", "<link", "@import", "url("):
            assert fragment not in html, fragment

    def test_byte_stable_across_renders_and_loads(self, manifest_path, comparison):
        again = load_comparison([manifest_path])
        assert render_dashboard(comparison) == render_dashboard(comparison)
        assert render_dashboard(comparison) == render_dashboard(again)

    def test_untraced_comparison_still_renders(self, comparison):
        for cell in comparison.cells:
            cell.document.pop("trace")
        html = render_dashboard(comparison)
        assert html.startswith("<!DOCTYPE html>")

    def test_series_overflow_is_announced_not_silent(self):
        cells = [
            CellView(
                label="big",
                document={
                    "scenario": {"scenario": {"name": "t"}},
                    "trace": {
                        "series": [
                            {"name": f"series.{index:02d}", "times": [0.0], "values": [1.0]}
                            for index in range(20)
                        ],
                        "spans": [],
                    },
                },
            )
        ]
        html = render_dashboard(Comparison(cells=cells))
        assert "+4 more series not shown" in html
        assert "series.19" in html  # the hidden names are listed


class TestHashSeedIndependence:
    def test_compare_and_dashboard_are_identical_across_hash_seeds(self, manifest_path):
        script = (
            "import sys\n"
            "from repro.report import load_comparison, render_comparison, render_dashboard\n"
            "comparison = load_comparison([sys.argv[1]])\n"
            "sys.stdout.write(render_dashboard(comparison))\n"
            "sys.stdout.write(render_comparison(comparison))\n"
        )
        src = Path(repro.__file__).resolve().parents[1]
        outputs = []
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", script, str(manifest_path)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert "<!DOCTYPE html>" in outputs[0]
