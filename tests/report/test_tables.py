"""Comparison tables and the relative-delta regression gates."""

import pytest

from repro.report import (
    CellView,
    Comparison,
    GateResult,
    evaluate_gates,
    parse_gate_arg,
    render_comparison,
)
from repro.scenario import ScenarioSpecError


def make_cell(label, metrics, checks=(), strategy="dynahash", seed=7):
    document = {
        "scenario": {"scenario": {"name": "t"}, "cluster": {"strategy": strategy}},
        "seed": seed,
        "nodes": {"before": 2, "after": 3},
        "checks": [{"name": name, "passed": passed, "detail": ""} for name, passed in checks],
    }
    return CellView(label=label, document=document, metrics=dict(metrics))


@pytest.fixture
def pair():
    return Comparison(
        cells=[
            make_cell("base", {"ops_per_sec": 100.0, "moved": 10.0}, checks=(("c1", True),)),
            make_cell(
                "cand",
                {"ops_per_sec": 90.0, "moved": 20.0, "extra": 1.0},
                checks=(("c1", False), ("c2", True)),
                strategy="statichash",
            ),
        ]
    )


class TestRenderComparison:
    def test_sections_and_values(self, pair):
        text = render_comparison(pair)
        assert "headline metrics:" in text
        assert "deltas vs baseline 'base':" in text
        assert "statichash" in text
        assert "+100.0%" in text  # moved 10 -> 20
        assert "-10.0%" in text  # ops_per_sec 100 -> 90
        # 'extra' is absent from the baseline: shown as '-' with no delta.
        assert "extra" in text

    def test_checks_table_unions_names(self, pair):
        text = render_comparison(pair)
        assert "checks:" in text
        lines = [line for line in text.splitlines() if line.startswith("c2")]
        assert lines and "-" in lines[0] and "PASS" in lines[0]

    def test_single_cell_has_no_diff_section(self):
        comparison = Comparison(cells=[make_cell("only", {"ops_per_sec": 1.0})])
        text = render_comparison(comparison)
        assert "deltas vs baseline" not in text

    def test_notes_are_appended(self, pair):
        pair.notes.append("some warning")
        assert "note: some warning" in render_comparison(pair)

    def test_rendering_is_deterministic(self, pair):
        assert render_comparison(pair) == render_comparison(pair)

    def test_unknown_baseline_lists_cells(self, pair):
        with pytest.raises(ScenarioSpecError, match="base, cand"):
            render_comparison(pair, baseline="nope")

    def test_real_comparison_renders(self, comparison):
        text = render_comparison(comparison)
        assert "strategy=dynahash" in text and "strategy=statichash" in text
        assert "write_p99_ms[rebalance]" in text
        assert "write_p99_budget_ms.steady" in text
        assert "3->2" in text  # nodes before -> after


class TestParseGateArg:
    def test_metric_and_threshold(self):
        assert parse_gate_arg("write_p99_ms[rebalance]=0.25") == (
            "write_p99_ms[rebalance]",
            0.25,
        )
        assert parse_gate_arg("ops_per_sec=-0.10") == ("ops_per_sec", -0.10)

    def test_missing_equals(self):
        with pytest.raises(ScenarioSpecError, match="METRIC=THRESHOLD"):
            parse_gate_arg("ops_per_sec")

    def test_non_numeric_threshold(self):
        with pytest.raises(ScenarioSpecError, match="not a number"):
            parse_gate_arg("ops_per_sec=fast")


class TestEvaluateGates:
    def test_growth_cap_passes_and_fails(self, pair):
        grew = evaluate_gates(pair, {"moved": 0.5})  # +100% > +50% -> FAIL
        assert [g.passed for g in grew] == [False]
        assert "need <= +50.0%" in grew[0].detail
        assert evaluate_gates(pair, {"moved": 2.0})[0].passed  # +100% <= +200%

    def test_drop_cap_passes_and_fails(self, pair):
        held = evaluate_gates(pair, {"ops_per_sec": -0.25})  # -10% >= -25% -> PASS
        assert held[0].passed
        dropped = evaluate_gates(pair, {"ops_per_sec": -0.05})
        assert not dropped[0].passed
        assert "need >= -5.0%" in dropped[0].detail

    def test_missing_metric_fails_loudly(self, pair):
        results = evaluate_gates(pair, {"nope": 0.1})
        assert not results[0].passed
        assert "not recorded" in results[0].detail
        assert "ops_per_sec" in results[0].detail  # lists the known metrics
        # Missing on the *baseline* side names the baseline cell.
        extra = evaluate_gates(pair, {"extra": 0.1})
        assert not extra[0].passed and "'base'" in extra[0].detail

    def test_baseline_selection(self, pair):
        results = evaluate_gates(pair, {"moved": 0.0}, baseline="cand")
        assert [g.cell for g in results] == ["base"]
        assert results[0].passed  # 20 -> 10 is a drop; the cap is on growth

    def test_single_cell_is_an_error(self):
        comparison = Comparison(cells=[make_cell("only", {})])
        with pytest.raises(ScenarioSpecError, match="at least two"):
            evaluate_gates(comparison, {"x": 0.1})

    def test_line_format(self):
        result = GateResult("cand", "ops_per_sec", -0.1, False, "why")
        assert result.line() == "gate ops_per_sec [cand]: FAIL (why)"
