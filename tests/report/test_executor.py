"""The sweep executor: parallel/serial byte parity and manifest stability.

The central guarantee of `python -m repro sweep --jobs N`: a recording's
bytes are a pure function of its cell's spec, so fanning cells out across
worker processes changes wall time and nothing else.
"""

import json

import pytest

from repro.report import run_sweep, sweep_manifest_json
from repro.report.executor import MANIFEST_NAME


@pytest.fixture(scope="module")
def parallel(tmp_path_factory, base_spec, axes):
    """The same grid as the session's serial sweep, run with two workers."""
    out = tmp_path_factory.mktemp("sweep-parallel")
    events = []
    manifest = run_sweep(
        base_spec,
        axes,
        out,
        jobs=2,
        progress=lambda cell, passed: events.append((cell.cell_id, passed)),
    )
    return out, manifest, events


class TestJobsParity:
    def test_parallel_and_serial_sweeps_are_byte_identical(self, sweep_dir, parallel):
        parallel_dir, _, _ = parallel
        serial_files = sorted(p.name for p in sweep_dir.iterdir())
        parallel_files = sorted(p.name for p in parallel_dir.iterdir())
        assert serial_files == parallel_files
        assert len(serial_files) == 3  # two recordings + the manifest
        for name in serial_files:
            assert (sweep_dir / name).read_bytes() == (parallel_dir / name).read_bytes()

    def test_manifest_is_byte_stable(self, sweep_dir, parallel):
        _, manifest, _ = parallel
        assert sweep_manifest_json(manifest) == (sweep_dir / MANIFEST_NAME).read_text()


class TestManifest:
    def test_structure(self, sweep_dir, parallel):
        _, manifest, _ = parallel
        assert manifest["version"] == 1
        assert manifest["kind"] == "sweep"
        assert manifest["scenario"] == "report-smoke"
        assert manifest["axes"] == [
            {"axis": "strategy", "values": ["dynahash", "statichash"]}
        ]
        assert [cell["id"] for cell in manifest["cells"]] == [
            "strategy=dynahash",
            "strategy=statichash",
        ]
        for cell in manifest["cells"]:
            assert (sweep_dir / cell["recording"]).exists()
            assert cell["passed"] is True
            assert cell["metrics"]["total_ops"] == 80.0
            assert cell["metrics"]["ops_per_sec"] > 0

    def test_recordings_parse_and_carry_traces(self, sweep_dir, parallel):
        _, manifest, _ = parallel
        for cell in manifest["cells"]:
            document = json.loads((sweep_dir / cell["recording"]).read_text())
            assert document["version"] == 1
            assert document["trace"]["series"]
            assert document["rebalances"]["count"] == 1

    def test_progress_fires_once_per_cell_in_grid_order(self, parallel):
        _, manifest, events = parallel
        assert events == [(cell["id"], True) for cell in manifest["cells"]]
