"""The fallback TOML parser: equivalence with tomllib and error reporting."""

from pathlib import Path

import pytest

from repro.scenario._toml import TOMLParseError, parse_toml_fallback

tomllib = pytest.importorskip("tomllib")

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "examples" / "scenarios"


@pytest.mark.parametrize(
    "path", sorted(SCENARIO_DIR.glob("*.toml")), ids=lambda p: p.stem
)
def test_fallback_matches_tomllib_on_committed_specs(path):
    """The 3.10 fallback and tomllib must agree on every committed spec."""
    text = path.read_text()
    assert parse_toml_fallback(text) == tomllib.loads(text)


def test_fallback_matches_tomllib_on_feature_kitchen_sink():
    text = """
    top = 1
    [a]
    string = "with # hash and \\" escape"
    integer = 1_000
    float = 0.25
    exponent = 1e6
    boolean = true
    array = [1, 2, 3]
    multiline = [
        "one",
        "two",
    ]
    inline = { x = 1, y = "two", z = 0.5 }
    [a.nested]
    k = "v"
    [[items]]
    name = "first"
    [items.sub]
    deep = true
    [[items]]
    name = "second"
    """
    assert parse_toml_fallback(text) == tomllib.loads(text)


@pytest.mark.parametrize(
    "bad, fragment",
    [
        ("key", "key = value"),
        ("[unclosed", "malformed"),
        ('x = "unterminated', "unterminated"),
        ("x = [1, 2", "unterminated"),
        ("x = 1\nx = 2", "duplicate"),
        ("x = nonsense", "cannot parse"),
    ],
)
def test_fallback_errors_are_actionable(bad, fragment):
    with pytest.raises(TOMLParseError, match=fragment):
        parse_toml_fallback(bad)
