"""Round-trip contract for every committed spec under examples/scenarios/.

Each spec must (1) parse and survive the mapping round trip, (2) run at
smoke scale without raising, and (3) replay to a zero-diff snapshot — the
determinism contract ``python -m repro replay`` enforces in CI at full
scale.  Checks tuned for full scale are *evaluated* but not asserted here
(a 40-op smoke run cannot trip the autopilot).
"""

from pathlib import Path

import pytest

from repro.scenario import (
    ScenarioSpec,
    diff_snapshots,
    load_scenario,
    run_scenario,
)

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
SPEC_PATHS = sorted(SCENARIO_DIR.glob("*.toml"))


def test_the_example_specs_are_committed():
    names = {path.stem for path in SPEC_PATHS}
    assert {
        "autopilot_storm",
        "elastic_scaling",
        "fault_tolerant_rebalance",
        "quickstart",
        "tpch_analytics",
        "traffic_storm",
    } <= names


@pytest.mark.parametrize("path", SPEC_PATHS, ids=lambda p: p.stem)
def test_spec_parses_and_round_trips(path):
    spec = load_scenario(path)
    assert spec.name == path.stem
    assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec


@pytest.mark.parametrize("path", SPEC_PATHS, ids=lambda p: p.stem)
def test_spec_runs_at_smoke_scale_and_replays_zero_diff(path):
    spec = load_scenario(path).scaled_down()
    first = run_scenario(spec)
    assert first.snapshot is not None
    replayed = run_scenario(spec, seed=first.seed)
    assert diff_snapshots(first.snapshot, replayed.snapshot) == []
