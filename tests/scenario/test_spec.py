"""Spec validation: strict keys, actionable messages, cross-field conflicts."""

import pytest

from repro.scenario import (
    ScenarioSpec,
    ScenarioSpecError,
    parse_bytes,
    parse_scenario,
)

MINIMAL = """
[scenario]
name = "minimal"

[workload]
initial_records = 10

[[workload.phases]]
name = "steady"
ops = 5
"""


def spec_from(text):
    return parse_scenario(text, "toml", "<test>")


class TestMinimalAndRoundTrip:
    def test_minimal_spec_parses(self):
        spec = spec_from(MINIMAL)
        assert spec.name == "minimal"
        assert spec.workload.phases[0].name == "steady"

    def test_mapping_round_trip_is_identity(self):
        spec = spec_from(MINIMAL)
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_full_spec_round_trips(self):
        text = """
        [scenario]
        name = "full"
        description = "everything at once"
        [cluster]
        nodes = 3
        partitions_per_node = 2
        seed = 7
        strategy = "dynahash"
        workload_scale = 2.0
        [cluster.lsm]
        memory_component_bytes = 32768
        [cluster.bucketing]
        max_bucket_bytes = 49152
        [[datasets]]
        name = "orders"
        primary_key = "o_orderkey"
        [[datasets.secondary_indexes]]
        name = "idx"
        fields = ["o_orderdate"]
        included_fields = ["o_custkey"]
        [tpch]
        scale_factor = 0.0002
        tables = ["orders"]
        [workload]
        dataset = "traffic"
        initial_records = 50
        mix = { read = 0.5, insert = 0.5 }
        [[workload.phases]]
        name = "steady"
        ops = 20
        [[steps]]
        kind = "rebalance"
        add = 1
        [checks]
        expect_nodes = 4
        """
        spec = spec_from(text)
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_json_and_toml_agree(self):
        import json

        spec = spec_from(MINIMAL)
        via_json = parse_scenario(json.dumps(spec.to_mapping()), "json")
        assert via_json == spec


class TestStrictKeys:
    def test_unknown_top_level_section(self):
        with pytest.raises(ScenarioSpecError, match=r"unknown key.*'wrkload'"):
            spec_from(MINIMAL + "\n[wrkload]\nx = 1\n")

    def test_unknown_cluster_key_names_section_and_allowed(self):
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from("[scenario]\nname = \"x\"\n[cluster]\nnode = 3\n")
        message = str(excinfo.value)
        assert "cluster" in message and "'node'" in message and "nodes" in message

    def test_unknown_workload_key_typo(self):
        with pytest.raises(ScenarioSpecError, match=r"workload.*initial_recrods"):
            spec_from(
                "[scenario]\nname = \"x\"\n[workload]\ninitial_recrods = 10\n"
            )

    def test_unknown_phase_key_carries_index(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "a"
        ops = 5
        [[workload.phases]]
        name = "b"
        ops = 5
        opps = 9
        """
        with pytest.raises(ScenarioSpecError, match=r"workload\.phases\[1\].*opps"):
            spec_from(text)

    def test_missing_required_name(self):
        with pytest.raises(ScenarioSpecError, match=r"scenario.*missing required.*name"):
            spec_from("[scenario]\ndescription = \"no name\"\n[workload]\n")

    def test_wrong_type_is_reported(self):
        with pytest.raises(ScenarioSpecError, match=r"cluster\.nodes.*expected int"):
            spec_from("[scenario]\nname = \"x\"\n[cluster]\nnodes = \"four\"\n[workload]\n")


class TestPhaseOrdering:
    def test_duplicate_phase_names_rejected(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "steady"
        ops = 5
        [[workload.phases]]
        name = "steady"
        ops = 5
        """
        with pytest.raises(ScenarioSpecError, match=r"unique.*steady"):
            spec_from(text)

    def test_all_zero_op_schedule_rejected(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "a"
        ops = 0
        [[workload.phases]]
        name = "b"
        ops = 0
        """
        with pytest.raises(ScenarioSpecError, match=r"no traffic"):
            spec_from(text)

    def test_two_rebalance_phases_rejected(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "a"
        ops = 5
        rebalance = { add = 1 }
        [[workload.phases]]
        name = "b"
        ops = 5
        rebalance = { remove = 1 }
        """
        with pytest.raises(ScenarioSpecError, match=r"at most one phase"):
            spec_from(text)

    def test_rebalance_needs_exactly_one_key(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "a"
        ops = 5
        rebalance = { add = 1, remove = 1 }
        """
        with pytest.raises(ScenarioSpecError, match=r"exactly one of add/remove/target_nodes"):
            spec_from(text)

    def test_negative_ops_rejected(self):
        text = """
        [scenario]
        name = "x"
        [workload]
        [[workload.phases]]
        name = "a"
        ops = -5
        """
        with pytest.raises(ScenarioSpecError, match=r"ops"):
            spec_from(text)


class TestConflictsAndRegistries:
    def test_autopilot_conflicts_with_scheduled_rebalance(self):
        text = """
        [scenario]
        name = "x"
        [autopilot]
        policy = "cost_aware"
        [workload]
        [[workload.phases]]
        name = "spike"
        ops = 5
        rebalance = { add = 1 }
        """
        with pytest.raises(ScenarioSpecError, match=r"autopilot.*spike"):
            spec_from(text)

    def test_dry_run_conflicts_with_rebalance_check(self):
        text = """
        [scenario]
        name = "x"
        [autopilot]
        policy = "cost_aware"
        dry_run = true
        [workload]
        [[workload.phases]]
        name = "a"
        ops = 5
        [checks]
        min_autopilot_rebalances = 1
        """
        with pytest.raises(ScenarioSpecError, match=r"dry_run"):
            spec_from(text)

    def test_autopilot_check_without_autopilot_section(self):
        with pytest.raises(ScenarioSpecError, match=r"min_autopilot_rebalances"):
            spec_from(MINIMAL + "\n[checks]\nmin_autopilot_rebalances = 1\n")

    def test_unknown_policy_lists_registered(self):
        text = "[scenario]\nname = \"x\"\n[autopilot]\npolicy = \"magic\"\n[workload]\n"
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from(text)
        assert "magic" in str(excinfo.value)
        assert "cost_aware" in str(excinfo.value)

    def test_conflicting_policy_options_fail_at_parse_time(self):
        text = """
        [scenario]
        name = "x"
        [autopilot]
        policy = "cost_aware"
        [autopilot.options]
        not_an_option = 1
        [workload]
        """
        with pytest.raises(ScenarioSpecError, match=r"cost_aware.*rejected"):
            spec_from(text)

    def test_unknown_strategy_lists_registered(self):
        text = "[scenario]\nname = \"x\"\n[cluster]\nstrategy = \"magic\"\n[workload]\n"
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from(text)
        assert "dynahash" in str(excinfo.value)

    def test_strategy_aliases_accepted(self):
        spec = spec_from(
            "[scenario]\nname = \"x\"\n[cluster]\nstrategy = \"static\"\n[workload]\n"
        )
        assert spec.cluster.strategy == "static"

    def test_bad_strategy_options_fail_at_parse_time(self):
        text = """
        [scenario]
        name = "x"
        [cluster]
        strategy = "static"
        [cluster.strategy_options]
        bogus = 3
        [workload]
        """
        with pytest.raises(ScenarioSpecError, match=r"cluster\.strategy"):
            spec_from(text)

    def test_unknown_mix_lists_presets(self):
        text = "[scenario]\nname = \"x\"\n[workload]\nmix = \"Z\"\n"
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from(text)
        assert "'Z'" in str(excinfo.value) and "A" in str(excinfo.value)

    def test_unknown_distribution_lists_choices(self):
        text = "[scenario]\nname = \"x\"\n[workload]\nkeys = \"gaussian\"\n"
        with pytest.raises(ScenarioSpecError, match=r"gaussian.*zipfian"):
            spec_from(text)


class TestSteps:
    def test_unknown_step_kind(self):
        with pytest.raises(ScenarioSpecError, match=r"steps\[0\]\.kind.*'resize'"):
            spec_from(MINIMAL + "\n[[steps]]\nkind = \"resize\"\n")

    def test_recover_without_expected_fault(self):
        with pytest.raises(ScenarioSpecError, match=r"recover.*expect_fault"):
            spec_from(MINIMAL + "\n[[steps]]\nkind = \"recover\"\n")

    def test_expect_fault_needs_fault_sites(self):
        text = MINIMAL + "\n[[steps]]\nkind = \"rebalance\"\nadd = 1\nexpect_fault = true\n"
        with pytest.raises(ScenarioSpecError, match=r"expect_fault.*fault_sites"):
            spec_from(text)

    def test_unknown_fault_site_lists_valid(self):
        text = (
            MINIMAL
            + "\n[[steps]]\nkind = \"rebalance\"\nadd = 1\n"
            + "fault_sites = [\"bogus_site\"]\nexpect_fault = true\n"
        )
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from(text)
        assert "bogus_site" in str(excinfo.value)
        assert "cc_fail_before_commit" in str(excinfo.value)

    def test_query_step_needs_tpch(self):
        with pytest.raises(ScenarioSpecError, match=r"query steps.*tpch"):
            spec_from(MINIMAL + "\n[[steps]]\nkind = \"query\"\nplan = \"q1\"\n")

    def test_fault_sites_without_expect_fault_rejected(self):
        text = (
            MINIMAL
            + "\n[[steps]]\nkind = \"rebalance\"\nadd = 1\n"
            + "fault_sites = [\"cc_fail_before_commit\"]\n"
        )
        with pytest.raises(ScenarioSpecError, match=r"expect_fault"):
            spec_from(text)

    def test_queries_identical_check_needs_repeated_plan(self):
        text = """
        [scenario]
        name = "x"
        [tpch]
        scale_factor = 0.0001
        [[steps]]
        kind = "query"
        plan = "q1"
        [checks]
        queries_identical_across_rebalance = true
        """
        with pytest.raises(ScenarioSpecError, match=r"before and after a rebalance"):
            spec_from(text)

    def test_queries_identical_check_needs_a_rebalance_between_occurrences(self):
        # Same plan twice but no completing rebalance between them: the check
        # could never pass, so the validator rejects it.
        text = """
        [scenario]
        name = "x"
        [tpch]
        scale_factor = 0.0001
        [[steps]]
        kind = "query"
        plan = "q1"
        [[steps]]
        kind = "query"
        plan = "q1"
        [checks]
        queries_identical_across_rebalance = true
        """
        with pytest.raises(ScenarioSpecError, match=r"could never pass"):
            spec_from(text)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioSpecError, match=r"nothing to do"):
            spec_from("[scenario]\nname = \"x\"\n")


class TestBytesAndOverrides:
    def test_parse_bytes_accepts_units(self):
        assert parse_bytes("32 KiB") == 32 * 1024
        assert parse_bytes("10GiB") == 10 * 1024**3
        assert parse_bytes("1 MB") == 1_000_000
        assert parse_bytes(4096) == 4096

    def test_parse_bytes_rejects_garbage(self):
        with pytest.raises(ScenarioSpecError, match=r"cluster\.lsm"):
            parse_bytes("lots", "cluster.lsm")

    def test_byte_strings_reach_the_lsm_config(self):
        spec = spec_from(
            "[scenario]\nname = \"x\"\n[cluster.lsm]\n"
            "memory_component_bytes = \"32 KiB\"\n[workload]\n"
        )
        assert spec.cluster.build_config().lsm.memory_component_bytes == 32 * 1024

    def test_seed_override(self):
        spec = spec_from(MINIMAL).with_overrides(seed=99)
        assert spec.cluster.build_config().seed == 99

    def test_strategy_override_drops_options(self):
        text = """
        [scenario]
        name = "x"
        [cluster]
        strategy = "static"
        [cluster.strategy_options]
        total_buckets = 64
        [workload]
        """
        spec = spec_from(text).with_overrides(strategy="dynahash")
        assert spec.cluster.strategy == "dynahash"
        assert dict(spec.cluster.strategy_options) == {}

    def test_scaled_down_caps_ops_and_preload(self):
        text = """
        [scenario]
        name = "x"
        [tpch]
        scale_factor = 0.01
        [workload]
        initial_records = 100000
        [[workload.phases]]
        name = "a"
        ops = 100000
        """
        smoke = spec_from(text).scaled_down(max_phase_ops=40, max_initial_records=100)
        assert smoke.workload.phases[0].ops == 40
        assert smoke.workload.initial_records == 100
        assert smoke.tpch.scale_factor <= 0.0004


class TestSweepSection:
    SWEPT = MINIMAL + """
[sweep]
jobs = 2
[sweep.axes]
strategy = ["dynahash", "statichash"]
seed = [1, 2]
"""

    def test_parses_ordered_axes_and_jobs(self):
        spec = spec_from(self.SWEPT)
        assert spec.sweep is not None
        assert spec.sweep.axes == (
            ("strategy", ("dynahash", "statichash")),
            ("seed", (1, 2)),
        )
        assert spec.sweep.jobs == 2

    def test_round_trips_through_the_mapping(self):
        spec = spec_from(self.SWEPT)
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec
        assert spec.to_mapping()["sweep"]["jobs"] == 2

    def test_absent_section_means_no_sweep(self):
        assert spec_from(MINIMAL).sweep is None
        assert "sweep" not in spec_from(MINIMAL).to_mapping()

    def test_unknown_axis_names_the_aliases_and_roots(self):
        text = MINIMAL + "[sweep.axes]\nbogus = [1]\n"
        with pytest.raises(ScenarioSpecError) as excinfo:
            spec_from(text)
        assert "sweep.axes.bogus" in str(excinfo.value)
        assert "workload_scale" in str(excinfo.value)

    def test_unknown_strategy_value_lists_the_registry(self):
        text = MINIMAL + '[sweep.axes]\nstrategy = ["nosuch"]\n'
        with pytest.raises(ScenarioSpecError, match="unknown strategy 'nosuch'"):
            spec_from(text)

    def test_non_integer_seed_value(self):
        text = MINIMAL + "[sweep.axes]\nseed = [1.5]\n"
        with pytest.raises(ScenarioSpecError, match="seeds must be integers"):
            spec_from(text)

    def test_empty_axis(self):
        text = MINIMAL + "[sweep.axes]\nseed = []\n"
        with pytest.raises(ScenarioSpecError, match="at least one value"):
            spec_from(text)

    def test_duplicate_axis_values(self):
        text = MINIMAL + "[sweep.axes]\nseed = [3, 3]\n"
        with pytest.raises(ScenarioSpecError, match="unique"):
            spec_from(text)

    def test_jobs_below_one(self):
        text = MINIMAL + "[sweep]\njobs = 0\n"
        with pytest.raises(ScenarioSpecError, match=r"sweep\.jobs"):
            spec_from(text)


class TestWriteP99BudgetSpec:
    def test_parses_per_phase_budgets(self):
        text = MINIMAL + "[checks]\nwrite_p99_budget_ms = { steady = 5.0, rebalance = 25.0 }\n"
        spec = spec_from(text)
        assert spec.checks.write_p99_budget_ms == {"steady": 5.0, "rebalance": 25.0}
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_empty_budgets_stay_out_of_the_mapping(self):
        spec = spec_from(MINIMAL)
        assert "write_p99_budget_ms" not in spec.checks.to_mapping()

    def test_unknown_phase(self):
        text = MINIMAL + "[checks]\nwrite_p99_budget_ms = { warmup = 5.0 }\n"
        with pytest.raises(ScenarioSpecError, match="warmup"):
            spec_from(text)

    def test_non_positive_budget(self):
        text = MINIMAL + "[checks]\nwrite_p99_budget_ms = { steady = 0.0 }\n"
        with pytest.raises(ScenarioSpecError, match="positive milliseconds"):
            spec_from(text)

    def test_boolean_budget_rejected(self):
        text = MINIMAL + "[checks]\nwrite_p99_budget_ms = { steady = true }\n"
        with pytest.raises(ScenarioSpecError, match="positive milliseconds"):
            spec_from(text)
