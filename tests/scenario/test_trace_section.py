"""The [trace] spec section, recording embedding, and trace diffing."""

import json

import pytest

from repro.scenario import (
    ScenarioSpecError,
    TraceSection,
    diff_traces,
    load_recording,
    parse_scenario,
    recording_payload,
    run_scenario,
    spec_from_recording,
    write_recording,
)

TRACED_SPEC = """\
[scenario]
name = "traced"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 13

[trace]
sample_interval_seconds = 0.5

[workload]
dataset = "t"
initial_records = 120

[[workload.phases]]
name = "steady"
ops = 60
"""


class TestTraceSection:
    def test_defaults(self):
        section = TraceSection.from_mapping({})
        assert section.enabled is True
        assert section.sample_interval_seconds == 0.25

    def test_round_trip_preserves_presence(self):
        # All-defaults [trace] must survive to_mapping: its *presence*
        # enables tracing, so dropping it would untrace the replay.
        section = TraceSection.from_mapping({})
        assert TraceSection.from_mapping(section.to_mapping()) == section
        assert "enabled" in section.to_mapping()

    def test_non_default_interval_round_trips(self):
        section = TraceSection.from_mapping({"sample_interval_seconds": 0.5})
        assert section.to_mapping()["sample_interval_seconds"] == 0.5
        assert TraceSection.from_mapping(section.to_mapping()) == section

    def test_rejects_unknown_keys_and_bad_interval(self):
        with pytest.raises(ScenarioSpecError):
            TraceSection.from_mapping({"cadence": 1})
        with pytest.raises(ScenarioSpecError):
            TraceSection.from_mapping({"sample_interval_seconds": 0})

    def test_spec_parses_and_round_trips_the_section(self):
        spec = parse_scenario(TRACED_SPEC)
        assert spec.trace is not None
        assert spec.trace.enabled
        assert spec.trace.sample_interval_seconds == 0.5
        again = type(spec).from_mapping(spec.to_mapping())
        assert again.trace == spec.trace

    def test_untraced_spec_has_no_section(self):
        spec = parse_scenario(TRACED_SPEC.replace("[trace]\nsample_interval_seconds = 0.5\n", ""))
        assert spec.trace is None
        assert "trace" not in spec.to_mapping()


class TestRecordingEmbed:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(parse_scenario(TRACED_SPEC))

    def test_run_produces_a_trace(self, result):
        assert result.trace is not None
        assert result.trace["version"] == 1
        assert result.trace["scenario"] == "traced"
        assert result.trace["seed"] == 13
        assert result.trace["interval_seconds"] == 0.5

    def test_payload_embeds_trace_at_version_1(self, result):
        payload = recording_payload(result)
        assert payload["version"] == 1
        assert payload["trace"] == result.trace

    def test_untraced_recording_has_no_trace_key(self):
        untraced = run_scenario(
            parse_scenario(
                TRACED_SPEC.replace("[trace]\nsample_interval_seconds = 0.5\n", "")
            )
        )
        assert "trace" not in recording_payload(untraced)

    def test_written_recording_round_trips(self, result, tmp_path):
        path = write_recording(result, tmp_path / "rec.json")
        document = load_recording(path)
        assert diff_traces(document["trace"], result.trace) == []
        spec = spec_from_recording(document)
        assert spec.trace is not None  # replays re-enable tracing


class TestDiffTraces:
    def payload(self, **overrides):
        base = {
            "version": 1,
            "scenario": "unit",
            "seed": 1,
            "interval_seconds": 0.25,
            "spans": [
                {"id": 0, "parent": None, "name": "session", "cat": "session",
                 "start": 0.0, "dur": 1.0, "attrs": {}},
            ],
            "series": [{"name": "g", "times": [0.0], "values": [1.0]}],
            "heat": {"read": [["t", "0", 3]], "write": []},
        }
        base.update(overrides)
        return base

    def test_equal_payloads_diff_empty(self):
        assert diff_traces(self.payload(), self.payload()) == []

    def test_both_none_is_equal(self):
        assert diff_traces(None, None) == []

    def test_one_sided_trace_is_reported(self):
        assert diff_traces(self.payload(), None) == ["trace: missing from the replay"]
        assert diff_traces(None, self.payload()) == ["trace: missing from the recording"]

    def test_tuple_list_representation_does_not_diff(self):
        left = self.payload()
        right = json.loads(json.dumps(self.payload()))
        right["heat"]["read"] = [("t", "0", 3)]
        assert diff_traces(left, right) == []

    def test_span_divergence_is_localised(self):
        changed = self.payload()
        changed["spans"] = [dict(changed["spans"][0], dur=2.0)]
        differences = diff_traces(self.payload(), changed)
        assert any("trace.spans[0]" in line for line in differences)

    def test_series_divergence_names_the_series(self):
        changed = self.payload(series=[{"name": "g", "times": [0.0], "values": [9.0]}])
        differences = diff_traces(self.payload(), changed)
        assert any("trace.series[g]" in line for line in differences)

    def test_heat_divergence_is_reported(self):
        changed = self.payload(heat={"read": [], "write": []})
        assert "trace.heat: per-bucket heat tables differ" in diff_traces(
            self.payload(), changed
        )
