"""Recordings: persistence round trip, replay zero-diff, divergence reporting."""

import json

import pytest

from repro.scenario import (
    diff_snapshots,
    load_recording,
    parse_scenario,
    recording_payload,
    run_scenario,
    snapshot_from_recording,
    spec_from_recording,
    write_recording,
)
from repro.scenario.spec import ScenarioSpecError

SPEC_TEXT = """
[scenario]
name = "rec"

[cluster]
nodes = 3
partitions_per_node = 2
[cluster.lsm]
memory_component_bytes = "32 KiB"

[workload]
initial_records = 80
mix = "A"

[[workload.phases]]
name = "steady"
ops = 60
"""


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    result = run_scenario(parse_scenario(SPEC_TEXT))
    path = tmp_path_factory.mktemp("recordings") / "rec.json"
    write_recording(result, path)
    return result, path


class TestRecording:
    def test_payload_is_json_serialisable_and_versioned(self, recorded):
        result, _ = recorded
        payload = recording_payload(result)
        text = json.dumps(payload)  # must not raise
        assert json.loads(text)["version"] == 1
        assert payload["seed"] == result.seed

    def test_written_recording_loads_and_restores_both_halves(self, recorded):
        result, path = recorded
        document = load_recording(path)
        assert spec_from_recording(document) == result.spec
        assert snapshot_from_recording(document) == result.snapshot

    def test_replaying_the_embedded_spec_reports_zero_diff(self, recorded):
        result, path = recorded
        document = load_recording(path)
        replayed = run_scenario(spec_from_recording(document), seed=document["seed"])
        assert diff_snapshots(snapshot_from_recording(document), replayed.snapshot) == []

    def test_missing_recording_is_actionable(self, tmp_path):
        with pytest.raises(ScenarioSpecError, match="not found"):
            load_recording(tmp_path / "nope.json")

    def test_non_recording_json_is_actionable(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ScenarioSpecError, match="not a scenario recording"):
            load_recording(path)

    def test_unsupported_version_is_rejected(self, recorded, tmp_path):
        result, _ = recorded
        payload = recording_payload(result)
        payload["version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ScenarioSpecError, match="version 99"):
            load_recording(path)


class TestDiff:
    def test_identical_snapshots_diff_empty(self, recorded):
        result, _ = recorded
        assert diff_snapshots(result.snapshot, result.snapshot) == []

    def test_counter_divergence_is_named(self, recorded):
        result, path = recorded
        document = load_recording(path)
        document["snapshot"]["counters"]["ops.total"] += 1
        perturbed = snapshot_from_recording(document)
        differences = diff_snapshots(perturbed, result.snapshot)
        assert any("counters[ops.total]" in line for line in differences)

    def test_missing_histogram_is_named(self, recorded):
        result, path = recorded
        document = load_recording(path)
        key, _ = sorted(document["snapshot"]["histograms"].items())[0]
        del document["snapshot"]["histograms"][key]
        perturbed = snapshot_from_recording(document)
        differences = diff_snapshots(perturbed, result.snapshot)
        assert any(key in line and "only in the replay" in line for line in differences)

    def test_simulated_time_divergence_is_named(self, recorded):
        result, path = recorded
        document = load_recording(path)
        document["snapshot"]["simulated_seconds"] += 1.0
        perturbed = snapshot_from_recording(document)
        differences = diff_snapshots(perturbed, result.snapshot)
        assert any("simulated_seconds" in line for line in differences)
