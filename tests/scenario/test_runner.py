"""The scenario runner: compilation onto the API, checks, determinism."""

import pytest

from repro.scenario import (
    diff_snapshots,
    parse_scenario,
    run_scenario,
)

STORM = """
[scenario]
name = "storm"

[cluster]
nodes = 3
partitions_per_node = 2
[cluster.lsm]
memory_component_bytes = "32 KiB"
[cluster.bucketing]
max_bucket_bytes = "48 KiB"

[workload]
initial_records = 120
mix = "A"

[[workload.phases]]
name = "warmup"
ops = 30
keys = "uniform"

[[workload.phases]]
name = "spike"
ops = 50
keys = "hotspot"
rebalance = { add = 1 }

[checks]
expect_nodes = 4
min_total_ops = 80
rebalance_write_p99_gte_steady = true
"""


@pytest.fixture(scope="module")
def storm_result():
    return run_scenario(parse_scenario(STORM))


class TestRun:
    def test_workload_and_rebalance_execute(self, storm_result):
        assert storm_result.nodes_before == 3
        assert storm_result.nodes_after == 4
        assert storm_result.total_ops == 80

    def test_checks_evaluate_and_pass(self, storm_result):
        assert [c.name for c in storm_result.checks] == [
            "expect_nodes",
            "min_total_ops",
            "rebalance_write_p99_gte_steady",
        ]
        assert storm_result.passed

    def test_snapshot_and_describe_captured(self, storm_result):
        assert storm_result.snapshot is not None
        assert storm_result.snapshot.counters["ops.total"] > 0
        assert storm_result.describe["nodes"] == 4
        assert "traffic" in storm_result.describe["datasets"]

    def test_render_mentions_checks_and_phases(self, storm_result):
        text = storm_result.render()
        assert "check expect_nodes: PASS" in text
        assert "tail latency by cluster phase" in text
        assert "scenario 'storm' OK" in text

    def test_failing_check_reported_not_raised(self):
        spec = parse_scenario(STORM.replace("expect_nodes = 4", "expect_nodes = 9"))
        result = run_scenario(spec)
        assert not result.passed
        failed = [c for c in result.checks if not c.passed]
        assert failed[0].name == "expect_nodes"
        assert "9" in failed[0].detail
        assert "FAIL" in result.render()


class TestDeterminism:
    def test_same_spec_same_seed_identical_snapshot(self):
        spec = parse_scenario(STORM)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.snapshot == second.snapshot
        assert diff_snapshots(first.snapshot, second.snapshot) == []

    def test_seed_override_changes_the_run(self):
        spec = parse_scenario(STORM)
        baseline = run_scenario(spec)
        reseeded = run_scenario(spec, seed=31337)
        assert reseeded.seed == 31337
        assert diff_snapshots(baseline.snapshot, reseeded.snapshot) != []


class TestStepsAndChecks:
    def test_datasets_and_steps(self):
        spec = parse_scenario(
            """
            [scenario]
            name = "steps"
            [cluster]
            nodes = 3
            partitions_per_node = 2
            [[datasets]]
            name = "orders"
            primary_key = "o_orderkey"
            [[datasets.secondary_indexes]]
            name = "idx"
            fields = ["o_orderdate"]
            [workload]
            initial_records = 60
            [[workload.phases]]
            name = "steady"
            ops = 20
            [[steps]]
            kind = "rebalance"
            remove = 1
            [checks]
            expect_nodes = 2
            datasets_unchanged_after_steps = true
            """
        )
        result = run_scenario(spec)
        assert result.passed
        assert [o.kind for o in result.step_outcomes] == ["rebalance"]
        assert "records moved" in result.step_outcomes[0].detail
        assert set(result.describe["datasets"]) == {"orders", "traffic"}

    def test_fault_injection_and_recovery_steps(self):
        spec = parse_scenario(
            """
            [scenario]
            name = "faulty"
            [cluster]
            nodes = 3
            partitions_per_node = 2
            workload_scale = 1000.0
            [tpch]
            scale_factor = 0.0002
            tables = ["orders"]
            [[steps]]
            kind = "rebalance"
            target_nodes = 2
            fault_sites = ["cc_fail_before_commit"]
            expect_fault = true
            [[steps]]
            kind = "recover"
            [checks]
            expect_nodes = 3
            datasets_unchanged_after_steps = true
            """
        )
        result = run_scenario(spec)
        assert result.passed
        assert "injected fault" in result.step_outcomes[0].detail
        assert result.step_outcomes[1].kind == "recover"

    def test_unexpected_fault_completion_fails_the_check(self):
        # With no datasets there are no per-dataset protocol operations, so
        # the registered site never fires; the runner records a failing
        # expect_fault check instead of raising.
        spec = parse_scenario(
            """
            [scenario]
            name = "no-fault"
            [cluster]
            nodes = 3
            partitions_per_node = 2
            [[steps]]
            kind = "rebalance"
            add = 1
            fault_sites = ["cc_fail_before_commit"]
            expect_fault = true
            """
        )
        result = run_scenario(spec)
        assert not result.passed
        assert result.checks[0].name == "expect_fault"
        assert "never fired" in result.checks[0].detail

    def test_query_steps_and_identity_check(self):
        spec = parse_scenario(
            """
            [scenario]
            name = "analytics"
            [cluster]
            nodes = 3
            partitions_per_node = 2
            workload_scale = 1000.0
            [tpch]
            scale_factor = 0.0002
            [[steps]]
            kind = "query"
            plan = "q6"
            [[steps]]
            kind = "rebalance"
            remove = 1
            [[steps]]
            kind = "query"
            plan = "q6"
            [checks]
            queries_identical_across_rebalance = true
            """
        )
        result = run_scenario(spec)
        assert result.passed, [c.detail for c in result.checks]
        query_outcomes = [o for o in result.step_outcomes if o.kind == "query"]
        assert len(query_outcomes) == 2
