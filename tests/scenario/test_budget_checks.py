"""Per-phase write-p99 budgets and the rebalance movement totals."""

import pytest

from repro.scenario import parse_scenario, recording_payload, run_scenario

BUDGETED = """
[scenario]
name = "budgeted"

[cluster]
nodes = 3
partitions_per_node = 2
seed = 9
[cluster.lsm]
memory_component_bytes = "32 KiB"
[cluster.bucketing]
max_bucket_bytes = "48 KiB"

[workload]
initial_records = 120
mix = "A"

[[workload.phases]]
name = "steady"
ops = 40

[[workload.phases]]
name = "shrink"
ops = 40
rebalance = { remove = 1 }

[checks]
write_p99_budget_ms = { steady = 5000.0, rebalance = 5000.0 }
"""


@pytest.fixture(scope="module")
def budgeted_result():
    return run_scenario(parse_scenario(BUDGETED))


class TestWriteP99Budget:
    def test_generous_budgets_pass_per_phase(self, budgeted_result):
        by_name = {check.name: check for check in budgeted_result.checks}
        for phase in ("steady", "rebalance"):
            check = by_name[f"write_p99_budget_ms.{phase}"]
            assert check.passed, check.detail
            assert "ms vs budget" in check.detail

    def test_tiny_budget_fails_with_the_observed_value(self):
        text = BUDGETED.replace(
            "write_p99_budget_ms = { steady = 5000.0, rebalance = 5000.0 }",
            "write_p99_budget_ms = { steady = 0.0000001 }",
        )
        result = run_scenario(parse_scenario(text))
        check = next(c for c in result.checks if c.name == "write_p99_budget_ms.steady")
        assert not check.passed
        assert "vs budget 0.000 ms" in check.detail
        assert not result.passed

    def test_budget_without_a_population_fails_loudly(self):
        # A rebalance-phase budget on a scenario that never rebalances:
        # absent evidence is a failure, not a pass.
        text = BUDGETED.replace('rebalance = { remove = 1 }\n', "").replace(
            "write_p99_budget_ms = { steady = 5000.0, rebalance = 5000.0 }",
            "write_p99_budget_ms = { rebalance = 5.0 }",
        )
        result = run_scenario(parse_scenario(text))
        check = next(c for c in result.checks if c.name == "write_p99_budget_ms.rebalance")
        assert not check.passed
        assert "no write-latency population for the rebalance phase" in check.detail

    def test_budget_outcome_renders(self, budgeted_result):
        assert "write_p99_budget_ms.steady" in budgeted_result.render()


class TestRebalanceTotals:
    def test_result_accumulates_movement(self, budgeted_result):
        totals = budgeted_result.rebalances
        assert totals["count"] == 1
        assert totals["simulated_seconds"] > 0
        assert totals["records_moved"] > 0
        assert totals["bytes_shipped"] > 0
        assert totals["buckets_moved"] > 0

    def test_totals_reach_the_recording_and_render(self, budgeted_result):
        payload = recording_payload(budgeted_result)
        assert payload["rebalances"] == dict(budgeted_result.rebalances)
        assert "rebalance totals:" in budgeted_result.render()

    def test_no_rebalance_means_no_totals_key(self):
        text = BUDGETED.replace('rebalance = { remove = 1 }\n', "").replace(
            "write_p99_budget_ms = { steady = 5000.0, rebalance = 5000.0 }",
            "write_p99_budget_ms = { steady = 5000.0 }",
        )
        result = run_scenario(parse_scenario(text))
        assert result.rebalances == {}
        assert "rebalances" not in recording_payload(result)
        assert "rebalance totals:" not in result.render()
