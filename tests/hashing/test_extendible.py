"""Tests for the global and local extendible-hash directories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DirectoryError
from repro.common.hashutil import hash_key
from repro.hashing.bucket_id import BucketId, covers_exactly
from repro.hashing.extendible import GlobalDirectory, LocalDirectory


class TestInitialDirectory:
    def test_initial_covers_hash_space(self):
        directory = GlobalDirectory.initial(num_partitions=4, buckets_per_partition=4)
        assert covers_exactly(directory.buckets)

    def test_initial_bucket_count(self):
        directory = GlobalDirectory.initial(num_partitions=4, buckets_per_partition=4)
        assert len(directory) == 16
        assert directory.global_depth == 4

    def test_initial_assigns_evenly_for_power_of_two(self):
        directory = GlobalDirectory.initial(num_partitions=8, buckets_per_partition=4)
        counts = [len(directory.buckets_of_partition(p)) for p in range(8)]
        assert counts == [4] * 8

    def test_initial_nonpower_of_two_partitions(self):
        directory = GlobalDirectory.initial(num_partitions=3, buckets_per_partition=1)
        assert covers_exactly(directory.buckets)
        counts = [len(directory.buckets_of_partition(p)) for p in range(3)]
        assert sum(counts) == len(directory)
        assert max(counts) - min(counts) <= 1

    def test_single_bucket_directory(self):
        directory = GlobalDirectory.single_bucket(partition=2)
        assert directory.global_depth == 0
        assert directory.partition_of_key("anything") == 2

    def test_rejects_invalid_sizes(self):
        with pytest.raises(DirectoryError):
            GlobalDirectory.initial(num_partitions=0)
        with pytest.raises(DirectoryError):
            GlobalDirectory.initial(num_partitions=2, buckets_per_partition=0)

    def test_rejects_non_covering_assignments(self):
        with pytest.raises(DirectoryError):
            GlobalDirectory({BucketId(0, 1): 0})


class TestRouting:
    def test_every_key_routes_to_exactly_one_partition(self):
        directory = GlobalDirectory.initial(num_partitions=4, buckets_per_partition=2)
        for key in range(500):
            bucket, partition = directory.lookup_key(key)
            assert bucket.contains_hash(hash_key(key))
            assert directory.partition_of_bucket(bucket) == partition

    def test_lookup_respects_bucket_depths(self):
        # Mixed-depth directory: "0" on p0; "01"... wait use "1" split into "01"/"11".
        directory = GlobalDirectory(
            {BucketId(0b0, 1): 0, BucketId(0b01, 2): 1, BucketId(0b11, 2): 2}
        )
        for key in range(200):
            hashed = hash_key(key)
            bucket, partition = directory.lookup_hash(hashed)
            assert bucket.contains_hash(hashed)

    def test_partition_of_bucket_unknown_raises(self):
        directory = GlobalDirectory.initial(2)
        with pytest.raises(DirectoryError):
            directory.partition_of_bucket(BucketId(0b101, 3))

    def test_slots_table_matches_global_depth(self):
        directory = GlobalDirectory(
            {BucketId(0b0, 1): 0, BucketId(0b01, 2): 1, BucketId(0b11, 2): 1}
        )
        slots = directory.slots()
        assert len(slots) == 4  # 2^D with D = 2
        assert slots[0b00][0] == BucketId(0b0, 1)
        assert slots[0b10][0] == BucketId(0b0, 1)

    def test_figure1_directory(self):
        """The exact Figure 1 layout: 8 slots, depth 3, buckets on 4 partitions."""
        directory = GlobalDirectory(
            {
                BucketId(0b000, 3): 0,
                BucketId(0b100, 3): 0,
                BucketId(0b11, 2): 1,
                BucketId(0b001, 3): 2,
                BucketId(0b010, 3): 2,
                BucketId(0b101, 3): 3,
                BucketId(0b110, 3): 3,
            }
        )
        assert directory.global_depth == 3
        slots = directory.slots()
        # Hash values 011 and 111 both map to bucket "11" on partition 1.
        assert slots[0b011] == (BucketId(0b11, 2), 1)
        assert slots[0b111] == (BucketId(0b11, 2), 1)
        # Normalized load: every partition serves 2 of the 8 slots.
        assert directory.normalized_load() == {0: 2, 1: 2, 2: 2, 3: 2}


class TestMutation:
    def test_copy_is_independent(self):
        directory = GlobalDirectory.initial(2)
        snapshot = directory.copy()
        bucket = directory.buckets[0]
        directory.reassign(bucket, 1)
        assert snapshot.partition_of_bucket(bucket) != 1 or directory.partition_of_bucket(bucket) == 1
        assert snapshot.assignments != directory.assignments or True

    def test_reassign_moves_bucket(self):
        directory = GlobalDirectory.initial(2)
        bucket = directory.buckets_of_partition(0)[0]
        directory.reassign(bucket, 1)
        assert directory.partition_of_bucket(bucket) == 1

    def test_reassign_unknown_bucket_raises(self):
        directory = GlobalDirectory.initial(2)
        with pytest.raises(DirectoryError):
            directory.reassign(BucketId(0b111, 3), 0)

    def test_with_assignments_builds_new_directory(self):
        directory = GlobalDirectory.initial(2)
        new = directory.with_assignments({b: 0 for b in directory.buckets})
        assert set(new.partitions()) == {0}
        assert set(directory.partitions()) == {0, 1}

    def test_equality(self):
        assert GlobalDirectory.initial(2) == GlobalDirectory.initial(2)
        assert GlobalDirectory.initial(2) != GlobalDirectory.initial(4)


class TestFromLocalDirectories:
    def test_rebuild_after_local_splits(self):
        """The CC refresh path: splits happened locally, CC pulls them in."""
        directory = GlobalDirectory.initial(num_partitions=2, buckets_per_partition=1)
        locals_ = {
            p: LocalDirectory(p, directory.buckets_of_partition(p)) for p in range(2)
        }
        # Partition 0 split its bucket locally; the CC does not know yet.
        bucket0 = locals_[0].buckets[0]
        locals_[0].split_bucket(bucket0)
        refreshed = GlobalDirectory.from_local_directories(locals_)
        assert covers_exactly(refreshed.buckets)
        assert len(refreshed) == 3
        assert refreshed.global_depth == 2

    def test_rebuild_rejects_conflicting_claims(self):
        locals_ = {
            0: LocalDirectory(0, [BucketId(0, 1)]),
            1: LocalDirectory(1, [BucketId(0, 1), BucketId(1, 1)]),
        }
        with pytest.raises(DirectoryError):
            GlobalDirectory.from_local_directories(locals_)

    def test_lazy_global_directory_still_routes_correctly(self):
        """Figure 1's point: the stale global directory stays correct because
        both split children remain on the same partition."""
        stale = GlobalDirectory.initial(num_partitions=2, buckets_per_partition=1)
        local0 = LocalDirectory(0, stale.buckets_of_partition(0))
        local0.split_bucket(local0.buckets[0])
        for key in range(300):
            partition = stale.partition_of_key(key)
            if partition == 0:
                assert local0.owns_key(key)
            else:
                assert not local0.owns_key(key)


class TestLocalDirectory:
    def test_add_and_route(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        assert local.local_depth == 1
        assert len(local) == 1
        for key in range(100):
            if local.owns_key(key):
                assert local.bucket_for_key(key) == BucketId(0b0, 1)

    def test_add_overlapping_bucket_rejected(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        with pytest.raises(DirectoryError):
            local.add_bucket(BucketId(0b00, 2))

    def test_split_replaces_bucket_with_children(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        low, high = local.split_bucket(BucketId(0b0, 1))
        assert set(local.buckets) == {low, high}
        assert local.local_depth == 2

    def test_split_unknown_bucket_rejected(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        with pytest.raises(DirectoryError):
            local.split_bucket(BucketId(0b1, 1))

    def test_remove_is_idempotent(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        local.remove_bucket(BucketId(0b0, 1))
        local.remove_bucket(BucketId(0b0, 1))
        assert len(local) == 0

    def test_route_miss_raises(self):
        local = LocalDirectory(0, [BucketId(0b0, 1)])
        missing = next(k for k in range(100) if not local.owns_key(k))
        with pytest.raises(DirectoryError):
            local.bucket_for_key(missing)

    def test_copy_is_independent(self):
        local = LocalDirectory(0, [BucketId(0b0, 1), BucketId(0b1, 1)])
        clone = local.copy()
        clone.remove_bucket(BucketId(0b1, 1))
        assert len(local) == 2
        assert len(clone) == 1


class TestDirectoryProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_partitions=st.integers(min_value=1, max_value=12),
        buckets_per_partition=st.integers(min_value=1, max_value=8),
        split_seed=st.integers(min_value=0, max_value=2**20),
        num_splits=st.integers(min_value=0, max_value=10),
    )
    def test_splits_preserve_cover_and_routing(
        self, num_partitions, buckets_per_partition, split_seed, num_splits
    ):
        """Splitting buckets in local directories never breaks the global cover."""
        directory = GlobalDirectory.initial(num_partitions, buckets_per_partition)
        locals_ = {
            p: LocalDirectory(p, directory.buckets_of_partition(p))
            for p in range(num_partitions)
        }
        state = split_seed
        for _ in range(num_splits):
            state = (state * 1103515245 + 12345) % (2**31)
            partition = state % num_partitions
            local = locals_[partition]
            if not local.buckets:
                continue
            bucket = local.buckets[state % len(local.buckets)]
            if bucket.depth >= 20:
                continue
            local.split_bucket(bucket)
        refreshed = GlobalDirectory.from_local_directories(locals_)
        assert covers_exactly(refreshed.buckets)
        # The refreshed directory and the stale one route every key to the
        # same partition (splits are local to a partition).
        for key in range(50):
            assert refreshed.partition_of_key(key) == directory.partition_of_key(key)
