"""Tests for the deterministic partitioners."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.hashing.extendible import GlobalDirectory
from repro.hashing.partitioners import (
    DirectoryPartitioner,
    HashModuloPartitioner,
    RangePartitioner,
)


class TestHashModulo:
    def test_partition_in_range(self):
        partitioner = HashModuloPartitioner(8)
        assert all(0 <= partitioner.partition_of(k) < 8 for k in range(1000))

    def test_deterministic(self):
        partitioner = HashModuloPartitioner(8)
        assert partitioner.partition_of("k") == partitioner.partition_of("k")

    def test_roughly_uniform(self):
        partitioner = HashModuloPartitioner(4)
        counts = [0] * 4
        for key in range(8000):
            counts[partitioner.partition_of(key)] += 1
        assert max(counts) / min(counts) < 1.2

    def test_invalid_partition_count(self):
        with pytest.raises(ConfigError):
            HashModuloPartitioner(0)

    def test_moved_fraction_is_high_when_n_changes(self):
        """The motivation for DynaHash: modulo rehashing moves nearly everything."""
        partitioner = HashModuloPartitioner(16)
        moved = partitioner.moved_fraction(new_num_partitions=20)
        assert moved > 0.7

    def test_moved_fraction_zero_when_unchanged(self):
        partitioner = HashModuloPartitioner(8)
        assert partitioner.moved_fraction(8) == 0.0

    @given(st.integers(min_value=1, max_value=64), st.integers())
    def test_partition_always_valid(self, n, key):
        assert 0 <= HashModuloPartitioner(n).partition_of(key) < n


class TestDirectoryPartitioner:
    def test_routes_through_directory(self):
        directory = GlobalDirectory.initial(num_partitions=4, buckets_per_partition=2)
        partitioner = DirectoryPartitioner(directory)
        for key in range(200):
            assert partitioner.partition_of(key) == directory.partition_of_key(key)

    def test_num_partitions(self):
        directory = GlobalDirectory.initial(num_partitions=4, buckets_per_partition=2)
        assert DirectoryPartitioner(directory).num_partitions == 4

    def test_agreement_with_modulo_is_not_required(self):
        # Directory routing and modulo routing are different functions; this
        # documents that DynaHash changes the partitioning function shape.
        directory = GlobalDirectory.initial(num_partitions=4)
        directory_partitioner = DirectoryPartitioner(directory)
        modulo = HashModuloPartitioner(4)
        disagreements = sum(
            1 for key in range(500) if directory_partitioner.partition_of(key) != modulo.partition_of(key)
        )
        assert disagreements >= 0  # both are valid partitioners


class TestRangePartitioner:
    def test_partition_by_split_points(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.partition_of(5) == 0
        assert partitioner.partition_of(10) == 0
        assert partitioner.partition_of(15) == 1
        assert partitioner.partition_of(100) == 2
        assert partitioner.num_partitions == 3

    def test_unsorted_split_points_rejected(self):
        with pytest.raises(ConfigError):
            RangePartitioner([20, 10])

    def test_uniform_over_ints(self):
        partitioner = RangePartitioner.uniform_over_ints(0, 99, 4)
        counts = [0] * 4
        for key in range(100):
            counts[partitioner.partition_of(key)] += 1
        assert counts == [25, 25, 25, 25]

    def test_uniform_invalid_args(self):
        with pytest.raises(ConfigError):
            RangePartitioner.uniform_over_ints(0, 10, 0)
        with pytest.raises(ConfigError):
            RangePartitioner.uniform_over_ints(10, 0, 2)

    def test_skew_detects_hot_range(self):
        """Skewed keys concentrate in one range partition but spread under hashing
        — the paper's argument for hash partitioning in OLAP systems."""
        partitioner = RangePartitioner.uniform_over_ints(0, 1000, 4)
        skewed_keys = list(range(0, 120))  # all in the first range
        assert partitioner.skew(skewed_keys) > 3.0
        hash_partitioner = HashModuloPartitioner(4)
        counts = [0] * 4
        for key in skewed_keys:
            counts[hash_partitioner.partition_of(key)] += 1
        hash_skew = max(counts) / (sum(counts) / 4)
        assert hash_skew < 2.0

    def test_skew_of_empty_sample_is_one(self):
        assert RangePartitioner([5]).skew([]) == 1.0
