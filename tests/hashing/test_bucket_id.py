"""Tests for extendible-hash bucket identities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DirectoryError
from repro.common.hashutil import hash_key
from repro.hashing.bucket_id import ROOT_BUCKET, BucketId, bucket_for_key, covers_exactly


class TestConstruction:
    def test_root_bucket(self):
        assert ROOT_BUCKET.depth == 0
        assert ROOT_BUCKET.label == "*"

    def test_label_zero_pads_to_depth(self):
        assert BucketId(0b011, 3).label == "011"
        assert BucketId(0b11, 2).label == "11"

    def test_rejects_negative_depth(self):
        with pytest.raises(DirectoryError):
            BucketId(0, -1)

    def test_rejects_prefix_wider_than_depth(self):
        with pytest.raises(DirectoryError):
            BucketId(0b100, 2)

    def test_rejects_excessive_depth(self):
        with pytest.raises(DirectoryError):
            BucketId(0, 64)

    def test_ordering_and_equality(self):
        assert BucketId(0, 1) == BucketId(0, 1)
        assert BucketId(0, 1) < BucketId(1, 1)


class TestMembership:
    def test_root_contains_everything(self):
        assert ROOT_BUCKET.contains_hash(0)
        assert ROOT_BUCKET.contains_hash(2**64 - 1)
        assert ROOT_BUCKET.contains_key("anything")

    def test_contains_hash_uses_low_bits(self):
        bucket = BucketId(0b10, 2)
        assert bucket.contains_hash(0b110)
        assert not bucket.contains_hash(0b111)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=1, max_value=12))
    def test_each_hash_belongs_to_exactly_one_sibling(self, hash_value, depth):
        buckets = [BucketId(prefix, depth) for prefix in range(1 << depth)]
        owners = [b for b in buckets if b.contains_hash(hash_value)]
        assert len(owners) == 1


class TestSplit:
    def test_split_matches_paper_figure3(self):
        # Bucket "11" (depth 2) splits into "011" and "111" (depth 3).
        low, high = BucketId(0b11, 2).split()
        assert low == BucketId(0b011, 3)
        assert high == BucketId(0b111, 3)

    def test_split_children_partition_the_parent(self):
        parent = BucketId(0b1, 1)
        low, high = parent.split()
        for hash_value in range(0, 64):
            if parent.contains_hash(hash_value):
                assert low.contains_hash(hash_value) != high.contains_hash(hash_value)
            else:
                assert not low.contains_hash(hash_value)
                assert not high.contains_hash(hash_value)

    def test_parent_inverts_split(self):
        parent = BucketId(0b101, 3)
        low, high = parent.split()
        assert low.parent() == parent
        assert high.parent() == parent

    def test_root_has_no_parent_or_sibling(self):
        with pytest.raises(DirectoryError):
            ROOT_BUCKET.parent()
        with pytest.raises(DirectoryError):
            ROOT_BUCKET.sibling()

    def test_sibling(self):
        low, high = BucketId(0b0, 1).split()
        assert low.sibling() == high
        assert high.sibling() == low

    @given(st.integers(min_value=0, max_value=2**10 - 1), st.integers(min_value=0, max_value=10))
    def test_split_round_trip_property(self, raw_prefix, depth):
        prefix = raw_prefix & ((1 << depth) - 1) if depth else 0
        bucket = BucketId(prefix, depth)
        low, high = bucket.split()
        assert low.parent() == bucket
        assert high.parent() == bucket
        assert low.sibling() == high


class TestAncestry:
    def test_is_ancestor_of_descendant(self):
        assert BucketId(0b1, 1).is_ancestor_of(BucketId(0b11, 2))
        assert not BucketId(0b1, 1).is_ancestor_of(BucketId(0b10, 2))

    def test_overlaps_is_symmetric(self):
        a = BucketId(0b1, 1)
        b = BucketId(0b01, 2)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(BucketId(0b0, 1))

    def test_bucket_is_its_own_ancestor(self):
        bucket = BucketId(0b10, 2)
        assert bucket.is_ancestor_of(bucket)


class TestNormalizedSize:
    def test_paper_definition(self):
        # |B| = 2^(D-d): a depth-2 bucket in a depth-3 directory has size 2.
        assert BucketId(0b11, 2).normalized_size(3) == 2
        assert BucketId(0b011, 3).normalized_size(3) == 1

    def test_rejects_global_depth_below_bucket_depth(self):
        with pytest.raises(DirectoryError):
            BucketId(0b11, 2).normalized_size(1)

    def test_directory_slots_match_figure1(self):
        # In the Figure 1 directory (D=3), bucket "11" occupies slots 011, 111.
        assert sorted(BucketId(0b11, 2).directory_slots(3)) == [0b011, 0b111]

    def test_directory_slots_count_equals_normalized_size(self):
        bucket = BucketId(0b1, 1)
        assert len(bucket.directory_slots(4)) == bucket.normalized_size(4) == 8


class TestCovers:
    def test_uniform_depth_covers(self):
        assert covers_exactly([BucketId(p, 2) for p in range(4)])

    def test_mixed_depth_covers(self):
        # Figure 1's bucket set: 000,100 (d3), 11 (d2), 001,010 (d3), 101,110 (d3).
        buckets = [
            BucketId(0b000, 3),
            BucketId(0b100, 3),
            BucketId(0b11, 2),
            BucketId(0b001, 3),
            BucketId(0b010, 3),
            BucketId(0b101, 3),
            BucketId(0b110, 3),
        ]
        assert covers_exactly(buckets)

    def test_missing_bucket_detected(self):
        assert not covers_exactly([BucketId(0, 1)])

    def test_overlapping_buckets_detected(self):
        assert not covers_exactly([BucketId(0, 1), BucketId(1, 1), BucketId(0b11, 2)])

    def test_empty_is_not_a_cover(self):
        assert not covers_exactly([])

    def test_root_alone_is_a_cover(self):
        assert covers_exactly([ROOT_BUCKET])


class TestBucketForKey:
    def test_finds_owner(self):
        buckets = [BucketId(p, 2) for p in range(4)]
        key = "customer#42"
        owner = bucket_for_key(key, buckets)
        assert owner.contains_hash(hash_key(key))

    def test_raises_on_corrupt_directory(self):
        # A directory holding only the "0" bucket cannot route keys that hash
        # into the missing "1" half.
        orphan_key = next(k for k in range(100) if hash_key(k) & 1 == 1)
        with pytest.raises(DirectoryError):
            bucket_for_key(orphan_key, [BucketId(0, 1)])

    def test_raises_on_overlapping_buckets(self):
        key = next(k for k in range(100) if hash_key(k) & 1 == 0)
        with pytest.raises(DirectoryError):
            bucket_for_key(key, [BucketId(0, 1), BucketId(0b00, 2), BucketId(0b10, 2)])
