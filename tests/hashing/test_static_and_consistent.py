"""Tests for static bucketing and the consistent-hashing baseline."""

import pytest

from repro.common.errors import ClusterError, ConfigError
from repro.hashing.bucket_id import covers_exactly
from repro.hashing.consistent import ConsistentHashRing
from repro.hashing.static_bucket import (
    buckets_per_partition,
    static_bucket_depth,
    static_buckets,
    static_directory,
)


class TestStaticBuckets:
    def test_depth_of_256_buckets_is_8(self):
        assert static_bucket_depth(256) == 8

    def test_depth_of_one_bucket_is_zero(self):
        assert static_bucket_depth(1) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            static_bucket_depth(100)

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            static_bucket_depth(0)

    def test_static_buckets_cover_space(self):
        assert covers_exactly(static_buckets(64))

    def test_directory_round_robin(self):
        directory = static_directory(256, num_partitions=8)
        per_partition = [len(directory.buckets_of_partition(p)) for p in range(8)]
        assert per_partition == [32] * 8

    def test_paper_bucket_counts(self):
        """Paper: 256 buckets / (4 partitions per node) => 32..4 buckets per
        partition as nodes go 2..16."""
        for nodes, expected in [(2, 32), (4, 16), (8, 8), (16, 4)]:
            counts = buckets_per_partition(256, nodes * 4)
            assert set(counts.values()) == {expected}

    def test_fewer_buckets_than_partitions_rejected(self):
        with pytest.raises(ConfigError):
            static_directory(4, num_partitions=8)

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ConfigError):
            static_directory(16, num_partitions=0)


class TestConsistentHashRing:
    def test_routing_is_deterministic(self):
        ring = ConsistentHashRing(virtual_nodes=16)
        for node in ("nc0", "nc1", "nc2"):
            ring.add_node(node)
        assert ring.node_for_key("order#17") == ring.node_for_key("order#17")

    def test_all_nodes_get_some_keys(self):
        ring = ConsistentHashRing(virtual_nodes=64)
        for node in range(4):
            ring.add_node(node)
        owners = {ring.node_for_key(k) for k in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing()
        ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.add_node("a")

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(ClusterError):
            ConsistentHashRing().remove_node("ghost")

    def test_lookup_on_empty_ring_rejected(self):
        with pytest.raises(ClusterError):
            ConsistentHashRing().node_for_key("k")

    def test_remove_node_only_moves_its_keys(self):
        """The local-rebalancing property: removing 1 of N nodes moves ~1/N keys."""
        ring = ConsistentHashRing(virtual_nodes=128)
        for node in range(8):
            ring.add_node(node)
        before = {key: ring.node_for_key(key) for key in range(4000)}
        ring.remove_node(7)
        moved = sum(1 for key, owner in before.items() if ring.node_for_key(key) != owner)
        fraction = moved / len(before)
        assert 0.05 < fraction < 0.25  # ~1/8 with virtual-node noise
        # Keys that were not on the removed node never move.
        for key, owner in before.items():
            if owner != 7:
                assert ring.node_for_key(key) == owner

    def test_moved_fraction_helper(self):
        ring = ConsistentHashRing(virtual_nodes=64)
        for node in range(4):
            ring.add_node(node)
        grown = ring.copy()
        grown.add_node(4)
        fraction = ring.moved_fraction(grown)
        assert 0.05 < fraction < 0.4

    def test_ownership_fractions_sum_to_one(self):
        ring = ConsistentHashRing(virtual_nodes=64)
        for node in range(5):
            ring.add_node(node)
        fractions = ring.ownership_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(fraction > 0 for fraction in fractions.values())

    def test_virtual_nodes_improve_balance(self):
        few = ConsistentHashRing(virtual_nodes=1)
        many = ConsistentHashRing(virtual_nodes=256)
        for node in range(4):
            few.add_node(node)
            many.add_node(node)

        def imbalance(ring):
            fractions = ring.ownership_fractions()
            return max(fractions.values()) / (1 / len(fractions))

        assert imbalance(many) <= imbalance(few)

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)

    def test_copy_is_equivalent_but_independent(self):
        ring = ConsistentHashRing(virtual_nodes=32)
        ring.add_node("a")
        ring.add_node("b")
        clone = ring.copy()
        assert all(ring.node_for_key(k) == clone.node_for_key(k) for k in range(200))
        clone.remove_node("b")
        assert len(ring) == 2 and len(clone) == 1
