"""Tests for the Bloom filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.bloom import BloomFilter


class TestBloomFilter:
    def test_added_keys_are_always_maybe_present(self):
        bloom = BloomFilter(expected_keys=100)
        for key in range(100):
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in range(100))

    def test_build_classmethod(self):
        bloom = BloomFilter.build(["a", "b", "c"])
        assert bloom.num_keys == 3
        assert bloom.may_contain("a")

    def test_most_absent_keys_are_rejected(self):
        bloom = BloomFilter.build(range(1000), bits_per_key=10, num_hashes=7)
        false_positives = sum(1 for key in range(10_000, 20_000) if bloom.may_contain(key))
        # With 10 bits/key the theoretical FP rate is ~1%; allow generous slack.
        assert false_positives < 500

    def test_disabled_filter_always_says_maybe(self):
        bloom = BloomFilter(expected_keys=10, bits_per_key=0)
        assert bloom.may_contain("never added")
        assert bloom.size_bytes == 0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_keys=-1)
        with pytest.raises(ValueError):
            BloomFilter(expected_keys=1, bits_per_key=-1)

    def test_size_scales_with_keys(self):
        small = BloomFilter(expected_keys=10)
        large = BloomFilter(expected_keys=10_000)
        assert large.size_bytes > small.size_bytes

    def test_string_and_tuple_keys(self):
        bloom = BloomFilter.build([("a", 1), ("b", 2), "plain"])
        assert bloom.may_contain(("a", 1))
        assert bloom.may_contain("plain")

    @given(st.lists(st.integers(), min_size=1, max_size=200, unique=True))
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter.build(keys)
        assert all(bloom.may_contain(key) for key in keys)
