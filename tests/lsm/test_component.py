"""Tests for memory, disk, and reference components and their lifecycle."""

import pytest

from repro.common.errors import ComponentStateError
from repro.common.hashutil import hash_key, low_bits
from repro.lsm.component import DiskComponent, MemoryComponent, ReferenceDiskComponent
from repro.lsm.entry import Entry


def make_entries(keys, seq_start=1, value="v"):
    return [Entry(key=k, value=f"{value}{k}", seqnum=seq_start + i) for i, k in enumerate(keys)]


class TestMemoryComponent:
    def test_put_and_get(self):
        mem = MemoryComponent()
        mem.put(Entry(key=1, value="a", seqnum=1))
        assert mem.get(1).value == "a"
        assert mem.get(2) is None

    def test_newest_write_wins(self):
        mem = MemoryComponent()
        mem.put(Entry(key=1, value="a", seqnum=1))
        mem.put(Entry(key=1, value="b", seqnum=2))
        assert mem.get(1).value == "b"
        assert len(mem) == 1

    def test_sorted_entries(self):
        mem = MemoryComponent()
        for key in (5, 1, 3):
            mem.put(Entry(key=key, value=str(key), seqnum=key))
        assert [e.key for e in mem.sorted_entries()] == [1, 3, 5]

    def test_scan_bounds(self):
        mem = MemoryComponent()
        for key in range(10):
            mem.put(Entry(key=key, value=str(key), seqnum=key + 1))
        assert [e.key for e in mem.scan(3, 6)] == [3, 4, 5, 6]

    def test_size_grows_with_puts(self):
        mem = MemoryComponent()
        assert mem.size_bytes == 0
        mem.put(Entry(key=1, value="x" * 100, seqnum=1))
        assert mem.size_bytes > 100

    def test_write_after_deactivate_rejected(self):
        mem = MemoryComponent()
        mem.deactivate()
        with pytest.raises(ComponentStateError):
            mem.put(Entry(key=1, value="a", seqnum=1))

    def test_is_empty(self):
        mem = MemoryComponent()
        assert mem.is_empty
        mem.put(Entry(key=1, value="a", seqnum=1))
        assert not mem.is_empty


class TestReferenceCounting:
    def test_retain_release_cycle(self):
        comp = DiskComponent(make_entries([1, 2]))
        comp.retain()
        assert comp.refcount == 1
        comp.release()
        assert comp.refcount == 0
        assert not comp.is_destroyed  # still active

    def test_release_without_retain_rejected(self):
        comp = DiskComponent(make_entries([1]))
        with pytest.raises(ComponentStateError):
            comp.release()

    def test_deactivate_with_no_readers_destroys_immediately(self):
        comp = DiskComponent(make_entries([1]))
        comp.deactivate()
        assert comp.is_destroyed

    def test_deactivate_waits_for_readers(self):
        comp = DiskComponent(make_entries([1]))
        comp.retain()
        comp.deactivate()
        assert not comp.is_destroyed
        comp.release()
        assert comp.is_destroyed

    def test_retain_destroyed_rejected(self):
        comp = DiskComponent(make_entries([1]))
        comp.deactivate()
        with pytest.raises(ComponentStateError):
            comp.retain()


class TestDiskComponent:
    def test_entries_are_sorted_regardless_of_input_order(self):
        comp = DiskComponent(make_entries([5, 1, 3]))
        assert [e.key for e in comp.entries()] == [1, 3, 5]

    def test_min_max_keys(self):
        comp = DiskComponent(make_entries([5, 1, 3]))
        assert comp.min_key == 1
        assert comp.max_key == 5

    def test_empty_component(self):
        comp = DiskComponent([])
        assert len(comp) == 0
        assert comp.min_key is None
        assert comp.get(1) is None

    def test_point_lookup(self):
        comp = DiskComponent(make_entries(range(100)))
        assert comp.get(42).value == "v42"
        assert comp.get(1000) is None

    def test_bloom_filter_rejects_most_absent_keys(self):
        comp = DiskComponent(make_entries(range(500)))
        rejected = sum(1 for key in range(10_000, 11_000) if not comp.may_contain(key))
        assert rejected > 900

    def test_scan_range(self):
        comp = DiskComponent(make_entries(range(20)))
        assert [e.key for e in comp.scan(5, 8)] == [5, 6, 7, 8]

    def test_scan_open_ended(self):
        comp = DiskComponent(make_entries(range(5)))
        assert [e.key for e in comp.scan()] == [0, 1, 2, 3, 4]
        assert [e.key for e in comp.scan(low=3)] == [3, 4]
        assert [e.key for e in comp.scan(high=1)] == [0, 1]

    def test_size_bytes_sums_entries(self):
        entries = make_entries(range(10))
        comp = DiskComponent(entries)
        assert comp.size_bytes == sum(e.size_bytes for e in entries)

    def test_read_after_destroy_rejected(self):
        comp = DiskComponent(make_entries([1]))
        comp.deactivate()
        with pytest.raises(ComponentStateError):
            comp.get(1)

    def test_tuple_keys_sort_lexicographically(self):
        comp = DiskComponent(
            [
                Entry(key=(2, "a"), value=1, seqnum=1),
                Entry(key=(1, "b"), value=2, seqnum=2),
                Entry(key=(1, "a"), value=3, seqnum=3),
            ]
        )
        assert [e.key for e in comp.entries()] == [(1, "a"), (1, "b"), (2, "a")]


class TestReferenceDiskComponent:
    def _split_pair(self, keys, depth=1):
        """Build a parent component and the two depth-``depth`` references."""
        parent = DiskComponent(make_entries(keys))
        ref0 = ReferenceDiskComponent(parent, hash_prefix=0, depth=depth)
        ref1 = ReferenceDiskComponent(parent, hash_prefix=1, depth=depth)
        return parent, ref0, ref1

    def test_references_partition_the_parent(self):
        keys = list(range(200))
        parent, ref0, ref1 = self._split_pair(keys)
        keys0 = {e.key for e in ref0.entries()}
        keys1 = {e.key for e in ref1.entries()}
        assert keys0 | keys1 == set(keys)
        assert keys0 & keys1 == set()

    def test_reference_filters_by_hash_prefix(self):
        _, ref0, _ = self._split_pair(range(100))
        for entry in ref0.entries():
            assert low_bits(hash_key(entry.key), 1) == 0

    def test_point_lookup_through_reference(self):
        _, ref0, ref1 = self._split_pair(range(50))
        for key in range(50):
            owner = ref0 if low_bits(hash_key(key), 1) == 0 else ref1
            other = ref1 if owner is ref0 else ref0
            assert owner.get(key) is not None
            assert other.get(key) is None

    def test_reference_pins_target(self):
        parent, ref0, _ref1 = self._split_pair(range(10))
        parent.deactivate()
        assert not parent.is_destroyed  # still referenced by ref0/_ref1
        ref0.deactivate()
        _ref1.deactivate()
        assert parent.is_destroyed

    def test_materialize_produces_real_component(self):
        _, ref0, _ = self._split_pair(range(100))
        real = ref0.materialize()
        assert {e.key for e in real.entries()} == {e.key for e in ref0.entries()}
        assert real.size_bytes == ref0.size_bytes

    def test_referenced_bytes_reports_parent_size(self):
        parent, ref0, _ = self._split_pair(range(100))
        assert ref0.referenced_bytes == parent.size_bytes
        assert ref0.size_bytes < parent.size_bytes

    def test_negative_depth_rejected(self):
        parent = DiskComponent(make_entries([1]))
        with pytest.raises(ValueError):
            ReferenceDiskComponent(parent, hash_prefix=0, depth=-1)

    def test_may_contain_respects_prefix(self):
        _, ref0, _ = self._split_pair(range(100))
        wrong_side = next(k for k in range(100) if low_bits(hash_key(k), 1) == 1)
        assert not ref0.may_contain(wrong_side)
