"""Tests for the priority-queue merge scan (reconciliation)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.entry import Entry
from repro.lsm.iterators import count_live_entries, merge_entries, merge_scan


def entries(pairs, seq_start=1, tombstone_keys=()):
    """Build a sorted entry list from (key, value) pairs."""
    result = []
    for i, (key, value) in enumerate(sorted(pairs)):
        result.append(
            Entry(key=key, value=value, seqnum=seq_start + i, tombstone=key in tombstone_keys)
        )
    return result


class TestMergeScan:
    def test_single_source(self):
        source = entries([(1, "a"), (2, "b")])
        assert [e.key for e in merge_scan([source])] == [1, 2]

    def test_two_disjoint_sources_interleave_sorted(self):
        newer = entries([(2, "b"), (4, "d")])
        older = entries([(1, "a"), (3, "c")])
        assert [e.key for e in merge_scan([newer, older])] == [1, 2, 3, 4]

    def test_newer_source_wins_on_duplicate_keys(self):
        newer = entries([(1, "new")], seq_start=10)
        older = entries([(1, "old")], seq_start=1)
        result = list(merge_scan([newer, older]))
        assert len(result) == 1
        assert result[0].value == "new"

    def test_tombstones_suppress_older_values(self):
        newer = entries([(1, None)], tombstone_keys={1}, seq_start=10)
        older = entries([(1, "old"), (2, "keep")], seq_start=1)
        result = list(merge_scan([newer, older]))
        assert [e.key for e in result] == [2]

    def test_tombstones_kept_when_requested(self):
        newer = entries([(1, None)], tombstone_keys={1}, seq_start=10)
        older = entries([(1, "old")], seq_start=1)
        result = list(merge_scan([newer, older], include_tombstones=True))
        assert len(result) == 1
        assert result[0].tombstone

    def test_empty_sources(self):
        assert list(merge_scan([])) == []
        assert list(merge_scan([[], []])) == []

    def test_three_way_merge(self):
        a = entries([(1, "a1"), (4, "a4")], seq_start=20)
        b = entries([(1, "b1"), (2, "b2")], seq_start=10)
        c = entries([(2, "c2"), (3, "c3")], seq_start=1)
        result = {e.key: e.value for e in merge_scan([a, b, c])}
        assert result == {1: "a1", 2: "b2", 3: "c3", 4: "a4"}

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=50), st.integers()),
                max_size=30,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_output_is_sorted_and_unique(self, raw_sources):
        sources = []
        seq = 1000
        for raw in raw_sources:
            deduped = {}
            for key, value in raw:
                deduped[key] = value
            sources.append(entries(list(deduped.items()), seq_start=seq))
            seq -= 100
        result = [e.key for e in merge_scan(sources)]
        assert result == sorted(set(result))

    @given(
        st.dictionaries(st.integers(min_value=0, max_value=30), st.integers(), max_size=20),
        st.dictionaries(st.integers(min_value=0, max_value=30), st.integers(), max_size=20),
    )
    def test_newer_values_always_win_property(self, newer_map, older_map):
        newer = entries(list(newer_map.items()), seq_start=1000)
        older = entries(list(older_map.items()), seq_start=1)
        result = {e.key: e.value for e in merge_scan([newer, older])}
        expected = dict(older_map)
        expected.update(newer_map)
        assert result == expected


class TestMergeEntries:
    def test_drop_tombstones(self):
        newer = entries([(1, None)], tombstone_keys={1}, seq_start=10)
        older = entries([(1, "old"), (2, "keep")], seq_start=1)
        merged = merge_entries([newer, older], drop_tombstones=True)
        assert [e.key for e in merged] == [2]

    def test_keep_tombstones(self):
        newer = entries([(1, None)], tombstone_keys={1}, seq_start=10)
        older = entries([(2, "keep")], seq_start=1)
        merged = merge_entries([newer, older], drop_tombstones=False)
        assert [e.key for e in merged] == [1, 2]
        assert merged[0].tombstone

    def test_count_live_entries(self):
        newer = entries([(1, None)], tombstone_keys={1}, seq_start=10)
        older = entries([(1, "old"), (2, "keep"), (3, "keep")], seq_start=1)
        assert count_live_entries([newer, older]) == 2
