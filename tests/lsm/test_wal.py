"""Tests for the write-ahead log."""

from repro.lsm.wal import LogRecordType, WriteAheadLog


class TestAppendAndForce:
    def test_append_assigns_increasing_lsns(self):
        wal = WriteAheadLog("nc1")
        first = wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        second = wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2})
        assert second.lsn > first.lsn

    def test_unforced_records_are_not_durable(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        assert wal.records(durable_only=True) == []
        assert len(wal.records()) == 1

    def test_force_makes_all_previous_records_durable(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2})
        wal.force()
        assert len(wal.records(durable_only=True)) == 2

    def test_forced_append_forces_tail(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        wal.append(LogRecordType.REBALANCE_BEGIN, "ds", None, {"op": 7}, force=True)
        assert len(wal.records(durable_only=True)) == 2

    def test_bytes_accounting(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1, "value": "x" * 50})
        assert wal.bytes_appended > 50
        assert wal.bytes_forced == 0
        wal.force()
        assert wal.bytes_forced == wal.bytes_appended


class TestCrash:
    def test_crash_discards_unforced_tail(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1}, force=True)
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2})
        lost = wal.crash()
        assert lost == 1
        assert [r.payload["key"] for r in wal.records()] == [1]

    def test_crash_with_everything_forced_loses_nothing(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1}, force=True)
        assert wal.crash() == 0
        assert len(wal) == 1


class TestQueries:
    def test_iter_dataset_filters(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "orders", 0, {"key": 1})
        wal.append(LogRecordType.INSERT, "lineitem", 0, {"key": 2})
        wal.append(LogRecordType.DELETE, "orders", 1, {"key": 3})
        keys = [r.payload["key"] for r in wal.iter_dataset("orders")]
        assert keys == [1, 3]

    def test_tail_since(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2})
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 3})
        tail = wal.tail_since(first.lsn)
        assert [r.payload["key"] for r in tail] == [2, 3]

    def test_last_lsn_empty(self):
        assert WriteAheadLog().last_lsn() == 0

    def test_last_lsn_tracks_newest(self):
        wal = WriteAheadLog()
        record = wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1})
        assert wal.last_lsn() == record.lsn

    def test_is_data_record_classification(self):
        wal = WriteAheadLog()
        data = wal.append(LogRecordType.UPSERT, "ds", 0, {"key": 1})
        meta = wal.append(LogRecordType.REBALANCE_COMMIT, "ds", None, {"op": 1})
        assert data.is_data_record
        assert not meta.is_data_record
