"""Tests for single-partition WAL replay recovery."""

from repro.common.config import LSMConfig
from repro.lsm.recovery import PartitionRecovery, replay_into_tree
from repro.lsm.tree import LSMTree
from repro.lsm.wal import LogRecordType, WriteAheadLog


def small_tree(name="t"):
    return LSMTree(name, config=LSMConfig(memory_component_bytes=1024))


class TestReplay:
    def test_replay_inserts_and_deletes_in_lsn_order(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1, "value": "a"})
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2, "value": "b"})
        wal.append(LogRecordType.DELETE, "ds", 0, {"key": 1})
        tree = small_tree()
        count = replay_into_tree(wal.records(), tree)
        assert count == 3
        assert tree.get(1) is None
        assert tree.get(2) == "b"

    def test_replay_ignores_metadata_records(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.REBALANCE_BEGIN, "ds", None, {"op": 1})
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 5, "value": "x"})
        tree = small_tree()
        assert replay_into_tree(wal.records(), tree) == 1
        assert tree.get(5) == "x"

    def test_replay_upserts(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPSERT, "ds", 0, {"key": 1, "value": "first"})
        wal.append(LogRecordType.UPSERT, "ds", 0, {"key": 1, "value": "second"})
        tree = small_tree()
        replay_into_tree(wal.records(), tree)
        assert tree.get(1) == "second"


class TestPartitionRecovery:
    def test_only_durable_records_are_recovered(self):
        wal = WriteAheadLog("nc0")
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1, "value": "durable"}, force=True)
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 2, "value": "lost"})
        wal.crash()
        tree = small_tree()
        recovered = PartitionRecovery(wal).recover_tree(tree, "ds", partition_id=0)
        assert recovered == 1
        assert tree.get(1) == "durable"
        assert tree.get(2) is None

    def test_partition_filter(self):
        wal = WriteAheadLog("nc0")
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1, "value": "p0"}, force=True)
        wal.append(LogRecordType.INSERT, "ds", 1, {"key": 2, "value": "p1"}, force=True)
        tree = small_tree()
        PartitionRecovery(wal).recover_tree(tree, "ds", partition_id=0)
        assert tree.get(1) == "p0"
        assert tree.get(2) is None

    def test_dataset_filter(self):
        wal = WriteAheadLog("nc0")
        wal.append(LogRecordType.INSERT, "orders", 0, {"key": 1, "value": "o"}, force=True)
        wal.append(LogRecordType.INSERT, "lineitem", 0, {"key": 1, "value": "l"}, force=True)
        tree = small_tree()
        PartitionRecovery(wal).recover_tree(tree, "orders", partition_id=0)
        assert tree.get(1) == "o"

    def test_key_filter_limits_replay(self):
        wal = WriteAheadLog("nc0")
        for key in range(10):
            wal.append(LogRecordType.INSERT, "ds", 0, {"key": key, "value": key}, force=True)
        tree = small_tree()
        PartitionRecovery(wal).recover_tree(
            tree, "ds", partition_id=0, key_filter=lambda r: r.payload["key"] % 2 == 0
        )
        assert tree.get(2) == 2
        assert tree.get(3) is None

    def test_entries_from_records_preserves_order_and_tombstones(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, {"key": 1, "value": "a"})
        wal.append(LogRecordType.DELETE, "ds", 0, {"key": 1})
        entries = PartitionRecovery.entries_from_records(wal.records())
        assert len(entries) == 2
        assert not entries[0].tombstone
        assert entries[1].tombstone
        assert entries[0].seqnum < entries[1].seqnum
