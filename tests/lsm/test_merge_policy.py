"""Tests for merge policies (size-tiered ratio 1.2, no-merge, full-merge)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.merge_policy import (
    FullMergePolicy,
    MergeCandidate,
    NoMergePolicy,
    SizeTieredMergePolicy,
    make_merge_policy,
    select_components,
)


class TestMergeCandidate:
    def test_count(self):
        assert MergeCandidate(0, 3).count == 3

    def test_requires_at_least_two(self):
        with pytest.raises(ValueError):
            MergeCandidate(2, 2)


class TestSizeTieredPolicy:
    def test_no_merge_for_single_component(self):
        policy = SizeTieredMergePolicy(size_ratio=1.2)
        assert policy.select([1000]) is None

    def test_no_merge_when_younger_components_small(self):
        policy = SizeTieredMergePolicy(size_ratio=1.2)
        # Younger total (100) < 1.2 * oldest (1000): no merge.
        assert policy.select([100, 1000]) is None

    def test_merge_when_ratio_exceeded(self):
        policy = SizeTieredMergePolicy(size_ratio=1.2)
        # Newest-first: younger total 1300 >= 1.2 * 1000.
        candidate = policy.select([700, 600, 1000])
        assert candidate is not None
        assert candidate.start == 0
        assert candidate.end == 3

    def test_prefers_longest_eligible_suffix(self):
        policy = SizeTieredMergePolicy(size_ratio=1.0)
        # Both [0,2) and [0,3) eligible with ratio 1; the oldest-most wins.
        candidate = policy.select([500, 500, 400])
        assert candidate.end == 3

    def test_merge_of_equal_sized_components(self):
        policy = SizeTieredMergePolicy(size_ratio=1.2, min_components=2)
        # Three equal components: younger total (2x) >= 1.2 * x.
        candidate = policy.select([100, 100, 100])
        assert candidate is not None
        assert candidate.count == 3

    def test_max_components_cap(self):
        policy = SizeTieredMergePolicy(size_ratio=1.0, max_components=2)
        candidate = policy.select([100, 100, 100, 100])
        assert candidate is not None
        assert candidate.count <= 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SizeTieredMergePolicy(size_ratio=0)
        with pytest.raises(ValueError):
            SizeTieredMergePolicy(min_components=1)
        with pytest.raises(ValueError):
            SizeTieredMergePolicy(max_components=-1)

    @given(st.lists(st.integers(min_value=1, max_value=10**9), min_size=0, max_size=20))
    def test_candidate_always_in_range(self, sizes):
        policy = SizeTieredMergePolicy(size_ratio=1.2)
        candidate = policy.select(sizes)
        if candidate is not None:
            assert 0 <= candidate.start < candidate.end <= len(sizes)
            assert candidate.count >= 2


class TestOtherPolicies:
    def test_no_merge_policy_never_merges(self):
        assert NoMergePolicy().select([1, 1, 1, 1, 1]) is None

    def test_full_merge_policy_merges_everything(self):
        candidate = FullMergePolicy(threshold=3).select([10, 20, 30])
        assert candidate.start == 0 and candidate.end == 3

    def test_full_merge_policy_below_threshold(self):
        assert FullMergePolicy(threshold=3).select([10, 20]) is None

    def test_full_merge_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FullMergePolicy(threshold=1)


class TestFactory:
    def test_factory_names(self):
        assert isinstance(make_merge_policy("size-tiered"), SizeTieredMergePolicy)
        assert isinstance(make_merge_policy("tiering"), SizeTieredMergePolicy)
        assert isinstance(make_merge_policy("none"), NoMergePolicy)
        assert isinstance(make_merge_policy("full"), FullMergePolicy)

    def test_factory_passes_ratio(self):
        policy = make_merge_policy("size-tiered", size_ratio=2.0)
        assert policy.size_ratio == 2.0

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_merge_policy("mystery")

    def test_select_components_validates_range(self):
        class BadPolicy:
            def select(self, sizes):
                return MergeCandidate(0, 99)

        with pytest.raises(ValueError):
            select_components(BadPolicy(), [1, 2])

    def test_select_components_passthrough(self):
        assert select_components(NoMergePolicy(), [1, 2, 3]) is None
