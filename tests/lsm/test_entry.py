"""Tests for entries and size estimation."""

from repro.lsm.entry import Entry, estimate_key_size, estimate_value_size, newest


class TestSizeEstimation:
    def test_none_value_is_zero(self):
        assert estimate_value_size(None) == 0

    def test_numbers_are_eight_bytes(self):
        assert estimate_value_size(7) == 8
        assert estimate_value_size(3.5) == 8

    def test_bool_is_one_byte(self):
        assert estimate_value_size(True) == 1

    def test_strings_use_length(self):
        assert estimate_value_size("hello") == 5
        assert estimate_value_size(b"hello!") == 6

    def test_dict_counts_field_names_and_values(self):
        row = {"id": 1, "name": "ab"}
        assert estimate_value_size(row) == len("id") + 8 + len("name") + 2

    def test_tuple_sums_members(self):
        assert estimate_value_size((1, "ab")) == 10

    def test_unknown_type_falls_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "x" * 12

        assert estimate_value_size(Odd()) == 12

    def test_key_size_tuple(self):
        assert estimate_key_size((1, "abc")) == 8 + 3

    def test_key_size_int(self):
        assert estimate_key_size(5) == 8


class TestEntry:
    def test_size_includes_overhead(self):
        entry = Entry(key=1, value="abcd", seqnum=1)
        assert entry.size_bytes == 16 + 8 + 4

    def test_tombstone_has_no_value_size(self):
        put = Entry(key=1, value="abcd", seqnum=1)
        tomb = Entry(key=1, value="abcd", seqnum=2, tombstone=True)
        assert tomb.size_bytes < put.size_bytes

    def test_shadows_same_key_newer_seqnum(self):
        older = Entry(key=1, value="a", seqnum=1)
        newer = Entry(key=1, value="b", seqnum=2)
        assert newer.shadows(older)
        assert not older.shadows(newer)

    def test_shadows_requires_same_key(self):
        assert not Entry(key=1, value="a", seqnum=5).shadows(Entry(key=2, value="b", seqnum=1))

    def test_newest_helper(self):
        older = Entry(key=1, value="a", seqnum=1)
        newer = Entry(key=1, value="b", seqnum=2)
        assert newest(older, newer) is newer
        assert newest(newer, older) is newer
        assert newest(None, older) is older
        assert newest(older, None) is older
        assert newest(None, None) is None

    def test_entries_are_slotted_value_objects(self):
        # Entries are immutable *by convention* (the hot write path builds
        # tens of thousands per batch, so the frozen-dataclass setattr tax
        # was retired in PR 4); __slots__ still rejects arbitrary fields and
        # equality keeps value semantics over all four fields.
        entry = Entry(key=1, value="a", seqnum=1)
        try:
            entry.unexpected_attribute = 1
            grew_new_field = True
        except AttributeError:
            grew_new_field = False
        assert not grew_new_field
        assert entry == Entry(key=1, value="a", seqnum=1)
        assert entry != Entry(key=1, value="b", seqnum=1)
        assert entry != Entry(key=1, value="a", seqnum=2)
        assert entry != Entry(key=1, value="a", seqnum=1, tombstone=True)
