"""Tests for the LSM-tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import LSMConfig
from repro.common.hashutil import hash_key, low_bits
from repro.lsm.entry import Entry
from repro.lsm.merge_policy import FullMergePolicy, NoMergePolicy
from repro.lsm.tree import LSMTree


def small_config(**overrides):
    defaults = {"memory_component_bytes": 1024, "bloom_bits_per_key": 10}
    defaults.update(overrides)
    return LSMConfig(**defaults)


def make_tree(**config_overrides):
    return LSMTree("test", config=small_config(**config_overrides))


class TestBasicReadWrite:
    def test_insert_then_get(self):
        tree = make_tree()
        tree.insert(1, "one")
        assert tree.get(1) == "one"

    def test_get_missing_returns_none(self):
        assert make_tree().get(99) is None

    def test_overwrite_returns_newest(self):
        tree = make_tree()
        tree.insert(1, "old")
        tree.insert(1, "new")
        assert tree.get(1) == "new"

    def test_delete_hides_value(self):
        tree = make_tree()
        tree.insert(1, "one")
        tree.delete(1)
        assert tree.get(1) is None
        assert 1 not in tree

    def test_delete_survives_flush(self):
        tree = make_tree()
        tree.insert(1, "one")
        tree.flush()
        tree.delete(1)
        tree.flush()
        assert tree.get(1) is None

    def test_contains(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert 5 in tree
        assert 6 not in tree

    def test_len_counts_live_keys(self):
        tree = make_tree()
        for key in range(10):
            tree.insert(key, key)
        tree.delete(3)
        assert len(tree) == 9

    def test_upsert_alias(self):
        tree = make_tree()
        tree.upsert(1, "a")
        tree.upsert(1, "b")
        assert tree.get(1) == "b"

    def test_apply_entry_replays_tombstone(self):
        tree = make_tree()
        tree.insert(1, "x")
        tree.apply_entry(Entry(key=1, value=None, seqnum=999, tombstone=True))
        assert tree.get(1) is None


class TestFlush:
    def test_flush_moves_memory_to_disk(self):
        tree = make_tree()
        tree.insert(1, "one")
        component = tree.flush()
        assert component is not None
        assert tree.memory.is_empty
        assert tree.component_count == 1
        assert tree.get(1) == "one"

    def test_flush_empty_memory_is_noop(self):
        tree = make_tree()
        assert tree.flush() is None
        assert tree.component_count == 0

    def test_maybe_flush_respects_budget(self):
        tree = make_tree(memory_component_bytes=100_000)
        tree.insert(1, "tiny")
        assert tree.maybe_flush() is None
        tree2 = make_tree(memory_component_bytes=64)
        tree2.insert(1, "x" * 200)
        assert tree2.maybe_flush() is not None

    def test_memory_full_flag(self):
        tree = make_tree(memory_component_bytes=64)
        assert not tree.memory_full
        tree.insert(1, "x" * 200)
        assert tree.memory_full

    def test_newest_component_first(self):
        tree = make_tree()
        tree.insert(1, "old")
        tree.flush()
        tree.insert(1, "new")
        tree.flush()
        assert tree.get(1) == "new"
        assert tree.component_count == 2

    def test_flush_stats(self):
        tree = make_tree()
        tree.insert(1, "x" * 100)
        tree.flush()
        assert tree.stats.flush_count == 1
        assert tree.stats.bytes_flushed > 100


class TestMerge:
    def test_merge_all_collapses_components(self):
        tree = make_tree()
        for key in range(6):
            tree.insert(key, f"v{key}")
            tree.flush()
        assert tree.component_count == 6
        tree.merge_all()
        assert tree.component_count == 1
        assert all(tree.get(key) == f"v{key}" for key in range(6))

    def test_merge_drops_tombstones_when_oldest_included(self):
        tree = make_tree()
        tree.insert(1, "one")
        tree.flush()
        tree.delete(1)
        tree.flush()
        merged = tree.merge_all()
        assert len(merged) == 0  # tombstone and value both gone

    def test_maybe_merge_uses_policy(self):
        tree = LSMTree("t", config=small_config(), merge_policy=FullMergePolicy(threshold=2))
        tree.insert(1, "a")
        tree.flush()
        tree.insert(2, "b")
        tree.flush()
        assert tree.maybe_merge() is not None
        assert tree.component_count == 1

    def test_no_merge_policy(self):
        tree = LSMTree("t", config=small_config(), merge_policy=NoMergePolicy())
        for key in range(5):
            tree.insert(key, key)
            tree.flush()
        assert tree.maybe_merge() is None
        assert tree.component_count == 5

    def test_paused_merges_are_skipped(self):
        tree = LSMTree("t", config=small_config(), merge_policy=FullMergePolicy(threshold=2))
        tree.insert(1, "a")
        tree.flush()
        tree.insert(2, "b")
        tree.flush()
        tree.pause_merges()
        assert tree.maybe_merge() is None
        tree.resume_merges()
        assert tree.maybe_merge() is not None

    def test_merge_stats(self):
        tree = make_tree()
        for key in range(4):
            tree.insert(key, "x" * 50)
            tree.flush()
        tree.merge_all()
        assert tree.stats.merge_count == 1
        assert tree.stats.bytes_merged_read > 0
        assert tree.stats.bytes_merged_written > 0

    def test_merged_victims_are_deactivated(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.flush()
        tree.insert(2, "b")
        tree.flush()
        victims = list(tree.disk_components)
        tree.merge_all()
        assert all(victim.is_destroyed for victim in victims)


class TestScan:
    def test_scan_returns_sorted_keys(self):
        tree = make_tree()
        for key in (5, 3, 9, 1):
            tree.insert(key, str(key))
        assert [e.key for e in tree.scan()] == [1, 3, 5, 9]

    def test_scan_across_memory_and_disk(self):
        tree = make_tree()
        tree.insert(1, "disk")
        tree.flush()
        tree.insert(2, "memory")
        assert [e.key for e in tree.scan()] == [1, 2]

    def test_scan_reconciles_duplicates(self):
        tree = make_tree()
        tree.insert(1, "old")
        tree.flush()
        tree.insert(1, "new")
        result = list(tree.scan())
        assert len(result) == 1
        assert result[0].value == "new"

    def test_scan_bounds(self):
        tree = make_tree()
        for key in range(10):
            tree.insert(key, key)
        tree.flush()
        assert [e.key for e in tree.scan(low=3, high=6)] == [3, 4, 5, 6]

    def test_scan_skips_tombstones(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(2, "b")
        tree.delete(1)
        assert [e.key for e in tree.scan()] == [2]

    def test_scan_with_tombstones_included(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.delete(1)
        result = list(tree.scan(include_tombstones=True))
        assert len(result) == 1 and result[0].tombstone


class TestBloomSkipping:
    def test_point_lookup_skips_components_without_key(self):
        tree = make_tree()
        for batch in range(5):
            for key in range(batch * 100, batch * 100 + 100):
                tree.insert(key, key)
            tree.flush()
        before = tree.stats.bloom_negative_skips
        tree.get(450)  # lives in the newest component only
        assert tree.stats.bloom_negative_skips >= before


class TestRebalanceIntegration:
    def test_loaded_component_is_oldest(self):
        tree = make_tree()
        tree.insert(1, "local-new")
        tree.flush()
        loaded = [Entry(key=1, value="loaded-old", seqnum=0), Entry(key=2, value="ok", seqnum=0)]
        tree.add_loaded_component(loaded)
        # The local write must still win: loaded data is strictly older.
        assert tree.get(1) == "local-new"
        assert tree.get(2) == "ok"

    def test_received_list_invisible_until_installed(self):
        tree = make_tree()
        list_id = tree.create_received_list()
        tree.append_to_received_list(list_id, [Entry(key=10, value="moved", seqnum=0)])
        assert tree.get(10) is None
        tree.install_received_list(list_id)
        assert tree.get(10) == "moved"

    def test_drop_received_list_discards_data(self):
        tree = make_tree()
        list_id = tree.create_received_list()
        component = tree.append_to_received_list(list_id, [Entry(key=10, value="x", seqnum=0)])
        tree.drop_received_list(list_id)
        assert tree.get(10) is None
        assert component.is_destroyed

    def test_install_and_drop_are_idempotent(self):
        tree = make_tree()
        list_id = tree.create_received_list()
        tree.append_to_received_list(list_id, [Entry(key=10, value="x", seqnum=0)])
        tree.install_received_list(list_id)
        tree.install_received_list(list_id)  # second install is a no-op
        tree.drop_received_list(list_id)  # dropping after install is a no-op
        assert tree.get(10) == "x"
        assert tree.component_count == 1

    def test_append_to_unknown_list_rejected(self):
        tree = make_tree()
        with pytest.raises(Exception):
            tree.append_to_received_list(999, [])

    def test_lazy_invalidation_hides_bucket_entries(self):
        tree = make_tree()
        keys = list(range(50))
        for key in keys:
            tree.insert(key, f"v{key}")
        tree.flush()
        # Invalidate the depth-1 bucket with prefix 0.
        tree.invalidate_bucket(0, 1)
        for key in keys:
            expected_hidden = low_bits(hash_key(key), 1) == 0
            if expected_hidden:
                assert tree.get(key) is None
            else:
                assert tree.get(key) == f"v{key}"

    def test_full_merge_clears_invalidation_filters(self):
        tree = make_tree()
        for key in range(20):
            tree.insert(key, key)
        tree.flush()
        tree.insert(100, 100)
        tree.flush()
        tree.invalidate_bucket(0, 1)
        tree.merge_all()
        assert tree.invalidated_buckets == set()
        # Entries of the invalidated bucket were physically dropped.
        hidden = [k for k in range(20) if low_bits(hash_key(k), 1) == 0]
        assert all(tree.get(k) is None for k in hidden)

    def test_secondary_style_routing_extractor(self):
        # Secondary index keys are (secondary key, primary key); invalidation
        # must hash the primary key.
        tree = LSMTree(
            "sk",
            config=small_config(),
            routing_key_extractor=lambda composite: composite[1],
        )
        tree.insert(("blue", 7), "rid7")
        tree.insert(("red", 8), "rid8")
        tree.flush()
        pk7_prefix = low_bits(hash_key(7), 1)
        tree.invalidate_bucket(pk7_prefix, 1)
        assert tree.get(("blue", 7)) is None
        expected_8_hidden = low_bits(hash_key(8), 1) == pk7_prefix
        assert (tree.get(("red", 8)) is None) == expected_8_hidden


class TestSizesAndManifest:
    def test_size_bytes_tracks_memory_and_disk(self):
        tree = make_tree()
        tree.insert(1, "x" * 100)
        in_memory = tree.size_bytes
        tree.flush()
        assert tree.size_bytes == pytest.approx(in_memory, rel=0.01)
        assert tree.disk_size_bytes > 0

    def test_force_manifest_records_components(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.flush()
        tree.force_manifest()
        assert tree.manifest.durable.component_ids == [tree.disk_components[0].component_id]


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "flush", "merge"]),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=60,
        )
    )
    def test_matches_model_dict(self, operations):
        """The LSM-tree behaves exactly like a plain dict under any op mix."""
        tree = make_tree(memory_component_bytes=512)
        model = {}
        for op, key, value in operations:
            if op == "insert":
                tree.insert(key, value)
                model[key] = value
            elif op == "delete":
                tree.delete(key)
                model.pop(key, None)
            elif op == "flush":
                tree.flush()
            elif op == "merge":
                tree.merge_all()
        for key in range(21):
            assert tree.get(key) == model.get(key)
        assert sorted(e.key for e in tree.scan()) == sorted(model.keys())
