"""Tests for the directory metadata (manifest) files."""

from repro.lsm.manifest import Manifest


class TestVolatileMutations:
    def test_add_and_remove_bucket(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0b0, 1, [10, 11])
        manifest.add_bucket(0b1, 1)
        assert manifest.valid_bucket_ids() == {(0, 1), (1, 1)}
        manifest.remove_bucket(0b1, 1)
        assert manifest.valid_bucket_ids() == {(0, 1)}

    def test_set_bucket_components_creates_if_missing(self):
        manifest = Manifest("primary")
        manifest.set_bucket_components(0b10, 2, [5])
        assert manifest.volatile.buckets[(2, 2)].component_ids == [5]

    def test_set_bucket_components_overwrites(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0, 1, [1, 2])
        manifest.set_bucket_components(0, 1, [3])
        assert manifest.volatile.buckets[(0, 1)].component_ids == [3]

    def test_flat_component_list(self):
        manifest = Manifest("secondary")
        manifest.set_components([1, 2, 3])
        assert manifest.volatile.component_ids == [1, 2, 3]

    def test_invalidation_tracking(self):
        manifest = Manifest("secondary")
        manifest.invalidate_bucket(0b11, 2)
        assert (3, 2) in manifest.volatile.invalidated_buckets
        manifest.clear_invalidation(0b11, 2)
        assert manifest.volatile.invalidated_buckets == set()

    def test_pending_received_lists(self):
        manifest = Manifest("primary")
        manifest.add_pending_received(7)
        manifest.add_pending_received(7)  # idempotent
        assert manifest.volatile.pending_received == [7]
        manifest.remove_pending_received(7)
        manifest.remove_pending_received(7)  # idempotent
        assert manifest.volatile.pending_received == []


class TestDurability:
    def test_force_snapshots_volatile_state(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0, 1)
        assert manifest.valid_bucket_ids(durable=True) == set()
        manifest.force()
        assert manifest.valid_bucket_ids(durable=True) == {(0, 1)}
        assert manifest.force_count == 1

    def test_crash_reverts_to_durable_state(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0, 1)
        manifest.force()
        manifest.add_bucket(1, 1)  # never forced: lost on crash
        manifest.crash_and_recover()
        assert manifest.valid_bucket_ids() == {(0, 1)}

    def test_durable_state_is_isolated_from_later_mutations(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0, 1, [1])
        manifest.force()
        manifest.volatile.buckets[(0, 1)].component_ids.append(2)
        assert manifest.durable.buckets[(0, 1)].component_ids == [1]

    def test_crash_before_any_force_empties_state(self):
        manifest = Manifest("primary")
        manifest.add_bucket(0, 1)
        manifest.crash_and_recover()
        assert manifest.valid_bucket_ids() == set()

    def test_partial_split_cleanup_scenario(self):
        """The Algorithm-1 recovery story: forced parent survives, unforced
        children disappear after a crash mid-split."""
        manifest = Manifest("primary")
        manifest.add_bucket(0b1, 1)  # parent bucket "1", depth 1
        manifest.force()
        # Split into "01" and "11" but crash before the force.
        manifest.remove_bucket(0b1, 1)
        manifest.add_bucket(0b01, 2)
        manifest.add_bucket(0b11, 2)
        manifest.crash_and_recover()
        assert manifest.valid_bucket_ids() == {(1, 1)}
