"""Figure 7b — rebalance time when adding one node back (N-1 -> N).

Paper shape: the bucketing approaches remain much cheaper than Hashing.
Hashing is cheaper when adding than when removing (its work spreads over N
rather than N-1 nodes), while for the bucketing approaches adding is no
cheaper than removing because the single new node is the receive bottleneck.
"""

from conftest import print_figure

from repro.bench import run_scaling_experiment, series_table


def test_fig7b_add_node(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_scaling_experiment(bench_scale), rounds=1, iterations=1
    )
    print_figure(
        "Figure 7b: rebalance time, adding one node (simulated minutes)",
        series_table(result.add_minutes, "nodes", "min"),
    )

    for nodes in bench_scale.node_counts:
        hashing_add = result.add_minutes["Hashing"][nodes]
        for strategy in ("StaticHash", "DynaHash"):
            assert result.add_minutes[strategy][nodes] < hashing_add / 2
        # Hashing: adding is cheaper than removing (work over N vs N-1 nodes).
        assert hashing_add <= result.remove_minutes["Hashing"][nodes] * 1.05
    # Bucketing: adding is bottlenecked by the new node, so it is not faster
    # than removing on the larger clusters.
    largest = max(bench_scale.node_counts)
    for strategy in ("StaticHash", "DynaHash"):
        assert (
            result.add_minutes[strategy][largest]
            >= result.remove_minutes[strategy][largest] * 0.8
        )
