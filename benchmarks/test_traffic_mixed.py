"""Mixed YCSB-style traffic across a node-add rebalance.

Not one of the paper's numbered figures, but its Figure 7c story as
first-class telemetry: a zipfian YCSB-A mix runs warmup → steady → spike →
ramp, the spike lands while the cluster rebalances onto an extra node, and
the metrics registry reports tail write latency broken out by cluster phase
(steady vs rebalance-in-flight).
"""

from conftest import print_figure

from repro.bench import (
    run_traffic_experiment,
    traffic_artifact_payload,
    write_bench_artifact,
)
from repro.metrics import PHASE_REBALANCE, PHASE_STEADY


def test_traffic_mixed_smoke(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_traffic_experiment(bench_scale),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Traffic: YCSB-A zipfian mix across a node-add rebalance "
        "(per-op simulated latency by cluster phase)",
        result.table(),
    )

    # Both phases produced write samples (the spike genuinely overlapped the
    # rebalance) and reads interleaved with the protocol phases.
    assert result.snapshot.histogram_count("update", PHASE_REBALANCE) > 0
    assert result.snapshot.histogram_count("update", PHASE_STEADY) > 0
    assert result.snapshot.histogram_count("read", PHASE_REBALANCE) > 0
    # Writes mid-rehash pay the log-replication round trip: tail latency
    # during the rebalance is no better than steady state.
    assert result.write_p99_ms[PHASE_REBALANCE] >= result.write_p99_ms[PHASE_STEADY]
    assert result.total_ops > 0

    # Same scale, same seed: the traffic engine is deterministic end to end.
    again = run_traffic_experiment(bench_scale)
    assert again.snapshot == result.snapshot

    # Persist the perf trajectory (no-op unless REPRO_BENCH_ARTIFACT_DIR set).
    write_bench_artifact(
        "traffic_mixed", traffic_artifact_payload("traffic_mixed", result)
    )
