"""Figure 9a — TPC-H query time after rebalancing the 4-node cluster down to 3.

Paper shape: with the bucketing approaches the bucket count no longer divides
the partition count evenly, so some partitions hold one extra bucket.  Most
queries barely notice (they are computation-heavy and the post-shuffle work is
balanced); the overhead is mainly visible on the scan-heavy / order-sensitive
queries (q17, q18, q21 — q18 most of all).
"""

from conftest import print_figure

from repro.bench import per_query_table, run_query_experiment
from repro.tpch import QUERY_NAMES, SCAN_HEAVY_QUERIES


def test_fig9a_query_time_downsized_3_nodes(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_query_experiment(bench_scale, num_nodes=4, downsize=True),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Figure 9a: TPC-H query time on the downsized 3-node cluster (simulated seconds)",
        per_query_table(result.seconds),
    )

    hashing = result.seconds["Hashing"]
    dynahash = result.seconds["DynaHash"]
    statichash = result.seconds["StaticHash"]

    # Small overhead on most queries despite the load imbalance.
    overheads = {q: dynahash[q] / hashing[q] for q in QUERY_NAMES}
    small_overhead_queries = [q for q in QUERY_NAMES if q not in SCAN_HEAVY_QUERIES]
    assert sum(overheads[q] for q in small_overhead_queries) / len(small_overhead_queries) < 1.20
    # The order-sensitive q18 remains the worst case for bucketed storage.
    assert overheads["q18"] > 1.10
    assert statichash["q18"] >= dynahash["q18"] * 0.95
    # Every query still completes and returns a positive simulated time.
    assert all(value > 0 for values in result.seconds.values() for value in values.values())
