"""Figure 8b — TPC-H query time on the original larger cluster (paper: 16 nodes).

Paper shape: same story as Figure 8a, plus scale-up — because the data volume
grows with the cluster, per-query times stay nearly constant as the cluster
grows from 4 nodes to 16.
"""

from conftest import print_figure

from repro.bench import per_query_table, run_query_experiment
from repro.tpch import QUERY_NAMES


def test_fig8b_query_time_original_large_cluster(benchmark, bench_scale, large_cluster_nodes):
    def run():
        small = run_query_experiment(bench_scale, num_nodes=4, downsize=False)
        large = run_query_experiment(
            bench_scale, num_nodes=large_cluster_nodes, downsize=False
        )
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        f"Figure 8b: TPC-H query time on {large_cluster_nodes} nodes (simulated seconds)",
        per_query_table(large.seconds),
    )

    hashing = large.seconds["Hashing"]
    dynahash = large.seconds["DynaHash"]
    for query in QUERY_NAMES:
        if query == "q18":
            continue
        assert dynahash[query] < hashing[query] * 1.15, query
    assert dynahash["q18"] > hashing["q18"] * 1.05

    # Scale-up: per-query time stays roughly flat as data and nodes grow together.
    for query in QUERY_NAMES:
        ratio = large.seconds["DynaHash"][query] / small.seconds["DynaHash"][query]
        assert 0.5 < ratio < 2.0, f"{query} did not scale up (ratio {ratio:.2f})"
