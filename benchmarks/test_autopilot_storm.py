"""Autopilot storm: the control plane closing the loop under traffic.

A hotspot storm with no scheduled rebalance; the cost-aware policy detects
the capacity trajectory, simulates candidate plans, and executes the cheapest
one mid-run.  The bench prints the decision log plus the phase-tagged latency
table, asserts the loop actually closed, and (when
``REPRO_BENCH_ARTIFACT_DIR`` is set) persists the run's ops/sec and
p50/p99-by-phase numbers as ``BENCH_autopilot_storm.json``.
"""

from conftest import print_figure

from repro.bench import (
    run_autopilot_experiment,
    traffic_artifact_payload,
    write_bench_artifact,
)


def test_autopilot_storm_smoke(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_autopilot_experiment(bench_scale),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Autopilot: cost-aware policy under a hotspot storm "
        "(decision log + per-op simulated latency by cluster phase)",
        result.autopilot_summary + "\n\n" + result.table(),
    )

    # The loop closed: at least one policy-triggered rebalance, no explicit
    # db.rebalance call anywhere in the schedule.
    assert result.rebalances_triggered >= 1
    assert result.nodes_after > result.nodes_before
    assert result.snapshot.counters["autopilot.decision"] >= 1
    assert result.snapshot.counters["autopilot.rebalance.complete"] >= 1
    assert result.total_ops > 0

    # Same scale, same seed: identical decisions and identical telemetry.
    again = run_autopilot_experiment(bench_scale)
    assert again.decision_trace == result.decision_trace
    assert again.snapshot == result.snapshot

    write_bench_artifact(
        "autopilot_storm", traffic_artifact_payload("autopilot_storm", result)
    )
