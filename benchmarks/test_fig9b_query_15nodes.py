"""Figure 9b — TPC-H query time after rebalancing the large cluster down by one node.

Paper shape (16 -> 15 nodes): same as Figure 9a — a small load-imbalance
overhead for the bucketing approaches, visible mainly on the scan-heavy
queries and on q18.
"""

from conftest import print_figure

from repro.bench import per_query_table, run_query_experiment
from repro.tpch import QUERY_NAMES, SCAN_HEAVY_QUERIES


def test_fig9b_query_time_downsized_large_cluster(benchmark, bench_scale, large_cluster_nodes):
    result = benchmark.pedantic(
        lambda: run_query_experiment(
            bench_scale, num_nodes=large_cluster_nodes, downsize=True
        ),
        rounds=1,
        iterations=1,
    )
    print_figure(
        f"Figure 9b: TPC-H query time on the downsized {large_cluster_nodes - 1}-node cluster "
        "(simulated seconds)",
        per_query_table(result.seconds),
    )

    hashing = result.seconds["Hashing"]
    dynahash = result.seconds["DynaHash"]
    overheads = {q: dynahash[q] / hashing[q] for q in QUERY_NAMES}
    non_scan_heavy = [q for q in QUERY_NAMES if q not in SCAN_HEAVY_QUERIES]
    assert sum(overheads[q] for q in non_scan_heavy) / len(non_scan_heavy) < 1.20
    assert overheads["q18"] > 1.05
    assert all(value > 0 for values in result.seconds.values() for value in values.values())
