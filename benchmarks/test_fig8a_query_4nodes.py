"""Figure 8a — TPC-H query time on the original (freshly loaded) 4-node cluster.

Paper shape: StaticHash and DynaHash add negligible overhead over the Hashing
baseline on almost every query; the exception is q18, whose group-by on a
prefix of LineItem's primary key forces the bucketed LSM-tree to merge-sort
its buckets (and StaticHash, with more buckets per partition, pays more than
DynaHash).  Lazy secondary-index cleanup (DynaHash-lazy-cleanup) also adds
only a small overhead.
"""

from conftest import print_figure

from repro.bench import per_query_table, run_query_experiment
from repro.tpch import QUERY_NAMES


def test_fig8a_query_time_original_4_nodes(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_query_experiment(bench_scale, num_nodes=4, downsize=False),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Figure 8a: TPC-H query time on 4 nodes (simulated seconds)",
        per_query_table(result.seconds),
    )

    hashing = result.seconds["Hashing"]
    dynahash = result.seconds["DynaHash"]
    statichash = result.seconds["StaticHash"]
    lazy = result.seconds["DynaHash-lazy-cleanup"]

    # Negligible bucketing overhead on every query except q18.
    for query in QUERY_NAMES:
        if query == "q18":
            continue
        assert dynahash[query] < hashing[query] * 1.15, query
        assert statichash[query] < hashing[query] * 1.15, query
    # q18 needs primary-key order: bucketed approaches pay the merge-sort, and
    # StaticHash (more buckets per partition) pays more than DynaHash.
    assert dynahash["q18"] > hashing["q18"] * 1.05
    assert statichash["q18"] >= dynahash["q18"]
    # Lazy secondary-index cleanup is a small overhead on top of DynaHash.
    for query in QUERY_NAMES:
        assert lazy[query] < dynahash[query] * 1.30, query
