"""Ablations for the Section V design choices.

* Algorithm 2 (greedy BALANCE) against a naive round-robin reassignment: the
  greedy algorithm achieves the same balance while moving far fewer buckets.
* Bucket-count / bucket-size trade-off (StaticHash 256 buckets vs DynaHash's
  size-capped buckets): more buckets per partition give a finer balance after
  an uneven rebalance but a larger q18-style ordered-scan penalty.
* Lazy vs eager secondary-index cleanup: lazy cleanup defers the rewrite to
  the next merge at a small, bounded query-time cost.
"""

from conftest import print_figure

from repro.bench import format_table
from repro.bucketed.scan import estimate_merge_comparisons
from repro.common.config import LSMConfig
from repro.hashing.extendible import GlobalDirectory
from repro.hashing.static_bucket import static_directory
from repro.lsm.tree import LSMTree
from repro.rebalance.plan import compute_balanced_directory, compute_round_robin_directory


def test_ablation_balance_vs_round_robin(benchmark):
    def run():
        directory = GlobalDirectory.initial(num_partitions=16, buckets_per_partition=4)
        targets = list(range(12))
        nodes = {pid: f"nc{pid // 4}" for pid in range(16)}
        greedy = compute_balanced_directory(directory, targets, nodes)
        naive = compute_round_robin_directory(directory, targets)
        return greedy, naive

    greedy, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: Algorithm 2 vs round-robin reassignment",
        format_table(
            ["planner", "buckets moved", "normalized imbalance"],
            [
                ["Algorithm 2 (greedy)", greedy.moved_buckets, round(greedy.normalized_imbalance(), 3)],
                ["round-robin", naive.moved_buckets, round(naive.normalized_imbalance(), 3)],
            ],
        ),
    )
    assert greedy.moved_buckets < naive.moved_buckets
    assert greedy.normalized_imbalance() <= naive.normalized_imbalance() * 1.25


def test_ablation_bucket_count_tradeoff(benchmark):
    """More buckets -> better balance on an uneven partition count, worse ordered scans."""

    def run():
        rows = []
        for total_buckets in (16, 64, 256):
            directory = static_directory(total_buckets, num_partitions=12)
            load = directory.normalized_load()
            imbalance = max(load.values()) / (sum(load.values()) / len(load))
            per_partition = total_buckets / 12
            comparisons = estimate_merge_comparisons(max(1, int(per_partition)), 100_000)
            rows.append([total_buckets, round(imbalance, 3), comparisons])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: bucket count vs balance and ordered-scan cost (12 partitions)",
        format_table(["total buckets", "normalized imbalance", "q18-style comparisons"], rows),
    )
    imbalances = [row[1] for row in rows]
    comparisons = [row[2] for row in rows]
    assert imbalances[0] >= imbalances[-1]
    assert comparisons[0] <= comparisons[-1]


def test_ablation_lazy_vs_eager_cleanup(benchmark):
    """Lazy cleanup avoids an immediate rewrite at a small extra read cost."""

    def run():
        def build():
            tree = LSMTree(
                "secondary",
                config=LSMConfig(memory_component_bytes=1 << 20),
                routing_key_extractor=lambda composite: composite[-1],
            )
            for key in range(4000):
                tree.insert((f"sk-{key % 97}", key), {"covered": key})
                if key % 1000 == 999:
                    tree.flush()
            tree.flush()
            return tree

        prefix_to_drop = 0  # depth-1 bucket "0" moved away
        lazy = build()
        lazy.invalidate_bucket(prefix_to_drop, 1)
        lazy_rewrite_bytes = lazy.stats.bytes_merged_written
        lazy_scan_bytes = 0
        before = lazy.stats.snapshot()
        visible_lazy = sum(1 for _ in lazy.scan())
        lazy_scan_bytes = lazy.stats.diff(before).bytes_read

        eager = build()
        eager.invalidate_bucket(prefix_to_drop, 1)
        eager.merge_all()  # eager cleanup: rewrite everything now
        eager_rewrite_bytes = eager.stats.bytes_merged_written
        before = eager.stats.snapshot()
        visible_eager = sum(1 for _ in eager.scan())
        eager_scan_bytes = eager.stats.diff(before).bytes_read
        assert visible_lazy == visible_eager
        return [
            ["lazy (DynaHash)", lazy_rewrite_bytes, lazy_scan_bytes],
            ["eager (merge now)", eager_rewrite_bytes, eager_scan_bytes],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: lazy vs eager secondary-index cleanup",
        format_table(["cleanup", "rewrite bytes paid now", "bytes read by next full scan"], rows),
    )
    lazy_row, eager_row = rows
    assert lazy_row[1] < eager_row[1]          # lazy defers the rewrite
    assert lazy_row[2] >= eager_row[2]         # at the cost of reading obsolete entries
