"""Figure 6 — TPC-H ingestion time for Hashing / StaticHash / DynaHash.

Paper shape: all three approaches ingest at nearly the same rate (bucketing
adds only a small overhead) and the time rises mildly as the cluster grows
(write stalls on the slowest node).
"""

from conftest import print_figure

from repro.bench import run_ingestion_experiment, series_table


def test_fig6_ingestion_time(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_ingestion_experiment(bench_scale), rounds=1, iterations=1
    )
    print_figure(
        "Figure 6: ingestion time (simulated minutes)",
        series_table(result.minutes, "nodes", "min"),
    )

    for strategy, by_nodes in result.minutes.items():
        assert all(minutes > 0 for minutes in by_nodes.values())
    # DynaHash and StaticHash stay close to the Hashing baseline (the paper
    # reports only a small bucketing overhead on ingestion).
    for nodes in bench_scale.node_counts:
        baseline = result.minutes["Hashing"][nodes]
        for strategy in ("StaticHash", "DynaHash"):
            assert result.minutes[strategy][nodes] < baseline * 1.35
    # DynaHash splits buckets dynamically while loading.
    assert any(count > 0 for count in result.splits["DynaHash"].values())
