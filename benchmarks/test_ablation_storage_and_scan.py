"""Ablations for the Section IV design choices.

* Storage options for the primary index (Option 1: one LSM-tree vs Option 3:
  one LSM-tree per bucket): Option 3 makes moving a bucket read only that
  bucket's bytes, while Option 1 must scan everything.
* Scan modes: the unordered per-bucket scan is cheaper than the merge-sorted
  scan, and the merge-sort penalty grows with the number of buckets per
  partition (the q18 effect).
"""

from conftest import print_figure

from repro.bench import format_table
from repro.bucketed import BucketedLSMTree, ScanMode
from repro.bucketed.scan import estimate_merge_comparisons
from repro.common.config import BucketingConfig, LSMConfig
from repro.hashing.bucket_id import ROOT_BUCKET, BucketId


def _build_tree(num_buckets, rows=2000):
    depth = (num_buckets - 1).bit_length()
    initial = [ROOT_BUCKET] if num_buckets == 1 else [BucketId(p, depth) for p in range(num_buckets)]
    tree = BucketedLSMTree(
        "primary",
        partition_id=0,
        initial_buckets=initial,
        lsm_config=LSMConfig(memory_component_bytes=1 << 20),
        bucketing_config=BucketingConfig(static=True),
    )
    for key in range(rows):
        tree.insert(key, {"payload": "x" * 64, "key": key})
    tree.flush_all()
    return tree


def test_ablation_storage_options_bucket_move_cost(benchmark):
    """Option 3 (per-bucket LSM-trees) reads only the moving bucket's bytes."""

    def run():
        option1 = _build_tree(num_buckets=1)   # everything in one LSM-tree
        option3 = _build_tree(num_buckets=8)   # one LSM-tree per bucket
        # Moving one depth-3 bucket: Option 3 snapshots just that bucket;
        # Option 1 must scan the whole tree and filter.
        moving = BucketId(0b011, 3)
        option3_bytes = sum(c.size_bytes for c in option3.snapshot_bucket(moving))
        option1_bytes = option1.size_bytes  # full scan needed to extract the bucket
        return option1_bytes, option3_bytes

    option1_bytes, option3_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: bytes read to move one bucket",
        format_table(
            ["storage option", "bytes read"],
            [["Option 1 (single LSM-tree)", option1_bytes], ["Option 3 (bucketed, DynaHash)", option3_bytes]],
        ),
    )
    assert option3_bytes * 4 < option1_bytes


def test_ablation_scan_modes(benchmark):
    """Ordered scans cost more than unordered scans, and more so with more buckets."""

    def run():
        rows = []
        for buckets in (4, 16):
            tree = _build_tree(num_buckets=buckets, rows=3000)
            unordered = sum(1 for _ in tree.scan(mode=ScanMode.UNORDERED))
            ordered = sum(1 for _ in tree.scan(mode=ScanMode.ORDERED))
            assert unordered == ordered
            comparisons = estimate_merge_comparisons(buckets, ordered)
            rows.append([buckets, ordered, comparisons])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: merge-sort comparisons for ordered bucket scans",
        format_table(["buckets/partition", "records", "extra comparisons"], rows),
    )
    assert rows[1][2] > rows[0][2]
