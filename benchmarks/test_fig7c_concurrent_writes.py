"""Figure 7c — DynaHash rebalance time under concurrent data ingestion.

Paper shape: rebalancing a 4-node cluster down to 3 nodes takes longer as the
controlled concurrent write rate on LineItem grows, because the concurrent
writes compete for CPU/IO and their log records must be replicated to the
destinations — but it still completes in a reasonable time at high rates.
"""

from conftest import print_figure

from repro.bench import run_concurrent_write_experiment, series_table


def test_fig7c_rebalance_under_concurrent_writes(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_concurrent_write_experiment(bench_scale, num_nodes=4),
        rounds=1,
        iterations=1,
    )
    print_figure(
        "Figure 7c: DynaHash rebalance time vs concurrent write rate (simulated minutes)",
        series_table(
            {"DynaHash": result.minutes_by_rate}, "write rate (krecords/s)", "min"
        ),
    )

    rates = sorted(result.minutes_by_rate)
    times = [result.minutes_by_rate[rate] for rate in rates]
    # Monotone (allowing tiny numerical noise): more concurrent writes, longer rebalance.
    for earlier, later in zip(times, times[1:], strict=False):
        assert later >= earlier * 0.98
    # The highest write rate is clearly slower than the idle rebalance.
    assert times[-1] > times[0]
    # Concurrent writes to moving buckets were replicated, not lost.
    assert result.replicated_records_by_rate[rates[-1]] > 0
