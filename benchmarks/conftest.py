"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark runs the corresponding experiment driver exactly once
(``benchmark.pedantic(..., rounds=1, iterations=1)``) and prints the series
the paper's figure plots.  The scale is controlled by the ``REPRO_BENCH_SCALE``
environment variable: ``smoke`` (default, seconds per figure) or ``full``
(the paper's full 2/4/8/16-node sweep; minutes per figure).
"""

import os

import pytest

from repro.bench import FULL, SMOKE


def _selected_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    return FULL if name == "full" else SMOKE


@pytest.fixture(scope="session")
def bench_scale():
    """The benchmark scale preset selected for this run."""
    return _selected_scale()


@pytest.fixture(scope="session")
def large_cluster_nodes(bench_scale):
    """Node count used for the paper's "16 node" figure panels.

    The smoke preset uses its largest configured cluster instead of 16 nodes
    so the whole suite stays fast; the full preset uses 16.
    """
    return max(bench_scale.node_counts)


def print_figure(title: str, body: str) -> None:
    """Print a figure table with a recognisable banner."""
    print(f"\n=== {title} ===")
    print(body)
