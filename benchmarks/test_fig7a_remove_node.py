"""Figure 7a — rebalance time when removing one node (N -> N-1).

Paper shape: both bucketing approaches are several times cheaper than the
global Hashing baseline, because they move only the displaced buckets instead
of rewriting nearly every record.
"""

from conftest import print_figure

from repro.bench import run_scaling_experiment, series_table


def test_fig7a_remove_node(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_scaling_experiment(bench_scale), rounds=1, iterations=1
    )
    print_figure(
        "Figure 7a: rebalance time, removing one node (simulated minutes)",
        series_table(result.remove_minutes, "nodes", "min"),
    )

    for nodes in bench_scale.node_counts:
        hashing = result.remove_minutes["Hashing"][nodes]
        for strategy in ("StaticHash", "DynaHash"):
            bucketed = result.remove_minutes[strategy][nodes]
            assert bucketed < hashing / 2, (
                f"{strategy} at {nodes} nodes should rebalance at least 2x faster "
                f"than Hashing ({bucketed:.1f} vs {hashing:.1f} minutes)"
            )
        # Hashing rewrites (nearly) every record; bucketing moves only the
        # removed node's share (~1/N of the records, so exactly half at N=2).
        ratio = (
            result.records_moved_remove["DynaHash"][nodes]
            / max(1, result.records_moved_remove["Hashing"][nodes])
        )
        assert ratio <= 1.05 / nodes + 0.05, (
            f"DynaHash moved {ratio:.2%} of what Hashing moved at {nodes} nodes"
        )
