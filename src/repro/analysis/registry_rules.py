"""Registry-key rules: strategy/policy string literals must name real
registry entries.

``strategy="dynahash"`` and ``policy="cost_aware"`` are string-keyed lookups
into the strategy registry (:mod:`repro.rebalance.strategies`) and the
autopilot policy registry (:mod:`repro.control.policy`).  A typo fails at
runtime — deep inside a scenario, or not until CI runs the one example using
it.  These rules fail it at lint time instead:

* ``reg-unknown-strategy`` / ``reg-unknown-policy`` — a ``strategy=`` /
  ``policy=`` keyword literal (or the first argument of
  ``strategy_by_name``/``resolve_strategy``/``policy_by_name``/
  ``resolve_policy``) that is not a registered name or alias.
* ``reg-spec-key`` — a committed TOML scenario spec whose
  ``[cluster] strategy`` or ``[autopilot] policy`` is unregistered.

Names registered *in the same file* via ``register_strategy``/
``register_policy`` literal calls are allowed (tests and cookbook examples
plug in custom entries before using them); lookups are case-insensitive,
matching the registries.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, List, Optional, Set, Tuple

from .context import FileContext
from .violations import Violation

__all__ = ["check", "check_toml", "known_policy_names", "known_strategy_names"]


def known_strategy_names() -> FrozenSet[str]:
    """Every accepted strategy name and alias (lowercase), from the live registry."""
    from ..rebalance.strategies import _STRATEGY_ALIASES

    return frozenset(_STRATEGY_ALIASES)


def known_policy_names() -> FrozenSet[str]:
    """Every accepted policy name and alias (lowercase), from the live registry."""
    from ..control.policy import _POLICY_ALIASES

    return frozenset(_POLICY_ALIASES)


_STRATEGY_RESOLVERS = frozenset({"strategy_by_name", "resolve_strategy"})
_POLICY_RESOLVERS = frozenset({"policy_by_name", "resolve_policy"})
_REGISTER_FUNCS = {"register_strategy": "strategy", "register_policy": "policy"}


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _local_registrations(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names registered by literal register_* calls in this file."""
    strategies: Set[str] = set()
    policies: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _REGISTER_FUNCS.get(_call_name(node) or "")
        if kind is None:
            continue
        names: Set[str] = set()
        if node.args:
            name = _literal_str(node.args[0])
            if name:
                names.add(name.lower())
        for kw in node.keywords:
            if kw.arg == "aliases" and isinstance(kw.value, (ast.Tuple, ast.List)):
                names.update(
                    alias.lower()
                    for alias in map(_literal_str, kw.value.elts)
                    if alias is not None
                )
        (strategies if kind == "strategy" else policies).update(names)
    return strategies, policies


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: List[Violation] = []
        local_strategies, local_policies = _local_registrations(ctx.tree)
        self.strategies = known_strategy_names() | local_strategies
        self.policies = known_policy_names() | local_policies

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.found.append(
            Violation(
                self.ctx.relpath,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule,
                message,
            )
        )

    def _check_name(self, node: ast.AST, kind: str, value: str) -> None:
        known = self.strategies if kind == "strategy" else self.policies
        if value.strip().lower() in known:
            return
        rule = "reg-unknown-strategy" if kind == "strategy" else "reg-unknown-policy"
        self._report(
            node,
            rule,
            f"{value!r} is not a registered {kind} "
            f"(known: {', '.join(sorted(known))})",
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in _REGISTER_FUNCS:
            self.generic_visit(node)
            return
        if name in _STRATEGY_RESOLVERS and node.args:
            literal = _literal_str(node.args[0])
            if literal is not None:
                self._check_name(node.args[0], "strategy", literal)
        elif name in _POLICY_RESOLVERS and node.args:
            literal = _literal_str(node.args[0])
            if literal is not None:
                self._check_name(node.args[0], "policy", literal)
        for kw in node.keywords:
            if kw.arg not in ("strategy", "policy"):
                continue
            literal = _literal_str(kw.value)
            if literal is not None:
                self._check_name(kw.value, kw.arg, literal)
        self.generic_visit(node)


def check(ctx: FileContext) -> List[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.found


# ------------------------------------------------------------------- TOML


def _key_line(text: str, key: str, value: str) -> int:
    """Best-effort line number of ``key = "value"`` in TOML source."""
    pattern = re.compile(
        rf"^\s*{re.escape(key)}\s*=\s*['\"]{re.escape(value)}['\"]", re.MULTILINE
    )
    match = pattern.search(text)
    return text.count("\n", 0, match.start()) + 1 if match else 1


def check_toml(relpath: str, text: str) -> List[Violation]:
    """Validate strategy/policy keys of one committed scenario spec."""
    from ..scenario._toml import TOMLParseError, parse_toml

    try:
        document = parse_toml(text)
    except TOMLParseError:
        return []  # not a scenario spec (or covered by the spec test suite)
    found: List[Violation] = []
    cluster = document.get("cluster")
    if isinstance(cluster, dict):
        strategy = cluster.get("strategy")
        if isinstance(strategy, str) and strategy.lower() not in known_strategy_names():
            found.append(
                Violation(
                    relpath,
                    _key_line(text, "strategy", strategy),
                    1,
                    "reg-spec-key",
                    f"spec names unregistered strategy {strategy!r} "
                    f"(known: {', '.join(sorted(known_strategy_names()))})",
                )
            )
    autopilot = document.get("autopilot")
    if isinstance(autopilot, dict):
        policy = autopilot.get("policy")
        if isinstance(policy, str) and policy.lower() not in known_policy_names():
            found.append(
                Violation(
                    relpath,
                    _key_line(text, "policy", policy),
                    1,
                    "reg-spec-key",
                    f"spec names unregistered policy {policy!r} "
                    f"(known: {', '.join(sorted(known_policy_names()))})",
                )
            )
    return found
