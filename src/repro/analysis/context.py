"""Per-file analysis context shared by every reprolint rule family."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FileContext", "dotted_name", "resolve_call_target"]


@dataclass
class FileContext:
    """One parsed file plus the path-derived facts rules branch on."""

    relpath: str  # repo-relative, posix-style
    source: str
    tree: ast.Module
    #: Under ``tests/`` — event-contract rules skip these (unit tests drive
    #: synthetic buses with made-up names); determinism and registry rules
    #: still apply.
    is_test: bool = False
    #: Bench/profiling context (``src/repro/bench``, ``benchmarks/``,
    #: ``tests/bench``, ``scripts/``) — wall-clock reads are the point there.
    wall_clock_allowed: bool = False
    #: Under ``src/`` — emit payloads must be complete, not just well-keyed.
    strict_payload: bool = False
    #: import alias -> fully qualified name, e.g. ``{"t": "time",
    #: "Random": "random.Random"}``.  Built once per file.
    imports: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = _collect_imports(self.tree)


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_target(ctx: FileContext, func: ast.AST) -> Optional[str]:
    """Resolve a call's target to a fully qualified dotted name.

    ``perf_counter()`` with ``from time import perf_counter`` resolves to
    ``time.perf_counter``; ``t.time()`` with ``import time as t`` to
    ``time.time``.  Calls on local objects (``self.clock.now()``) resolve to
    their syntactic dotted path — rule tables only list module-qualified
    names, so those never match.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = ctx.imports.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head
