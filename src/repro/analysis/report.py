"""Rendering lint results: plain ``path:line:col`` lines or GitHub
workflow-command annotations, plus the summary verdict line."""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from .violations import Violation

__all__ = ["render_report"]


def render_report(
    violations: Sequence[Violation], format: str = "plain", files_checked: int = 0
) -> str:
    """Render violations plus a one-line summary; empty input renders the
    all-clear verdict the CI log greps for."""
    if format not in ("plain", "github"):
        raise ValueError(f"unknown lint output format {format!r}; use 'plain' or 'github'")
    lines: List[str] = []
    for violation in violations:
        lines.append(
            violation.format_github() if format == "github" else violation.format_plain()
        )
    checked = f" ({files_checked} files checked)" if files_checked else ""
    if not violations:
        lines.append(f"reprolint: clean{checked}")
    else:
        by_rule = Counter(v.rule for v in violations)
        breakdown = ", ".join(f"{rule} x{count}" for rule, count in sorted(by_rule.items()))
        lines.append(
            f"reprolint: {len(violations)} violation(s){checked}: {breakdown}"
        )
    return "\n".join(lines)
