"""The reprolint engine: discover files, run every rule family, apply pragmas.

``lint_paths`` is the programmatic entry (the CLI and the test suite call
it); ``lint_repo`` lints the default roots (``src``, ``tests``, ``examples``,
``benchmarks``) the acceptance gate covers.  Scenario specs (``*.toml``)
under the roots get the registry-key rules; Python files get all three rule
families, scoped by path:

===================== ====================================================
``src/``               all rules, strict emit payloads
``tests/``             determinism + registry rules (event rules skipped:
                       unit tests drive synthetic buses by design)
``examples/``          all rules
``benchmarks/``        all rules, wall-clock reads allowed (bench context)
===================== ====================================================

``src/repro/bench``, ``tests/bench``, and ``scripts/`` are also wall-clock
contexts; ``tests/analysis/fixtures`` is excluded from discovery (its files
are intentionally bad — they are the linter's own test corpus and the CI
known-bad smoke input).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from . import determinism, event_rules, heap_rules, registry_rules
from .context import FileContext
from .pragmas import collect_pragmas
from .violations import Violation

__all__ = ["DEFAULT_ROOTS", "discover", "lint_file", "lint_paths", "lint_repo"]

#: The roots the repo acceptance gate lints.
DEFAULT_ROOTS = ("src", "tests", "examples", "benchmarks")

#: Path prefixes (repo-relative, posix) where wall-clock reads are the point.
WALL_CLOCK_PREFIXES = ("src/repro/bench", "benchmarks", "tests/bench", "scripts")

#: Directory names never descended into.
_SKIP_DIR_NAMES = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})

#: Repo-relative prefixes excluded from discovery (intentionally-bad corpus).
EXCLUDED_PREFIXES = ("tests/analysis/fixtures",)

_RULE_FAMILIES = (determinism.check, event_rules.check, heap_rules.check, registry_rules.check)


def _startswith(relpath: str, prefixes: Iterable[str]) -> bool:
    return any(relpath == p or relpath.startswith(p + "/") for p in prefixes)


def _repo_anchor(path: Path) -> Optional[Path]:
    for parent in path.parents:
        if (parent / "pyproject.toml").exists() or (parent / ".git").exists():
            return parent
    return None


def _relpath(path: Path, repo_root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        # The file lies outside ``repo_root`` (absolute paths from another
        # cwd): anchor at its own repo root so path scoping still applies.
        anchor = _repo_anchor(resolved)
        if anchor is not None:
            return resolved.relative_to(anchor).as_posix()
        return path.as_posix()


def lint_file(path: Union[str, Path], repo_root: Optional[Path] = None) -> List[Violation]:
    """Lint one file (``.py`` or ``.toml``) and return its violations."""
    path = Path(path)
    repo_root = Path(repo_root) if repo_root is not None else Path.cwd()
    relpath = _relpath(path, repo_root)
    text = path.read_text(encoding="utf-8")

    if path.suffix == ".toml":
        return registry_rules.check_toml(relpath, text)

    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        return [
            Violation(relpath, exc.lineno or 1, (exc.offset or 0) + 1, "parse-error", exc.msg or "syntax error")
        ]

    ctx = FileContext(
        relpath=relpath,
        source=text,
        tree=tree,
        is_test=_startswith(relpath, ("tests",)),
        wall_clock_allowed=_startswith(relpath, WALL_CLOCK_PREFIXES),
        strict_payload=_startswith(relpath, ("src",)),
    )
    found: List[Violation] = []
    for family in _RULE_FAMILIES:
        found.extend(family(ctx))

    pragmas = collect_pragmas(text)
    found = [v for v in found if not pragmas.suppresses(v.line, v.rule)]
    found.extend(pragmas.own_violations(relpath))
    return found


def _discover(path: Path, repo_root: Path) -> List[Path]:
    if path.is_file():
        return [path]
    files: List[Path] = []
    for candidate in sorted(path.rglob("*")):
        if candidate.suffix not in (".py", ".toml") or not candidate.is_file():
            continue
        if _SKIP_DIR_NAMES & set(candidate.parts):
            continue
        if _startswith(_relpath(candidate, repo_root), EXCLUDED_PREFIXES):
            continue
        files.append(candidate)
    return files


def discover(
    paths: Sequence[Union[str, Path]], repo_root: Optional[Union[str, Path]] = None
) -> List[Path]:
    """Every lintable file under ``paths`` (files pass through verbatim)."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        files.extend(_discover(path, root))
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]], repo_root: Optional[Union[str, Path]] = None
) -> List[Violation]:
    """Lint files and/or directories; violations sorted by path and line."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    found: List[Violation] = []
    for file_path in discover(paths, root):
        found.extend(lint_file(file_path, root))
    return sorted(found)


def lint_repo(repo_root: Optional[Union[str, Path]] = None) -> List[Violation]:
    """Lint the default roots under ``repo_root`` (default: cwd)."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    roots = [root / name for name in DEFAULT_ROOTS if (root / name).is_dir()]
    return lint_paths(roots, root)
