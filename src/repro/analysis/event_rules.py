"""Event-contract rules: every emit and subscription checked against the
declared contract (:mod:`repro.common.event_contract`).

* ``evt-undeclared-emit`` — ``emit("name", ...)`` (or a
  ``has_subscribers("name")`` probe) with a literal name the contract does
  not declare.
* ``evt-missing-key`` — a statically visible emit payload omits a required
  key.  Enforced in ``src/`` (strict-payload roots); emitters there define
  the contract, so they must satisfy it in full.
* ``evt-unknown-key`` — a payload key the contract does not declare for the
  event, anywhere a literal emit appears.
* ``evt-unmatched-subscription`` — an ``on(pattern)`` / ``once(pattern)``
  literal pattern that matches no declared event: the callback is dead code.

Conventions the checker understands:

* A call to a method named ``emit`` is a *full-payload* emission; a call to
  a method named ``_emit`` is a *wrapper* emission that injects
  ``dataset`` and ``rebalance_id`` (the :class:`RebalanceOperation`
  convention), so those two count as provided.
* Payloads containing ``**kwargs`` are only checked for unknown keys among
  the visible ones (the rest is dynamic).
* Files under ``tests/`` are skipped wholesale: unit tests drive synthetic
  buses with made-up names by design.  The runtime completeness test
  (``tests/analysis/test_contract_completeness.py``) covers the real system
  end to end instead.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..common.event_contract import EVENT_CONTRACT, patterns_matching
from .context import FileContext
from .violations import Violation

__all__ = ["check"]

#: Keys the ``_emit`` wrapper convention injects before forwarding.
_WRAPPER_INJECTED = frozenset({"dataset", "rebalance_id"})

_SUBSCRIBE_METHODS = frozenset({"on", "once"})


def _func_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _literal_first_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: List[Violation] = []

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.found.append(
            Violation(
                self.ctx.relpath,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule,
                message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _func_name(node.func)
        if name in ("emit", "_emit"):
            self._check_emit(node, wrapper=(name == "_emit"))
        elif name == "has_subscribers":
            self._check_probe(node)
        elif name in _SUBSCRIBE_METHODS and isinstance(node.func, ast.Attribute):
            self._check_subscription(node)
        self.generic_visit(node)

    # -- emission ----------------------------------------------------------

    def _check_emit(self, node: ast.Call, wrapper: bool) -> None:
        event_name = _literal_first_arg(node)
        if event_name is None:
            return  # dynamic name; the runtime completeness test covers it
        spec = EVENT_CONTRACT.get(event_name)
        if spec is None:
            self._report(
                node,
                "evt-undeclared-emit",
                f"event {event_name!r} is not declared in "
                "repro.common.event_contract.EVENT_CONTRACT",
            )
            return
        provided = {kw.arg for kw in node.keywords if kw.arg is not None}
        has_splat = any(kw.arg is None for kw in node.keywords)
        unknown = sorted(provided - spec.payload_keys())
        for key in unknown:
            self._report(
                node,
                "evt-unknown-key",
                f"{event_name!r} payload key {key!r} is not declared "
                f"(declared: {', '.join(sorted(spec.payload_keys()))})",
            )
        if has_splat or not self.ctx.strict_payload:
            return
        if wrapper:
            provided = provided | _WRAPPER_INJECTED
        missing = sorted(set(spec.required) - provided)
        for key in missing:
            self._report(
                node,
                "evt-missing-key",
                f"{event_name!r} payload is missing required key {key!r}",
            )

    def _check_probe(self, node: ast.Call) -> None:
        event_name = _literal_first_arg(node)
        if event_name is not None and event_name not in EVENT_CONTRACT:
            self._report(
                node,
                "evt-undeclared-emit",
                f"has_subscribers probes undeclared event {event_name!r}",
            )

    # -- subscription ------------------------------------------------------

    def _check_subscription(self, node: ast.Call) -> None:
        pattern = _literal_first_arg(node)
        if pattern is None:
            return
        # A subscription's second argument is a callback; `on("x")` calls
        # with a single argument are someone else's API (e.g. pandas-style
        # joins) — require the callback shape before judging the pattern.
        if len(node.args) + len(node.keywords) < 2:
            return
        if not patterns_matching(pattern):
            self._report(
                node,
                "evt-unmatched-subscription",
                f"pattern {pattern!r} matches no declared event; the "
                "callback can never fire",
            )


def check(ctx: FileContext) -> List[Violation]:
    if ctx.is_test:
        return []
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.found
