"""Determinism rules: no ambient randomness, no wall clocks, no salted hashes.

The repo's contract is *same spec + same seed => bit-identical
MetricsSnapshot, in any process*.  These rules flag the constructs that break
it:

* ``det-unseeded-random`` — ``random.Random()`` with no seed argument.
* ``det-global-random`` — module-level ``random.*`` calls (one shared global
  stream any import can perturb).
* ``det-wall-clock`` — ``time.time``/``perf_counter``/``datetime.now``/...
  anywhere except the bench harness, which exists to measure real time.
* ``det-entropy`` — ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``,
  ``random.SystemRandom``.
* ``det-builtin-hash`` — builtin ``hash()`` or explicit ``.__hash__()``
  calls: Python salts str/bytes hashing per process (PYTHONHASHSEED), so
  seeding RNGs or routing data through ``hash()`` silently diverges across
  processes — exactly the bug this rule caught in ``repro.tpch.datagen``.
  Defining ``__hash__`` on a class (and delegating inside it) is fine; the
  rule exempts those bodies.
"""

from __future__ import annotations

import ast
from typing import List

from .context import FileContext, resolve_call_target
from .violations import Violation

__all__ = ["check"]

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Module-level functions of :mod:`random` that draw from the global stream.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: List[Violation] = []
        self._in_hash_def = 0

    # -- helpers -----------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.found.append(
            Violation(
                self.ctx.relpath,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule,
                message,
            )
        )

    # -- __hash__ exemption ------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        is_hash_def = getattr(node, "name", "") == "__hash__"
        self._in_hash_def += is_hash_def
        self.generic_visit(node)
        self._in_hash_def -= is_hash_def

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = resolve_call_target(self.ctx, node.func)
        if target is not None:
            self._check_target(node, target)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__hash__"
            and not self._in_hash_def
        ):
            # `.__hash__()` on a computed expression (e.g. a tuple literal)
            # never resolves to a dotted name; catch it here — this exact
            # shape was the datagen per-table seeding bug.
            self._report(
                node,
                "det-builtin-hash",
                "__hash__() is salted per process for str/bytes "
                "(PYTHONHASHSEED); use repro.common.hashutil or "
                "zlib.crc32/hashlib for stable hashing",
            )
        self.generic_visit(node)

    def _check_target(self, node: ast.Call, target: str) -> None:
        if target == "random.Random" and not node.args and not node.keywords:
            self._report(
                node,
                "det-unseeded-random",
                "random.Random() without a seed draws from OS entropy; "
                "derive the seed from ClusterConfig.seed",
            )
            return
        if target in _ENTROPY or target.startswith("secrets."):
            self._report(
                node,
                "det-entropy",
                f"{target} reads OS entropy and can never replay identically",
            )
            return
        if target in _WALL_CLOCK:
            if not self.ctx.wall_clock_allowed:
                self._report(
                    node,
                    "det-wall-clock",
                    f"{target} reads the real clock; simulated time comes from "
                    "the cost model (SimulatedClock)",
                )
            return
        module, _, func = target.rpartition(".")
        if module == "random" and func in _GLOBAL_RANDOM_FUNCS:
            self._report(
                node,
                "det-global-random",
                f"random.{func} uses the shared global RNG; draw from a "
                "seeded random.Random instance instead",
            )
            return
        if self._in_hash_def:
            return
        if target == "hash" or target.endswith(".__hash__"):
            self._report(
                node,
                "det-builtin-hash",
                "builtin hash() is salted per process for str/bytes "
                "(PYTHONHASHSEED); use repro.common.hashutil or "
                "zlib.crc32/hashlib for stable hashing",
            )


def check(ctx: FileContext) -> List[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.found
