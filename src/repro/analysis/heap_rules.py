"""Heap-determinism rule: heap entries must carry an explicit tiebreak.

* ``det-heap-tiebreak`` — ``heapq.heappush``/``heappushpop``/``heapreplace``
  of a bare 2-tuple literal ``(timestamp, payload)``.

When two entries share a timestamp, tuple comparison falls through to the
payload: a ``TypeError`` for unorderable payloads, or — worse — a silently
order-dependent dispatch that varies with payload contents.  The
:mod:`repro.sim` scheduler's convention is the fix: a monotone sequence
number assigned at scheduling time, ``(timestamp, seq, payload)``, which
makes equal-time ordering *scheduling order by construction* and guarantees
the payload is never compared.

Only 2-tuple *literals* are flagged: the shape is statically unambiguous,
and longer tuples already carry a middle element positioned to break ties.
A genuine 2-tuple of totally ordered scalars can be pragma-allowed with a
reason (``# reprolint: allow[det-heap-tiebreak] -- ...``).
"""

from __future__ import annotations

import ast
from typing import List

from .context import FileContext, resolve_call_target
from .violations import Violation

__all__ = ["check"]

#: heapq entry points whose pushed item lands in the heap's total order.
_PUSH_TARGETS = frozenset({"heapq.heappush", "heapq.heappushpop", "heapq.heapreplace"})


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: List[Violation] = []

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.found.append(
            Violation(
                self.ctx.relpath,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                rule,
                message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        target = resolve_call_target(self.ctx, node.func)
        if target in _PUSH_TARGETS and len(node.args) >= 2:
            item = node.args[1]
            if isinstance(item, ast.Tuple) and len(item.elts) == 2:
                name = target.rpartition(".")[2]
                self._report(
                    item,
                    "det-heap-tiebreak",
                    f"{name} of a 2-tuple compares the payload on equal-time "
                    "ties; push (timestamp, seq, payload) with a monotone "
                    "seq counter (the repro.sim.EventScheduler convention)",
                )
        self.generic_visit(node)


def check(ctx: FileContext) -> List[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.found
