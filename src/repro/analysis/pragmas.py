"""``# reprolint: allow[rule] -- reason`` pragma parsing.

A pragma suppresses the named rule(s) on the physical line it sits on (the
line a violation reports — for a multi-line call, the line the call starts
on).  The reason is mandatory: an audited exception that cannot say *why* it
is safe is not audited.  Examples::

    value = hash(key)  # reprolint: allow[det-builtin-hash] -- float hashes are unsalted
    # reprolint: allow[det-wall-clock,det-entropy] -- bench harness measures real time

Comments are found with :mod:`tokenize`, so pragma-looking text inside string
literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .violations import RULE_CATALOG, Violation

__all__ = ["FilePragmas", "Pragma", "collect_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class FilePragmas:
    """Per-file pragma index: which rules are allowed on which lines."""

    def __init__(self, pragmas: List[Pragma]) -> None:
        self.pragmas = pragmas
        self._by_line: Dict[int, Tuple[str, ...]] = {}
        for pragma in pragmas:
            merged = self._by_line.get(pragma.line, ()) + pragma.rules
            self._by_line[pragma.line] = merged

    def suppresses(self, line: int, rule: str) -> bool:
        allowed = self._by_line.get(line, ())
        return rule in allowed or "*" in allowed

    def own_violations(self, relpath: str) -> List[Violation]:
        """The pragma comments' own findings (missing reason, unknown rule)."""
        found: List[Violation] = []
        for pragma in self.pragmas:
            if not pragma.reason:
                found.append(
                    Violation(
                        relpath,
                        pragma.line,
                        1,
                        "pragma-missing-reason",
                        "pragma needs `-- <reason>`: say why this exception is safe",
                    )
                )
            for rule in pragma.rules:
                if rule != "*" and rule not in RULE_CATALOG:
                    found.append(
                        Violation(
                            relpath,
                            pragma.line,
                            1,
                            "pragma-missing-reason",
                            f"pragma names unknown rule {rule!r} "
                            f"(see `python -m repro lint --list-rules`)",
                        )
                    )
        return found


def collect_pragmas(source: str) -> FilePragmas:
    """Parse every reprolint pragma comment in ``source``."""
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports the parse error separately; no pragmas then.
        comments = []
    for line, text in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        pragmas.append(Pragma(line=line, rules=rules, reason=(match.group("reason") or "").strip()))
    return FilePragmas(pragmas)
