"""Violation records and the rule catalogue for reprolint.

Every rule has a stable kebab-case identifier (what pragmas suppress and CI
annotations carry) and a one-line description; ``RULE_CATALOG`` is the
complete list, rendered by ``python -m repro lint --list-rules`` and kept in
sync with ``docs/STATIC_ANALYSIS.md`` by the docs tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["RULE_CATALOG", "Violation"]


#: rule id -> one-line description (the catalogue the docs render).
RULE_CATALOG: Dict[str, str] = {
    # determinism family
    "det-unseeded-random": (
        "`random.Random()` constructed without a seed — every RNG stream "
        "must derive from `ClusterConfig.seed`"
    ),
    "det-global-random": (
        "module-level `random.*` call (shared, externally seedable global "
        "RNG state) — use a seeded `random.Random` instance"
    ),
    "det-wall-clock": (
        "wall/CPU clock read (`time.time`, `perf_counter`, `datetime.now`, "
        "...) outside the bench harness — simulated time comes from the "
        "cost model via `SimulatedClock`"
    ),
    "det-entropy": (
        "OS entropy source (`os.urandom`, `uuid.uuid1/4`, `secrets.*`, "
        "`random.SystemRandom`) — never reproducible across runs"
    ),
    "det-builtin-hash": (
        "builtin `hash()` / `.__hash__()` call — salted per process for "
        "str/bytes, so seeding or routing through it breaks cross-process "
        "determinism; use `repro.common.hashutil` or `zlib`/`hashlib`"
    ),
    "det-heap-tiebreak": (
        "`heapq.heappush`/`heappushpop`/`heapreplace` of a bare 2-tuple — "
        "equal-time ties fall through to comparing the payload; push "
        "`(timestamp, seq, payload)` with a monotone seq counter instead"
    ),
    # event-contract family
    "evt-undeclared-emit": (
        "emits (or probes) an event name not declared in "
        "`repro.common.event_contract.EVENT_CONTRACT`"
    ),
    "evt-missing-key": (
        "emit payload omits a key the contract requires for this event"
    ),
    "evt-unknown-key": (
        "emit payload carries a key the contract does not declare for this "
        "event"
    ),
    "evt-unmatched-subscription": (
        "`on()`/`once()` pattern matches no declared event — the callback "
        "could never fire"
    ),
    # registry-key family
    "reg-unknown-strategy": (
        "string literal names a rebalancing strategy that is not in the "
        "strategy registry (names or aliases)"
    ),
    "reg-unknown-policy": (
        "string literal names an autopilot policy that is not in the policy "
        "registry (names or aliases)"
    ),
    "reg-spec-key": (
        "a committed scenario spec (TOML) names an unregistered strategy or "
        "policy"
    ),
    # the linter's own hygiene
    "pragma-missing-reason": (
        "`# reprolint: allow[...]` pragma without a `-- reason`; audited "
        "exceptions must say why"
    ),
    "parse-error": "the file failed to parse (syntax error)",
}


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and what is wrong."""

    path: str  # repo-relative, posix-style
    line: int
    column: int
    rule: str
    message: str

    def format_plain(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def format_github(self) -> str:
        """One GitHub Actions workflow-command annotation line."""
        return (
            f"::error file={self.path},line={self.line},col={self.column},"
            f"title=reprolint {self.rule}::{self.message}"
        )
