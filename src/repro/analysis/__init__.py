"""reprolint — the repo's invariant-enforcing static-analysis suite.

The whole value proposition of this reproduction is determinism: seeded RNG
streams, bit-identical :class:`~repro.api.MetricsSnapshot`\\ s, and the
record/replay zero-diff gate.  ``reprolint`` machine-checks the invariants
that make that story true, so they survive refactors (in particular the
ROADMAP's discrete-event concurrency rewrite) instead of living in prose:

* **determinism rules** (``det-*``) — no unseeded/global RNGs, no wall-clock
  reads outside the bench harness, no OS entropy, no salted builtin
  ``hash()`` in seeding or routing paths;
* **event-contract rules** (``evt-*``) — every ``emit("name", {...})`` and
  ``on("pattern")`` in the tree checked against the declared contract in
  :mod:`repro.common.event_contract` (which also generates the
  ``docs/ARCHITECTURE.md`` event tables);
* **registry-key rules** (``reg-*``) — ``strategy="..."`` / ``policy="..."``
  literals and committed scenario specs validated against the live
  registries.

Run it as ``python -m repro lint`` (plain or ``--format github`` output);
audited exceptions carry ``# reprolint: allow[rule] -- reason`` pragmas.
See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and how to extend it.
"""

from __future__ import annotations

from .engine import DEFAULT_ROOTS, lint_file, lint_paths, lint_repo
from .pragmas import FilePragmas, Pragma, collect_pragmas
from .report import render_report
from .violations import RULE_CATALOG, Violation

__all__ = [
    "DEFAULT_ROOTS",
    "FilePragmas",
    "Pragma",
    "RULE_CATALOG",
    "Violation",
    "collect_pragmas",
    "lint_file",
    "lint_paths",
    "lint_repo",
    "render_report",
]
