"""Benchmark scaling configuration.

The paper's experiments load 100 GB of TPC-H data per node on 2-16 AWS nodes;
the reproduction runs the same experiment *structure* on a laptop by loading a
small scale factor and multiplying the accounted work by ``workload_scale`` so
the reported simulated durations land in the paper's ballpark (the relative
comparisons never depend on the multiplier).

Two presets are provided:

* :data:`SMOKE` — seconds-fast, used by the pytest-benchmark suite and CI.
* :data:`FULL` — the full 2/4/8/16 node sweep with more data; minutes-fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from ..common.config import BucketingConfig, ClusterConfig, CostModelConfig, LSMConfig
from ..common.units import KIB

#: TPC-H scale factor per node used by the paper.
PAPER_SCALE_PER_NODE = 100.0


@dataclass(frozen=True)
class BenchScale:
    """Controls how large the benchmark runs are."""

    #: Cluster sizes swept by the node-count experiments (paper: 2, 4, 8, 16).
    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    #: Storage partitions per node (paper: 4).
    partitions_per_node: int = 4
    #: TPC-H scale factor loaded per node (paper: 100).
    scale_per_node: float = 0.0002
    #: Cluster sizes used by the query experiments (paper: 4 and 16 nodes).
    query_node_counts: Tuple[int, ...] = (4, 16)
    #: Controlled write rates (krecords/s) for the concurrent-write experiment.
    write_rates_krecords: Tuple[int, ...] = (0, 10, 20, 30, 40)
    #: How many concurrent rows represent one krecord/s of write rate.
    rows_per_krecord: int = 40
    #: Maximum bucket size for DynaHash, scaled with the data so loading
    #: produces about 4 buckets per partition as in the paper.
    max_bucket_bytes: int = 64 * KIB
    #: StaticHash total bucket count (paper: 256).
    static_total_buckets: int = 256
    #: Memory-component budget per partition.
    memory_component_bytes: int = 48 * KIB
    seed: int = 2022

    @property
    def workload_scale(self) -> float:
        """Work multiplier making simulated durations comparable to the paper."""
        return PAPER_SCALE_PER_NODE / self.scale_per_node

    def cluster_config(self, num_nodes: int) -> ClusterConfig:
        """Cluster configuration for a benchmark run with ``num_nodes`` nodes."""
        return ClusterConfig(
            num_nodes=num_nodes,
            partitions_per_node=self.partitions_per_node,
            lsm=LSMConfig(memory_component_bytes=self.memory_component_bytes),
            bucketing=BucketingConfig(
                max_bucket_bytes=self.max_bucket_bytes,
                initial_buckets_per_partition=1,
                static_total_buckets=self.static_total_buckets,
            ),
            cost=CostModelConfig(),
            seed=self.seed,
        )

    def scale_factor(self, num_nodes: int) -> float:
        """Total TPC-H scale factor for a cluster of ``num_nodes`` nodes."""
        return self.scale_per_node * num_nodes

    def with_nodes(self, node_counts: Sequence[int]) -> "BenchScale":
        return replace(self, node_counts=tuple(node_counts))


#: Fast preset used by the pytest-benchmark suite.
SMOKE = BenchScale(
    node_counts=(2, 4, 8),
    query_node_counts=(4,),
    scale_per_node=0.0002,
    partitions_per_node=2,
    write_rates_krecords=(0, 10, 20, 40),
    static_total_buckets=64,
    max_bucket_bytes=48 * KIB,
    memory_component_bytes=32 * KIB,
)

#: The full sweep matching the paper's x-axes.
FULL = BenchScale()
