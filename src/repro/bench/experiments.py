"""Experiment drivers regenerating every figure of the paper's evaluation.

Each ``run_*`` function builds fresh simulated clusters, loads TPC-H at the
configured scale, performs the paper's experiment, and returns the series the
corresponding figure plots.  The pytest-benchmark targets under
``benchmarks/`` are thin wrappers that call these drivers and print the
resulting tables; EXPERIMENTS.md is generated from the same functions.

Figure map (Section VI):

* Figure 6  — :func:`run_ingestion_experiment`
* Figure 7a/7b — :func:`run_scaling_experiment` (remove / add node)
* Figure 7c — :func:`run_concurrent_write_experiment`
* Figure 8a/8b — :func:`run_query_experiment` (original cluster)
* Figure 9a/9b — :func:`run_query_experiment` with ``downsize=True``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Tuple

from ..cluster.controller import SimulatedCluster
from ..rebalance.strategies import (
    DynaHashStrategy,
    GlobalHashingStrategy,
    RebalancingStrategy,
    StaticHashStrategy,
)
from ..tpch.queries import QUERY_NAMES, query_spec
from ..tpch.workload import TPCHLoadResult, TPCHWorkload
from .config import SMOKE, BenchScale

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import Database

#: The three approaches the paper evaluates, in its plotting order.
PAPER_STRATEGIES = ("Hashing", "StaticHash", "DynaHash")

#: Tables loaded for the ingestion/rebalance experiments (the two fact tables
#: dominate storage; dimension tables add little signal but real time).
SCALING_TABLES = ("orders", "lineitem")
#: Tables loaded for the query experiments (all of them — the 22 queries touch
#: every table).
QUERY_TABLES = ("region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem")


def make_strategy(name: str, scale: BenchScale) -> RebalancingStrategy:
    """Build a strategy configured for the benchmark scale."""
    if name == "Hashing":
        return GlobalHashingStrategy()
    if name == "StaticHash":
        return StaticHashStrategy(total_buckets=scale.static_total_buckets)
    if name == "DynaHash":
        return DynaHashStrategy(max_bucket_bytes=scale.max_bucket_bytes)
    raise ValueError(f"unknown strategy {name!r}")


def build_loaded_database(
    scale: BenchScale,
    num_nodes: int,
    strategy_name: str,
    tables: Sequence[str] = SCALING_TABLES,
) -> "Tuple[Database, TPCHWorkload, TPCHLoadResult]":
    """Open a :class:`~repro.api.Database` with the given strategy and load
    TPC-H into it — the API-level entry point the experiment drivers use."""
    # Imported lazily: repro.api re-exports bench helpers (format_table), so a
    # module-level import here would be circular.
    from ..api import Database

    db = Database(
        scale.cluster_config(num_nodes),
        strategy=make_strategy(strategy_name, scale),
        workload_scale=scale.workload_scale,
    )
    workload = TPCHWorkload(scale_factor=scale.scale_factor(num_nodes), seed=scale.seed)
    load_result = workload.load(db.cluster, tables=tables)
    return db, workload, load_result


def build_loaded_cluster(
    scale: BenchScale,
    num_nodes: int,
    strategy_name: str,
    tables: Sequence[str] = SCALING_TABLES,
) -> Tuple[SimulatedCluster, TPCHWorkload, TPCHLoadResult]:
    """Legacy variant of :func:`build_loaded_database` returning the raw
    cluster (kept for existing callers and tests)."""
    db, workload, load_result = build_loaded_database(
        scale, num_nodes, strategy_name, tables=tables
    )
    return db.cluster, workload, load_result


# ---------------------------------------------------------------------------
# Figure 6: ingestion time
# ---------------------------------------------------------------------------


@dataclass
class IngestionExperimentResult:
    """Series for Figure 6: ingestion minutes by strategy and cluster size."""

    minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    splits: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def series(self) -> Mapping[str, Mapping[int, float]]:
        return self.minutes


def run_ingestion_experiment(
    scale: BenchScale = SMOKE,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    node_counts: Optional[Sequence[int]] = None,
) -> IngestionExperimentResult:
    """Figure 6: TPC-H ingestion time for each approach and cluster size."""
    result = IngestionExperimentResult()
    for strategy_name in strategies:
        result.minutes[strategy_name] = {}
        result.splits[strategy_name] = {}
        for num_nodes in node_counts or scale.node_counts:
            _db, _workload, load = build_loaded_database(scale, num_nodes, strategy_name)
            result.minutes[strategy_name][num_nodes] = load.total_simulated_seconds / 60.0
            result.splits[strategy_name][num_nodes] = sum(
                report.splits for report in load.reports.values()
            )
    return result


# ---------------------------------------------------------------------------
# Figures 7a / 7b: rebalance time when removing / adding a node
# ---------------------------------------------------------------------------


@dataclass
class ScalingExperimentResult:
    """Series for Figures 7a and 7b."""

    remove_minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    add_minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    records_moved_remove: Dict[str, Dict[int, int]] = field(default_factory=dict)
    records_moved_add: Dict[str, Dict[int, int]] = field(default_factory=dict)


@lru_cache(maxsize=8)
def _cached_scaling_experiment(
    scale: BenchScale, strategies: Tuple[str, ...], node_counts: Tuple[int, ...]
) -> ScalingExperimentResult:
    result = ScalingExperimentResult()
    for strategy_name in strategies:
        result.remove_minutes[strategy_name] = {}
        result.add_minutes[strategy_name] = {}
        result.records_moved_remove[strategy_name] = {}
        result.records_moved_add[strategy_name] = {}
        for num_nodes in node_counts:
            db, _workload, _load = build_loaded_database(scale, num_nodes, strategy_name)
            # Paper protocol: loaded at N nodes, rebalance to N-1 (remove),
            # then back to N (add).
            remove_report = db.remove_nodes(1)
            result.remove_minutes[strategy_name][num_nodes] = remove_report.simulated_minutes
            result.records_moved_remove[strategy_name][num_nodes] = (
                remove_report.total_records_moved
            )
            add_report = db.add_nodes(1)
            result.add_minutes[strategy_name][num_nodes] = add_report.simulated_minutes
            result.records_moved_add[strategy_name][num_nodes] = add_report.total_records_moved
    return result


def run_scaling_experiment(
    scale: BenchScale = SMOKE,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    node_counts: Optional[Sequence[int]] = None,
) -> ScalingExperimentResult:
    """Figures 7a/7b: rebalance time for removing and then re-adding a node."""
    return _cached_scaling_experiment(
        scale, tuple(strategies), tuple(node_counts or scale.node_counts)
    )


# ---------------------------------------------------------------------------
# Figure 7c: rebalance under concurrent writes
# ---------------------------------------------------------------------------


@dataclass
class ConcurrentWriteExperimentResult:
    """Series for Figure 7c: DynaHash rebalance time vs. concurrent write rate."""

    minutes_by_rate: Dict[int, float] = field(default_factory=dict)
    replicated_records_by_rate: Dict[int, int] = field(default_factory=dict)


def run_concurrent_write_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 4,
    write_rates_krecords: Optional[Sequence[int]] = None,
) -> ConcurrentWriteExperimentResult:
    """Figure 7c: rebalance 4 -> 3 nodes while ingesting into LineItem."""
    result = ConcurrentWriteExperimentResult()
    for rate in write_rates_krecords or scale.write_rates_krecords:
        db, workload, _load = build_loaded_database(scale, num_nodes, "DynaHash")
        concurrent_rows = workload.concurrent_lineitem_rows(rate * scale.rows_per_krecord)
        report = db.rebalance(
            num_nodes - 1,
            concurrent_rows={"lineitem": concurrent_rows} if concurrent_rows else None,
        )
        result.minutes_by_rate[rate] = report.simulated_minutes
        result.replicated_records_by_rate[rate] = sum(
            dataset_report.replicated_log_records for dataset_report in report.dataset_reports
        )
    return result


# ---------------------------------------------------------------------------
# Figures 8 and 9: TPC-H query performance
# ---------------------------------------------------------------------------

#: The four approaches of Figure 8 (DynaHash-lazy-cleanup is DynaHash measured
#: right after a rebalance, while its secondary indexes still carry obsolete
#: entries).
QUERY_APPROACHES = ("Hashing", "StaticHash", "DynaHash", "DynaHash-lazy-cleanup")


@dataclass
class QueryExperimentResult:
    """Per-query simulated seconds by approach (one figure panel)."""

    num_nodes: int
    downsized: bool
    seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def approaches(self) -> List[str]:
        return list(self.seconds.keys())


def run_query_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 4,
    downsize: bool = False,
    approaches: Optional[Sequence[str]] = None,
    queries: Sequence[str] = QUERY_NAMES,
) -> QueryExperimentResult:
    """Figures 8 (original cluster) and 9 (after rebalancing down one node).

    ``downsize=False`` measures queries on the freshly loaded N-node cluster
    (Figure 8); ``downsize=True`` first rebalances the datasets down to N-1
    nodes and measures there (Figure 9).  The ``DynaHash-lazy-cleanup``
    approach is DynaHash rebalanced down and back up, so its queries run while
    secondary indexes still contain lazily-invalidated entries (only used for
    Figure 8, as in the paper).
    """
    if approaches is None:
        approaches = QUERY_APPROACHES if not downsize else PAPER_STRATEGIES
    result = QueryExperimentResult(num_nodes=num_nodes, downsized=downsize)
    for approach in approaches:
        strategy_name = "DynaHash" if approach.startswith("DynaHash") else approach
        db, _workload, _load = build_loaded_database(
            scale, num_nodes, strategy_name, tables=QUERY_TABLES
        )
        if downsize:
            db.remove_nodes(1)
        elif approach == "DynaHash-lazy-cleanup":
            # Rebalance down and back up so moved buckets leave obsolete
            # entries behind in the secondary indexes (lazy cleanup).
            db.remove_nodes(1)
            db.add_nodes(1)
        result.seconds[approach] = {}
        for query_name in queries:
            report = db.execute_spec(query_spec(query_name))
            result.seconds[approach][query_name] = report.simulated_seconds
    return result
