"""Experiment drivers regenerating every figure of the paper's evaluation.

Each ``run_*`` function builds fresh simulated clusters, loads TPC-H at the
configured scale, performs the paper's experiment, and returns the series the
corresponding figure plots.  The pytest-benchmark targets under
``benchmarks/`` are thin wrappers that call these drivers and print the
resulting tables; EXPERIMENTS.md is generated from the same functions.

Figure map (Section VI):

* Figure 6  — :func:`run_ingestion_experiment`
* Figure 7a/7b — :func:`run_scaling_experiment` (remove / add node)
* Figure 7c — :func:`run_concurrent_write_experiment`
* Figure 8a/8b — :func:`run_query_experiment` (original cluster)
* Figure 9a/9b — :func:`run_query_experiment` with ``downsize=True``

Beyond the paper's figures, :func:`run_traffic_experiment` drives sustained
YCSB-style mixed traffic through the client API while a rebalance is in
flight and reports phase-tagged latency percentiles (the Figure 7c story as
first-class telemetry), and :func:`run_autopilot_experiment` lets the
:mod:`repro.control` autopilot close the loop — a hotspot storm with **no**
scheduled rebalance that the policy detects, plans, and resolves on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Tuple

from ..rebalance.strategies import (
    DynaHashStrategy,
    GlobalHashingStrategy,
    RebalancingStrategy,
    StaticHashStrategy,
)
from ..tpch.queries import QUERY_NAMES, query_spec
from ..tpch.workload import TPCHLoadResult, TPCHWorkload
from .config import SMOKE, BenchScale

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import Database

#: The three approaches the paper evaluates, in its plotting order.
PAPER_STRATEGIES = ("Hashing", "StaticHash", "DynaHash")

#: Tables loaded for the ingestion/rebalance experiments (the two fact tables
#: dominate storage; dimension tables add little signal but real time).
SCALING_TABLES = ("orders", "lineitem")
#: Tables loaded for the query experiments (all of them — the 22 queries touch
#: every table).
QUERY_TABLES = ("region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem")


def make_strategy(name: str, scale: BenchScale) -> RebalancingStrategy:
    """Build a strategy configured for the benchmark scale."""
    if name == "Hashing":
        return GlobalHashingStrategy()
    if name == "StaticHash":
        return StaticHashStrategy(total_buckets=scale.static_total_buckets)
    if name == "DynaHash":
        return DynaHashStrategy(max_bucket_bytes=scale.max_bucket_bytes)
    raise ValueError(f"unknown strategy {name!r}")


def build_loaded_database(
    scale: BenchScale,
    num_nodes: int,
    strategy_name: str,
    tables: Sequence[str] = SCALING_TABLES,
) -> "Tuple[Database, TPCHWorkload, TPCHLoadResult]":
    """Open a :class:`~repro.api.Database` with the given strategy and load
    TPC-H into it — the API-level entry point the experiment drivers use."""
    # Imported lazily: repro.api re-exports bench helpers (format_table), so a
    # module-level import here would be circular.
    from ..api import Database

    db = Database(
        scale.cluster_config(num_nodes),
        strategy=make_strategy(strategy_name, scale),
        workload_scale=scale.workload_scale,
    )
    workload = TPCHWorkload(scale_factor=scale.scale_factor(num_nodes), seed=scale.seed)
    load_result = workload.load(db.cluster, tables=tables)
    return db, workload, load_result


# ---------------------------------------------------------------------------
# Figure 6: ingestion time
# ---------------------------------------------------------------------------


@dataclass
class IngestionExperimentResult:
    """Series for Figure 6: ingestion minutes by strategy and cluster size."""

    minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    splits: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def series(self) -> Mapping[str, Mapping[int, float]]:
        return self.minutes


def run_ingestion_experiment(
    scale: BenchScale = SMOKE,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    node_counts: Optional[Sequence[int]] = None,
) -> IngestionExperimentResult:
    """Figure 6: TPC-H ingestion time for each approach and cluster size."""
    result = IngestionExperimentResult()
    for strategy_name in strategies:
        result.minutes[strategy_name] = {}
        result.splits[strategy_name] = {}
        for num_nodes in node_counts or scale.node_counts:
            _db, _workload, load = build_loaded_database(scale, num_nodes, strategy_name)
            result.minutes[strategy_name][num_nodes] = load.total_simulated_seconds / 60.0
            result.splits[strategy_name][num_nodes] = sum(
                report.splits for report in load.reports.values()
            )
    return result


# ---------------------------------------------------------------------------
# Figures 7a / 7b: rebalance time when removing / adding a node
# ---------------------------------------------------------------------------


@dataclass
class ScalingExperimentResult:
    """Series for Figures 7a and 7b."""

    remove_minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    add_minutes: Dict[str, Dict[int, float]] = field(default_factory=dict)
    records_moved_remove: Dict[str, Dict[int, int]] = field(default_factory=dict)
    records_moved_add: Dict[str, Dict[int, int]] = field(default_factory=dict)


@lru_cache(maxsize=8)
def _cached_scaling_experiment(
    scale: BenchScale, strategies: Tuple[str, ...], node_counts: Tuple[int, ...]
) -> ScalingExperimentResult:
    result = ScalingExperimentResult()
    for strategy_name in strategies:
        result.remove_minutes[strategy_name] = {}
        result.add_minutes[strategy_name] = {}
        result.records_moved_remove[strategy_name] = {}
        result.records_moved_add[strategy_name] = {}
        for num_nodes in node_counts:
            db, _workload, _load = build_loaded_database(scale, num_nodes, strategy_name)
            # Paper protocol: loaded at N nodes, rebalance to N-1 (remove),
            # then back to N (add).
            remove_report = db.remove_nodes(1)
            result.remove_minutes[strategy_name][num_nodes] = remove_report.simulated_minutes
            result.records_moved_remove[strategy_name][num_nodes] = (
                remove_report.total_records_moved
            )
            add_report = db.add_nodes(1)
            result.add_minutes[strategy_name][num_nodes] = add_report.simulated_minutes
            result.records_moved_add[strategy_name][num_nodes] = add_report.total_records_moved
    return result


def run_scaling_experiment(
    scale: BenchScale = SMOKE,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    node_counts: Optional[Sequence[int]] = None,
) -> ScalingExperimentResult:
    """Figures 7a/7b: rebalance time for removing and then re-adding a node."""
    return _cached_scaling_experiment(
        scale, tuple(strategies), tuple(node_counts or scale.node_counts)
    )


# ---------------------------------------------------------------------------
# Figure 7c: rebalance under concurrent writes
# ---------------------------------------------------------------------------


@dataclass
class ConcurrentWriteExperimentResult:
    """Series for Figure 7c: DynaHash rebalance time vs. concurrent write rate."""

    minutes_by_rate: Dict[int, float] = field(default_factory=dict)
    replicated_records_by_rate: Dict[int, int] = field(default_factory=dict)


def run_concurrent_write_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 4,
    write_rates_krecords: Optional[Sequence[int]] = None,
) -> ConcurrentWriteExperimentResult:
    """Figure 7c: rebalance 4 -> 3 nodes while ingesting into LineItem."""
    result = ConcurrentWriteExperimentResult()
    for rate in write_rates_krecords or scale.write_rates_krecords:
        db, workload, _load = build_loaded_database(scale, num_nodes, "DynaHash")
        concurrent_rows = workload.concurrent_lineitem_rows(rate * scale.rows_per_krecord)
        report = db.rebalance(
            num_nodes - 1,
            concurrent_rows={"lineitem": concurrent_rows} if concurrent_rows else None,
        )
        result.minutes_by_rate[rate] = report.simulated_minutes
        result.replicated_records_by_rate[rate] = sum(
            dataset_report.replicated_log_records for dataset_report in report.dataset_reports
        )
    return result


# ---------------------------------------------------------------------------
# Figures 8 and 9: TPC-H query performance
# ---------------------------------------------------------------------------

#: The four approaches of Figure 8 (DynaHash-lazy-cleanup is DynaHash measured
#: right after a rebalance, while its secondary indexes still carry obsolete
#: entries).
QUERY_APPROACHES = ("Hashing", "StaticHash", "DynaHash", "DynaHash-lazy-cleanup")


@dataclass
class QueryExperimentResult:
    """Per-query simulated seconds by approach (one figure panel)."""

    num_nodes: int
    downsized: bool
    seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def approaches(self) -> List[str]:
        return list(self.seconds.keys())


def run_query_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 4,
    downsize: bool = False,
    approaches: Optional[Sequence[str]] = None,
    queries: Sequence[str] = QUERY_NAMES,
) -> QueryExperimentResult:
    """Figures 8 (original cluster) and 9 (after rebalancing down one node).

    ``downsize=False`` measures queries on the freshly loaded N-node cluster
    (Figure 8); ``downsize=True`` first rebalances the datasets down to N-1
    nodes and measures there (Figure 9).  The ``DynaHash-lazy-cleanup``
    approach is DynaHash rebalanced down and back up, so its queries run while
    secondary indexes still contain lazily-invalidated entries (only used for
    Figure 8, as in the paper).
    """
    if approaches is None:
        approaches = QUERY_APPROACHES if not downsize else PAPER_STRATEGIES
    result = QueryExperimentResult(num_nodes=num_nodes, downsized=downsize)
    for approach in approaches:
        strategy_name = "DynaHash" if approach.startswith("DynaHash") else approach
        db, _workload, _load = build_loaded_database(
            scale, num_nodes, strategy_name, tables=QUERY_TABLES
        )
        if downsize:
            db.remove_nodes(1)
        elif approach == "DynaHash-lazy-cleanup":
            # Rebalance down and back up so moved buckets leave obsolete
            # entries behind in the secondary indexes (lazy cleanup).
            db.remove_nodes(1)
            db.add_nodes(1)
        result.seconds[approach] = {}
        for query_name in queries:
            report = db.execute_spec(query_spec(query_name))
            result.seconds[approach][query_name] = report.simulated_seconds
    return result


# ---------------------------------------------------------------------------
# Traffic experiment: mixed YCSB-style load across a rebalance
# ---------------------------------------------------------------------------


@dataclass
class TrafficExperimentResult:
    """Phase-tagged latency percentiles from one traffic run."""

    #: The driver's workload report (phase op counts, rebalance report, seed).
    report: "object"
    #: Frozen metrics snapshot (the determinism contract).
    snapshot: "object"
    #: ``{"steady": ms, "rebalance": ms}`` — p99 write latency per phase.
    write_p99_ms: Dict[str, float] = field(default_factory=dict)
    read_p99_ms: Dict[str, float] = field(default_factory=dict)
    total_ops: int = 0
    simulated_seconds: float = 0.0
    #: The full latency table rendered by the metrics registry.
    latency_table: str = ""
    #: Machine-readable percentile rows per ``"op[phase]"`` (seconds) — what
    #: the ``BENCH_<name>.json`` artifact persists.
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def table(self) -> str:
        return self.latency_table


def run_traffic_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 4,
    mix: str = "A",
    keys: str = "zipfian",
    initial_records: int = 600,
    warmup: int = 80,
    steady: int = 260,
    spike: int = 200,
    ramp: int = 60,
    rebalance_add: int = 1,
    seed: Optional[int] = None,
) -> TrafficExperimentResult:
    """Drive a warmup → steady → spike → ramp storm across a node-add rebalance.

    Unlike the figure drivers, traffic runs at ``workload_scale=1`` so each
    operation's simulated latency is a client-visible service time rather
    than a paper-scale projection; the relative steady-vs-rebalance
    comparison is what the experiment reports.
    """
    # Imported lazily, like Database: repro.api re-exports bench helpers.
    from ..api import Database
    from ..workload import WorkloadDriver, WorkloadSpec, storm_schedule

    db = Database(
        scale.cluster_config(num_nodes),
        strategy=make_strategy("DynaHash", scale),
    )
    spec = WorkloadSpec(
        dataset="traffic",
        initial_records=initial_records,
        mix=mix,
        keys=keys,
        schedule=storm_schedule(
            warmup=warmup,
            steady=steady,
            spike=spike,
            ramp=ramp,
            rebalance={"add": rebalance_add},
        ),
    )
    driver = WorkloadDriver(db, spec, seed=scale.seed if seed is None else seed)
    report = driver.run()
    registry = db.metrics
    result = TrafficExperimentResult(
        report=report,
        snapshot=report.snapshot,
        write_p99_ms={
            phase: seconds * 1e3 for phase, seconds in report.write_p99_seconds.items()
        },
        read_p99_ms={
            phase: seconds * 1e3 for phase, seconds in report.read_p99_seconds.items()
        },
        total_ops=report.total_ops,
        simulated_seconds=report.simulated_seconds,
        latency_table=registry.report(),
        percentiles=registry.summaries(),
    )
    db.close()
    return result


# ---------------------------------------------------------------------------
# Autopilot experiment: policy-triggered rebalancing under a hotspot storm
# ---------------------------------------------------------------------------


@dataclass
class AutopilotExperimentResult:
    """What one autopilot run decided and what it cost foreground traffic."""

    #: The driver's workload report (includes ``autopilot_decisions``).
    report: "object"
    #: Frozen metrics snapshot — includes the ``autopilot.*`` decision
    #: counters (the determinism contract covers the decisions too).
    snapshot: "object"
    #: The engine's comparable decision history: (action, target, outcome).
    decision_trace: List[Tuple[str, Optional[int], str]] = field(default_factory=list)
    rebalances_triggered: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    write_p99_ms: Dict[str, float] = field(default_factory=dict)
    read_p99_ms: Dict[str, float] = field(default_factory=dict)
    total_ops: int = 0
    simulated_seconds: float = 0.0
    latency_table: str = ""
    percentiles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    autopilot_summary: str = ""

    def table(self) -> str:
        return self.latency_table


def run_autopilot_experiment(
    scale: BenchScale = SMOKE,
    num_nodes: int = 3,
    policy: str = "cost_aware",
    mix: str = "B",
    keys: str = "zipfian",
    initial_records: int = 600,
    warmup: int = 80,
    steady: int = 240,
    spike: int = 320,
    recover: int = 160,
    check_every_ops: int = 40,
    cooldown_seconds: float = 0.05,
    node_capacity_bytes: Optional[int] = None,
    policy_options: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
) -> AutopilotExperimentResult:
    """Drive a hotspot storm with **no scheduled rebalance** and let the
    autopilot close the loop: detect (metrics) → plan (what-if simulation) →
    rebalance (through the normal machinery) → recover (traffic continues).

    The spike phase concentrates an insert-heavy hotspot mix on a sliver of
    the keyspace, growing the hot partitions until the policy's capacity /
    skew triggers fire; the engine then executes the cheapest projected plan
    mid-run.  Deterministic under ``scale.seed`` — same seed, same decisions.
    """
    from ..api import Database
    from ..workload import OperationMix, Phase, Schedule, WorkloadDriver, WorkloadSpec

    db = Database(
        scale.cluster_config(num_nodes),
        strategy=make_strategy("DynaHash", scale),
    )
    if node_capacity_bytes is None:
        # Size the budget so the preload sits comfortably (~50% mean
        # utilization at ~128 stored bytes/record) and the spike's insert
        # volume pushes the hottest node through the high-water mark mid-run.
        node_capacity_bytes = max(1, 256 * initial_records // num_nodes)
    if policy_options is None:
        # The balance bar sits above the preload's natural bucket skew so the
        # run's *capacity* trajectory — not the initial layout — is what
        # trips the policy, squarely inside the spike phase.
        policy_options = {
            "node_capacity_bytes": node_capacity_bytes,
            "balance_bar": 1.8,
        }
    pilot = db.autopilot(
        policy=policy,
        policy_options=policy_options,
        check_every_ops=check_every_ops,
        cooldown_seconds=cooldown_seconds,
    )
    spike_mix = OperationMix(name="spike", read=0.3, insert=0.6, update=0.1)
    spec = WorkloadSpec(
        dataset="autopilot",
        initial_records=initial_records,
        mix=mix,
        keys=keys,
        schedule=Schedule(
            (
                Phase(name="warmup", ops=warmup, keys="uniform"),
                Phase(name="steady", ops=steady),
                Phase(name="spike", ops=spike, keys="hotspot", mix=spike_mix),
                Phase(name="recover", ops=recover),
            )
        ),
    )
    driver = WorkloadDriver(db, spec, seed=scale.seed if seed is None else seed)
    nodes_before = db.num_nodes
    report = driver.run()
    registry = db.metrics
    result = AutopilotExperimentResult(
        report=report,
        snapshot=report.snapshot,
        decision_trace=pilot.decision_trace(),
        rebalances_triggered=pilot.rebalances_triggered,
        nodes_before=nodes_before,
        nodes_after=db.num_nodes,
        write_p99_ms={
            phase: seconds * 1e3 for phase, seconds in report.write_p99_seconds.items()
        },
        read_p99_ms={
            phase: seconds * 1e3 for phase, seconds in report.read_p99_seconds.items()
        },
        total_ops=report.total_ops,
        simulated_seconds=report.simulated_seconds,
        latency_table=registry.report(),
        percentiles=registry.summaries(),
        autopilot_summary=pilot.summary(),
    )
    db.close()
    return result
