"""Machine-readable benchmark artifacts: the perf trajectory on disk.

CI (and local runs) can persist each bench driver's headline numbers —
ops/sec plus p50/p99 latency broken out by cluster phase — as a
``BENCH_<name>.json`` file, so consecutive runs form a comparable perf
trajectory instead of scrolling away in a log.  Writing is opt-in: when
``REPRO_BENCH_ARTIFACT_DIR`` is unset (and no explicit directory is given)
:func:`write_bench_artifact` is a no-op, keeping plain ``pytest`` runs free
of side effects.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

#: Environment variable selecting where artifacts are written.
ARTIFACT_DIR_ENV = "REPRO_BENCH_ARTIFACT_DIR"


def bench_artifact_dir() -> Optional[str]:
    """The configured artifact directory, or ``None`` when disabled."""
    value = os.environ.get(ARTIFACT_DIR_ENV, "").strip()
    return value or None


def write_bench_artifact(
    name: str,
    payload: Mapping[str, Any],
    directory: "Optional[str | Path]" = None,
) -> Optional[str]:
    """Write ``BENCH_<name>.json`` and return its path (``None`` if disabled).

    ``directory`` overrides the ``REPRO_BENCH_ARTIFACT_DIR`` environment
    variable; with neither set the call does nothing.  The JSON is sorted and
    indented so artifact diffs between runs stay readable.
    """
    target = Path(directory) if directory is not None else None
    if target is None:
        configured = bench_artifact_dir()
        if configured is None:
            return None
        target = Path(configured)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(dict(payload), sort_keys=True, indent=2) + "\n")
    return str(path)


def traffic_artifact_payload(name: str, result: Any) -> Dict[str, Any]:
    """The standard artifact body for a traffic-shaped experiment result.

    Works for any result carrying ``total_ops``, ``simulated_seconds``, the
    per-phase ``write_p99_ms`` / ``read_p99_ms`` dicts, and a ``percentiles``
    mapping (``"op[phase]"`` -> summary row, seconds) — i.e.
    :class:`~repro.bench.experiments.TrafficExperimentResult` and
    :class:`~repro.bench.experiments.AutopilotExperimentResult`.
    """
    simulated = float(getattr(result, "simulated_seconds", 0.0))
    total_ops = int(getattr(result, "total_ops", 0))
    payload: Dict[str, Any] = {
        "name": name,
        "total_ops": total_ops,
        "simulated_seconds": simulated,
        "ops_per_second": total_ops / simulated if simulated > 0 else 0.0,
        "write_p99_ms": dict(getattr(result, "write_p99_ms", {})),
        "read_p99_ms": dict(getattr(result, "read_p99_ms", {})),
        #: Per-(op, phase) percentile rows in seconds: count/mean/p50/p95/p99/max.
        "op_phase_percentiles": {
            key: dict(row) for key, row in dict(getattr(result, "percentiles", {})).items()
        },
    }
    return payload
