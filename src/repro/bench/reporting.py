"""Formatting helpers for benchmark output.

The harness prints the same rows/series the paper's figures report; these
helpers render them as aligned text tables (for the console and for
EXPERIMENTS.md).  The generic :func:`format_table` lives in
:mod:`repro.common.reporting` (the metrics layer uses it too) and is
re-exported here for existing callers.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from ..common.reporting import _cell, format_table

__all__ = ["format_table", "markdown_table", "per_query_table", "series_table"]


def series_table(
    series: Mapping[str, Mapping[object, float]],
    x_label: str,
    value_label: str,
) -> str:
    """Render {series name: {x: value}} with one column per series."""
    xs: List[object] = sorted({x for values in series.values() for x in values})
    headers = [x_label] + [f"{name} ({value_label})" for name in series]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = series[name].get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def per_query_table(
    results: Mapping[str, Mapping[str, float]], value_label: str = "seconds"
) -> str:
    """Render {approach: {query: seconds}} with one row per query."""
    queries = sorted(
        {query for values in results.values() for query in values},
        key=lambda name: int(name[1:]),
    )
    headers = ["query"] + [f"{approach} ({value_label})" for approach in results]
    rows = []
    for query in queries:
        row: List[object] = [query]
        for approach in results:
            row.append(results[approach].get(query, "-"))
        rows.append(row)
    return format_table(headers, rows)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    return "\n".join(lines)
