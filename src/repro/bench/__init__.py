"""Benchmark harness: experiment drivers, scaling presets, and table formatting."""

from .config import FULL, SMOKE, BenchScale
from .experiments import (
    PAPER_STRATEGIES,
    QUERY_APPROACHES,
    ConcurrentWriteExperimentResult,
    IngestionExperimentResult,
    QueryExperimentResult,
    ScalingExperimentResult,
    TrafficExperimentResult,
    build_loaded_database,
    make_strategy,
    run_autopilot_experiment,
    run_concurrent_write_experiment,
    run_ingestion_experiment,
    run_query_experiment,
    run_scaling_experiment,
    run_traffic_experiment,
)
from .artifacts import bench_artifact_dir, traffic_artifact_payload, write_bench_artifact
from .experiments import AutopilotExperimentResult
from .reporting import format_table, markdown_table, per_query_table, series_table

__all__ = [
    "AutopilotExperimentResult",
    "BenchScale",
    "ConcurrentWriteExperimentResult",
    "FULL",
    "IngestionExperimentResult",
    "PAPER_STRATEGIES",
    "QUERY_APPROACHES",
    "QueryExperimentResult",
    "SMOKE",
    "ScalingExperimentResult",
    "TrafficExperimentResult",
    "bench_artifact_dir",
    "build_loaded_database",
    "format_table",
    "make_strategy",
    "markdown_table",
    "per_query_table",
    "run_autopilot_experiment",
    "run_concurrent_write_experiment",
    "run_ingestion_experiment",
    "run_query_experiment",
    "run_scaling_experiment",
    "run_traffic_experiment",
    "series_table",
    "traffic_artifact_payload",
    "write_bench_artifact",
]
