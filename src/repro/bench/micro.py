"""Hot-path microbenchmarks and the CI perf gate.

The simulator's throughput claims need receipts: this module times the four
layers the op/ingest hot path crosses — event routing, histogram recording,
the workload driver's end-to-end op loop, and feed ingestion — and persists
the numbers as a ``BENCH_micro.json`` artifact (via
:mod:`repro.bench.artifacts`), so every CI run extends the perf trajectory.

Methodology
-----------
Each benchmark runs once as warm-up, then ``repeats`` timed runs (CPU time,
not wall time — CI runners share cores); the *median* is reported.  Because
absolute throughput varies wildly across machines, the artifact also records
a **calibration score** (a fixed pure-Python hashing loop) measured the same
way, and the perf gate compares *normalized* throughput — benchmark ops/sec
divided by calibration ops/sec — against the committed baseline.  A change
that makes the code slower shows up on any machine; a slower machine does
not.

Run locally::

    PYTHONPATH=src python -m repro.bench.micro
    PYTHONPATH=src python -m repro.bench.micro --check benchmarks/baselines/BENCH_micro.json
    PYTHONPATH=src python -m repro.bench.micro --write-baseline benchmarks/baselines/BENCH_micro.json

The gate (``--check``) fails with exit status 1 when any benchmark's
normalized throughput regresses more than ``--tolerance`` (default 25%)
below the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..common.events import EventBus
from ..common.hashutil import hash64
from ..metrics.histogram import LatencyHistogram
from .artifacts import write_bench_artifact

#: Gate tolerance: fail on more than this relative normalized regression.
DEFAULT_TOLERANCE = 0.25
DEFAULT_REPEATS = 3


# ---------------------------------------------------------------------------
# individual benchmarks (each returns units/second over CPU time)
# ---------------------------------------------------------------------------


def _timed(units: int, work: Callable[[], None]) -> float:
    started = time.process_time()
    work()
    elapsed = time.process_time() - started
    return units / elapsed if elapsed > 0 else float("inf")


def bench_calibration(loops: int = 200_000) -> float:
    """Machine-speed proxy: a fixed pure-Python hashing loop."""

    def work() -> None:
        for value in range(loops):
            hash64(value)

    return _timed(loops, work)


def bench_event_emit(emits: int = 50_000) -> float:
    """Compiled-router dispatch with a metrics-registry-shaped subscriber set."""
    bus = EventBus()
    sink: List[object] = []
    bus.on("op.*", sink.append)
    bus.on("op.batch", sink.append)
    bus.on("rebalance.start", sink.append)
    bus.on("rebalance.complete", sink.append)
    bus.on("ingest.complete", sink.append)
    bus.on("node.*", sink.append)
    bus.on("dataset.create", sink.append)
    bus.on("autopilot.*", sink.append)

    def work() -> None:
        emit = bus.emit
        for index in range(emits):
            emit("op.read", dataset="bench", latency_seconds=1e-5, records=1)

    return _timed(emits, work)


def bench_event_unheard(probes: int = 200_000) -> float:
    """The zero-subscriber fast path: ``has_subscribers`` probe per emission."""
    bus = EventBus()
    bus.on("rebalance.*", lambda event: None)

    def work() -> None:
        has = bus.has_subscribers
        for _ in range(probes):
            has("op.read")

    return _timed(probes, work)


def bench_histogram_record(samples: int = 200_000) -> float:
    """Single-sample recording through the O(1) log-index."""
    histogram = LatencyHistogram()
    values = [1e-6 * (1.1 ** (index % 150)) for index in range(1000)]

    def work() -> None:
        record = histogram.record
        for index in range(samples):
            record(values[index % 1000])

    return _timed(samples, work)


def bench_histogram_record_many(samples: int = 200_000) -> float:
    """Batched recording via ``record_many`` (the op.batch sink)."""
    histogram = LatencyHistogram()
    values = [1e-6 * (1.1 ** (index % 150)) for index in range(1000)]
    batches = [values] * (samples // 1000)

    def work() -> None:
        record_many = histogram.record_many
        for batch in batches:
            record_many(batch)

    return _timed(samples, work)


def bench_driver_ops(ops: int = 3000, initial_records: int = 800) -> float:
    """End-to-end driver throughput: YCSB-B over the batched pipeline."""
    from ..api import ClusterConfig, Database, WorkloadDriver, WorkloadSpec

    db = Database(
        ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash")
    )
    spec = WorkloadSpec(
        dataset="micro", initial_records=initial_records, mix="B", default_ops=ops
    )
    driver = WorkloadDriver(db, spec)
    driver.prepare()

    def work() -> None:
        driver.run()

    try:
        return _timed(ops, work)
    finally:
        db.close()


def bench_feed_ingest(rows: int = 10_000) -> float:
    """Feed ingestion throughput (rows/sec) through the grouped batch path."""
    from ..api import ClusterConfig, Database

    db = Database(
        ClusterConfig(num_nodes=3, partitions_per_node=2, strategy="dynahash")
    )
    db.create_dataset("bulk", primary_key="k")
    data = [
        {"k": index, "payload": f"{index:010d}" + "x" * 54} for index in range(rows)
    ]
    feed = db.cluster.feed("bulk", batch_size=2000)

    def work() -> None:
        feed.ingest(data)

    try:
        return _timed(rows, work)
    finally:
        db.close()


#: Benchmark registry: name -> (units label, zero-argument callable).
BENCHMARKS: Dict[str, Callable[[], float]] = {
    "event_emit": bench_event_emit,
    "event_unheard_probe": bench_event_unheard,
    "histogram_record": bench_histogram_record,
    "histogram_record_many": bench_histogram_record_many,
    "driver_ops": bench_driver_ops,
    "feed_ingest": bench_feed_ingest,
}


# ---------------------------------------------------------------------------
# suite runner
# ---------------------------------------------------------------------------


def _median(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def run_micro_suite(repeats: int = DEFAULT_REPEATS) -> Dict[str, object]:
    """Run every microbenchmark (warm-up + median-of-``repeats``).

    Returns the artifact payload: raw ops/sec per benchmark, the calibration
    score, and throughput normalized by the calibration score (what the perf
    gate compares).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    calibration = _median([bench_calibration() for _ in range(max(2, repeats))])
    results: Dict[str, float] = {}
    for name, benchmark in BENCHMARKS.items():
        benchmark()  # warm-up: fills caches, imports, and JIT-warm dicts
        results[name] = _median([benchmark() for _ in range(repeats)])
    return {
        "name": "micro",
        "repeats": repeats,
        "calibration_score": calibration,
        "ops_per_second": results,
        "normalized": {
            name: value / calibration for name, value in results.items()
        },
    }


# ---------------------------------------------------------------------------
# the perf gate
# ---------------------------------------------------------------------------


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Return one failure line per benchmark regressing past ``tolerance``.

    Compares *normalized* throughput (machine-speed independent).  Benchmarks
    present only on one side are ignored — adding a benchmark must not fail
    the gate until its baseline is committed.
    """
    failures = []
    current_norm: Dict[str, float] = dict(current.get("normalized", {}))  # type: ignore[arg-type]
    baseline_norm: Dict[str, float] = dict(baseline.get("normalized", {}))  # type: ignore[arg-type]
    for name, past in sorted(baseline_norm.items()):
        now = current_norm.get(name)
        if now is None or past <= 0:
            continue
        ratio = now / past
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: normalized throughput {now:.4f} is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {past:.4f} "
                f"(tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def format_suite(payload: Dict[str, object]) -> str:
    lines = [
        f"calibration score: {payload['calibration_score']:,.0f} hashes/sec",
        f"{'benchmark':<24} {'ops/sec':>14} {'normalized':>12}",
    ]
    results: Dict[str, float] = payload["ops_per_second"]  # type: ignore[assignment]
    normalized: Dict[str, float] = payload["normalized"]  # type: ignore[assignment]
    for name in BENCHMARKS:
        lines.append(f"{name:<24} {results[name]:>14,.0f} {normalized[name]:>12.4f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline BENCH_micro.json; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative normalized regression (default 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the run's payload to PATH (committing a new baseline)",
    )
    parser.add_argument(
        "--artifact-dir",
        help="directory for BENCH_micro.json (overrides REPRO_BENCH_ARTIFACT_DIR)",
    )
    args = parser.parse_args(argv)

    payload = run_micro_suite(repeats=args.repeats)
    print(format_suite(payload))

    artifact_path = write_bench_artifact("micro", payload, directory=args.artifact_dir)
    if artifact_path is not None:
        print(f"\nartifact written: {artifact_path}")

    if args.write_baseline:
        target = Path(args.write_baseline)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"baseline written: {target}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = compare_to_baseline(payload, baseline, tolerance=args.tolerance)
        if failures:
            print("\nPERF GATE FAILED:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"\nperf gate OK (tolerance {args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
