"""Relational operators over Python-dict rows.

A deliberately small but real physical algebra: scans produce iterables of
row dicts, and the remaining operators (filter, project, hash join, hash
group-by, order-by, limit) compose over them.  The cluster query executor
(:mod:`repro.query.executor`) uses these to run genuine query plans over the
simulated partitions; the per-operator record counts it gathers feed the cost
model, which is how the TPC-H query-time figures are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..common.errors import QueryError, UnknownColumnError

Row = Dict[str, Any]


@dataclass
class OperatorStats:
    """Records processed by each operator of a plan (for cost accounting)."""

    counts: Dict[str, int] = field(default_factory=dict)

    def bump(self, operator_name: str, amount: int = 1) -> None:
        self.counts[operator_name] = self.counts.get(operator_name, 0) + amount

    @property
    def total_records_processed(self) -> int:
        return sum(self.counts.values())


def _get(row: Row, column: str) -> Any:
    try:
        return row[column]
    except KeyError:
        raise UnknownColumnError(f"row has no column {column!r}: {sorted(row)[:8]}") from None


def filter_rows(
    rows: Iterable[Row],
    predicate: Callable[[Row], bool],
    stats: Optional[OperatorStats] = None,
    name: str = "filter",
) -> Iterator[Row]:
    """SELECT ... WHERE predicate."""
    for row in rows:
        if stats is not None:
            stats.bump(name)
        if predicate(row):
            yield row


def project(
    rows: Iterable[Row],
    columns: Sequence[str] = (),
    computed: Optional[Mapping[str, Callable[[Row], Any]]] = None,
    stats: Optional[OperatorStats] = None,
    name: str = "project",
) -> Iterator[Row]:
    """Projection with optional computed columns."""
    computed = computed or {}
    for row in rows:
        if stats is not None:
            stats.bump(name)
        out: Row = {column: _get(row, column) for column in columns}
        for column, fn in computed.items():
            out[column] = fn(row)
        yield out


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: Callable[[Row], Any],
    right_key: Callable[[Row], Any],
    stats: Optional[OperatorStats] = None,
    name: str = "hash_join",
    how: str = "inner",
) -> Iterator[Row]:
    """Hash join (build on the right input, probe with the left).

    ``how`` supports "inner" and "left_semi" (the shape TPC-H's EXISTS
    subqueries compile to) and "left_anti" (NOT EXISTS).
    """
    if how not in ("inner", "left_semi", "left_anti"):
        raise QueryError(f"unsupported join type {how!r}")
    build: Dict[Any, List[Row]] = {}
    for row in right:
        if stats is not None:
            stats.bump(f"{name}:build")
        build.setdefault(right_key(row), []).append(row)
    for row in left:
        if stats is not None:
            stats.bump(f"{name}:probe")
        matches = build.get(left_key(row), [])
        if how == "inner":
            for match in matches:
                merged = dict(match)
                merged.update(row)
                yield merged
        elif how == "left_semi":
            if matches:
                yield row
        else:  # left_anti
            if not matches:
                yield row


def hash_group_by(
    rows: Iterable[Row],
    key: Callable[[Row], Any],
    aggregates: Mapping[str, Tuple[str, Callable[[Row], Any]]],
    stats: Optional[OperatorStats] = None,
    name: str = "group_by",
) -> Iterator[Row]:
    """Hash aggregation.

    ``aggregates`` maps output column -> (kind, value extractor) with kind in
    {"sum", "count", "min", "max", "avg"}.
    """
    valid = {"sum", "count", "min", "max", "avg"}
    for column, (kind, _fn) in aggregates.items():
        if kind not in valid:
            raise QueryError(f"unsupported aggregate {kind!r} for column {column!r}")
    groups: Dict[Any, Dict[str, Any]] = {}
    counts: Dict[Any, Dict[str, int]] = {}
    group_keys: Dict[Any, Any] = {}
    for row in rows:
        if stats is not None:
            stats.bump(name)
        group_value = key(row)
        # Dict group keys (named grouping columns) are hashed by their sorted
        # items but reported back as the original dict.
        group = (
            tuple(sorted(group_value.items())) if isinstance(group_value, dict) else group_value
        )
        group_keys[group] = group_value
        state = groups.setdefault(group, {})
        count_state = counts.setdefault(group, {})
        for column, (kind, fn) in aggregates.items():
            value = fn(row) if kind != "count" else 1
            if kind == "count":
                state[column] = state.get(column, 0) + 1
            elif kind == "sum":
                state[column] = state.get(column, 0) + value
            elif kind == "min":
                state[column] = value if column not in state else min(state[column], value)
            elif kind == "max":
                state[column] = value if column not in state else max(state[column], value)
            elif kind == "avg":
                state[column] = state.get(column, 0) + value
                count_state[column] = count_state.get(column, 0) + 1
    for group, state in groups.items():
        out: Row = {}
        group_value = group_keys[group]
        if isinstance(group_value, dict):
            out.update(group_value)
        else:
            out["group_key"] = group_value
        for column, (kind, _fn) in aggregates.items():
            if kind == "avg":
                denominator = counts[group].get(column, 0)
                out[column] = state[column] / denominator if denominator else None
            else:
                out[column] = state.get(column, 0)
        yield out


def order_by(
    rows: Iterable[Row],
    key: Callable[[Row], Any],
    descending: bool = False,
    stats: Optional[OperatorStats] = None,
    name: str = "order_by",
) -> List[Row]:
    """Full sort (materialises its input, as a sort operator must)."""
    materialised = list(rows)
    if stats is not None:
        stats.bump(name, len(materialised))
    return sorted(materialised, key=key, reverse=descending)


def limit(rows: Iterable[Row], count: int) -> List[Row]:
    """LIMIT count."""
    if count < 0:
        raise QueryError("limit must be non-negative")
    result: List[Row] = []
    for row in rows:
        if len(result) >= count:
            break
        result.append(row)
    return result


def scalar_aggregate(
    rows: Iterable[Row],
    aggregates: Mapping[str, Tuple[str, Callable[[Row], Any]]],
    stats: Optional[OperatorStats] = None,
    name: str = "aggregate",
) -> Row:
    """Aggregation without grouping; always returns exactly one row."""
    result_rows = list(
        hash_group_by(rows, key=lambda row: 0, aggregates=aggregates, stats=stats, name=name)
    )
    if not result_rows:
        return {column: (0 if kind in ("count", "sum") else None) for column, (kind, _f) in aggregates.items()}
    row = result_rows[0]
    row.pop("group_key", None)
    return row
