"""Cluster-parallel query execution.

Two execution styles are provided, both returning a
:class:`~repro.cluster.reports.QueryReport` whose simulated duration follows
the shared-nothing rule that a query is as slow as its slowest node:

* :meth:`ClusterQueryExecutor.execute_spec` runs an *access-pattern spec*
  (which indexes are scanned, how selective the query is, how compute-heavy
  its operator pipeline is).  The 22 TPC-H queries of the evaluation are
  described this way (:mod:`repro.tpch.queries`), which is what the Figure 8/9
  benchmarks execute.
* :meth:`ClusterQueryExecutor.execute_plan` runs a *real operator plan* built
  from :mod:`repro.query.operators` against the simulated partitions via a
  :class:`QueryContext`; examples and tests use this to get actual query
  results (e.g. TPC-H q1/q6 aggregates) with the same cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence

from ..bucketed.scan import estimate_merge_comparisons
from ..common.errors import QueryError
from ..cluster.reports import QueryReport
from .operators import OperatorStats, Row

#: How a query reads one dataset.
ACCESS_FULL_SCAN = "full_scan"
ACCESS_SECONDARY_INDEX = "secondary_index"
ACCESS_PRIMARY_KEY_LOOKUPS = "primary_key_lookups"


@dataclass(frozen=True)
class TableAccess:
    """One dataset access performed by a query."""

    dataset: str
    access: str = ACCESS_FULL_SCAN
    #: Secondary index name for ACCESS_SECONDARY_INDEX.
    index_name: Optional[str] = None
    #: How many times the query scans this input (TPC-H q21 reads LineItem
    #: several times).
    scan_count: int = 1
    #: Fraction of scanned records that survive the first filter and flow
    #: through the rest of the operator pipeline.
    selectivity: float = 1.0
    #: Number of point lookups for ACCESS_PRIMARY_KEY_LOOKUPS.
    lookups: int = 0

    def __post_init__(self) -> None:
        if self.access not in (
            ACCESS_FULL_SCAN,
            ACCESS_SECONDARY_INDEX,
            ACCESS_PRIMARY_KEY_LOOKUPS,
        ):
            raise QueryError(f"unknown access kind {self.access!r}")
        if self.access == ACCESS_SECONDARY_INDEX and not self.index_name:
            raise QueryError("secondary index access needs an index name")
        if not 0.0 <= self.selectivity <= 1.0:
            raise QueryError("selectivity must be within [0, 1]")
        if self.scan_count < 1:
            raise QueryError("scan_count must be at least 1")


@dataclass(frozen=True)
class QuerySpec:
    """An access-pattern description of one OLAP query."""

    name: str
    accesses: Sequence[TableAccess]
    #: Average number of pipeline operators each surviving record passes
    #: through (joins, group-bys, expression evaluation) — the query's
    #: compute-heaviness.
    operator_depth: int = 4
    #: True if the scan must return records in primary-key order (q18's
    #: group-by on a prefix of LineItem's primary key).
    requires_primary_key_order: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.operator_depth < 1:
            raise QueryError("operator_depth must be at least 1")
        if not self.accesses:
            raise QueryError(f"query {self.name!r} accesses no datasets")


class QueryContext:
    """Gives a real operator plan access to cluster data with cost tracking."""

    def __init__(self, executor: "ClusterQueryExecutor") -> None:
        self._executor = executor
        self.operator_stats = OperatorStats()
        #: per (node, partition) scan seconds accumulated by the scans.
        self.partition_seconds: Dict[int, float] = {}
        self.bytes_scanned = 0
        self.records_scanned = 0

    def scan(self, dataset: str, ordered: bool = False) -> Iterator[Row]:
        """Scan a dataset's primary index across every partition."""
        yield from self._scan_impl(dataset, None, ordered)

    def scan_index(self, dataset: str, index_name: str) -> Iterator[Row]:
        """Scan a covering secondary index; yields covered fields plus keys."""
        yield from self._scan_impl(dataset, index_name, False)

    def _scan_impl(self, dataset: str, index_name: Optional[str], ordered: bool) -> Iterator[Row]:
        cluster = self._executor.cluster
        cost = cluster.cost
        runtime = cluster.dataset(dataset)
        spec = runtime.spec
        for pid, partition in sorted(runtime.partitions.items()):
            before = partition.stats_snapshot()
            records = 0
            if index_name is None:
                for entry in partition.scan_primary(ordered=ordered):
                    records += 1
                    yield dict(entry.value)
            else:
                index_spec = spec.index(index_name)
                for entry in partition.scan_secondary(index_name):
                    records += 1
                    row = dict(entry.value) if isinstance(entry.value, dict) else {}
                    for field_name, value in zip(index_spec.key_fields, entry.key[:-1], strict=True):
                        row[field_name] = value
                    row["_pk"] = entry.key[-1]
                    yield row
            delta = partition.stats_snapshot().diff(before)
            seconds = (
                cost.disk_read_time(delta.bytes_read)
                + cost.component_open_time(delta.components_opened)
                + cost.operator_time(records)
            )
            if ordered and index_name is None:
                seconds += cost.compare_time(
                    estimate_merge_comparisons(partition.primary.bucket_count, records)
                )
            self.partition_seconds[pid] = self.partition_seconds.get(pid, 0.0) + seconds
            self.bytes_scanned += delta.bytes_read
            self.records_scanned += records


class ClusterQueryExecutor:
    """Executes queries over a :class:`~repro.cluster.controller.SimulatedCluster`."""

    def __init__(self, cluster: Any) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------ spec mode

    def execute_spec(self, spec: QuerySpec) -> QueryReport:
        """Run an access-pattern spec and return its report."""
        cost = self.cluster.cost
        per_partition_seconds: Dict[int, float] = {}
        total_bytes = 0
        total_records = 0
        survived_records = 0
        pipeline_seconds_total = 0.0

        for access in spec.accesses:
            runtime = self.cluster.dataset(access.dataset)
            for pid, partition in runtime.partitions.items():
                before = partition.stats_snapshot()
                records = 0
                if access.access == ACCESS_FULL_SCAN:
                    for _entry in partition.scan_primary(
                        ordered=spec.requires_primary_key_order
                    ):
                        records += 1
                elif access.access == ACCESS_SECONDARY_INDEX:
                    for _entry in partition.scan_secondary(access.index_name):
                        records += 1
                else:  # primary-key lookups
                    lookups_here = max(1, access.lookups // max(1, len(runtime.partitions)))
                    sample_keys = [entry.key for entry in partition.scan_primary()][:lookups_here]
                    for key in sample_keys:
                        partition.lookup(key)
                        records += 1
                delta = partition.stats_snapshot().diff(before)
                scan_seconds = (
                    cost.disk_read_time(delta.bytes_read)
                    + cost.component_open_time(delta.components_opened)
                    + cost.operator_time(records)
                )
                if spec.requires_primary_key_order and access.access == ACCESS_FULL_SCAN:
                    scan_seconds += cost.compare_time(
                        estimate_merge_comparisons(partition.primary.bucket_count, records)
                    )
                surviving = records * access.selectivity
                # The operator pipeline above the scan runs after a shuffle,
                # so its work is spread evenly over the cluster regardless of
                # how (im)balanced the storage is — which is why the paper's
                # computation-heavy queries barely notice the load imbalance
                # while scan-heavy ones do.
                pipeline_seconds_total += (
                    cost.operator_time(surviving * (spec.operator_depth - 1)) * access.scan_count
                )
                seconds = scan_seconds * access.scan_count
                per_partition_seconds[pid] = per_partition_seconds.get(pid, 0.0) + seconds
                total_bytes += delta.bytes_read * access.scan_count
                total_records += records * access.scan_count
                survived_records += int(surviving)

        per_node_seconds = self._roll_up_by_node(per_partition_seconds)
        if per_node_seconds:
            balanced_share = pipeline_seconds_total / len(per_node_seconds)
            for node_id in per_node_seconds:
                per_node_seconds[node_id] += balanced_share
        chaos = getattr(self.cluster, "chaos", None)
        if chaos is not None:
            per_node_seconds = dict(chaos.scale_node_seconds(per_node_seconds))
        # The final (coordinator-side) combine touches the surviving records
        # once more; it is usually negligible next to the parallel part.
        combine_seconds = cost.operator_time(survived_records) + cost.rpc_time(2)
        return QueryReport(
            query_name=spec.name,
            dataset_names=sorted({access.dataset for access in spec.accesses}),
            rows_returned=survived_records,
            simulated_seconds=cost.slowest(per_node_seconds) + combine_seconds,
            per_node_seconds=per_node_seconds,
            bytes_scanned=total_bytes,
            records_scanned=total_records,
        )

    # ------------------------------------------------------------ plan mode

    def execute_plan(
        self,
        name: str,
        plan: Callable[[QueryContext], Any],
        operator_depth_hint: int = 1,
    ) -> "tuple[Any, QueryReport]":
        """Run a real operator plan; returns (result, report)."""
        cost = self.cluster.cost
        context = QueryContext(self)
        result = plan(context)
        if hasattr(result, "__iter__") and not isinstance(result, (list, dict, str)):
            result = list(result)
        per_node_seconds = self._roll_up_by_node(context.partition_seconds)
        chaos = getattr(self.cluster, "chaos", None)
        if chaos is not None:
            per_node_seconds = dict(chaos.scale_node_seconds(per_node_seconds))
        operator_seconds = cost.operator_time(
            context.operator_stats.total_records_processed * operator_depth_hint
        )
        rows_returned = len(result) if isinstance(result, list) else 1
        report = QueryReport(
            query_name=name,
            dataset_names=[],
            rows_returned=rows_returned,
            simulated_seconds=cost.slowest(per_node_seconds) + operator_seconds + cost.rpc_time(2),
            per_node_seconds=per_node_seconds,
            bytes_scanned=context.bytes_scanned,
            records_scanned=context.records_scanned,
        )
        return result, report

    # --------------------------------------------------------------- helpers

    def _roll_up_by_node(self, per_partition_seconds: Mapping[int, float]) -> Dict[str, float]:
        """Partitions on a node run in parallel; a node is as slow as its
        busiest partition."""
        per_node: Dict[str, float] = {}
        for pid, seconds in per_partition_seconds.items():
            node_id = self.cluster.node_of_partition(pid).node_id
            per_node[node_id] = max(per_node.get(node_id, 0.0), seconds)
        return per_node
