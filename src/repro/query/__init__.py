"""A small OLAP query engine over the simulated cluster.

* :mod:`repro.query.operators` — filter / project / hash join / group-by /
  order-by / limit over dict rows.
* :class:`QuerySpec` / :class:`TableAccess` — access-pattern descriptions of
  queries (how the 22 TPC-H queries are encoded for the figures).
* :class:`ClusterQueryExecutor` — parallel execution with slowest-node timing,
  in spec mode or real-plan mode (:class:`QueryContext`).
"""

from .executor import (
    ACCESS_FULL_SCAN,
    ACCESS_PRIMARY_KEY_LOOKUPS,
    ACCESS_SECONDARY_INDEX,
    ClusterQueryExecutor,
    QueryContext,
    QuerySpec,
    TableAccess,
)
from .operators import (
    OperatorStats,
    Row,
    filter_rows,
    hash_group_by,
    hash_join,
    limit,
    order_by,
    project,
    scalar_aggregate,
)

__all__ = [
    "ACCESS_FULL_SCAN",
    "ACCESS_PRIMARY_KEY_LOOKUPS",
    "ACCESS_SECONDARY_INDEX",
    "ClusterQueryExecutor",
    "OperatorStats",
    "QueryContext",
    "QuerySpec",
    "Row",
    "TableAccess",
    "filter_rows",
    "hash_group_by",
    "hash_join",
    "limit",
    "order_by",
    "project",
    "scalar_aggregate",
]
