"""Fluent query builder over one dataset handle.

``dataset.query()`` returns a :class:`QueryBuilder` that composes the real
relational operators of :mod:`repro.query.operators` into a plan executed by
:class:`~repro.query.executor.ClusterQueryExecutor` — so ``execute()`` returns
actual rows *and* the simulated-time report of the shared-nothing cost model::

    result = (
        db.dataset("orders").query()
        .filter(lambda row: row["o_totalprice"] > 100.0)
        .group_by("o_custkey")
        .aggregate(total=("sum", "o_totalprice"), orders=("count", None))
        .order_by("total", descending=True)
        .limit(10)
        .execute()
    )
    for row in result: ...
    print(result.report.summary())

The same builder can also describe the query as an access-pattern
:class:`~repro.query.executor.QuerySpec` (what the paper's Figure 8/9 figures
execute): ``to_spec()`` returns the spec, ``estimate()`` runs it in spec mode.
Filter selectivities for spec mode are given alongside (or instead of) the
row predicate: ``.filter(pred, selectivity=0.1)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, TYPE_CHECKING

from ..common.errors import QueryError
from ..cluster.reports import QueryReport
from ..query.executor import (
    ACCESS_FULL_SCAN,
    ACCESS_PRIMARY_KEY_LOOKUPS,
    ACCESS_SECONDARY_INDEX,
    QueryContext,
    QuerySpec,
    TableAccess,
)
from ..query.operators import (
    Row,
    filter_rows,
    hash_group_by,
    limit as limit_rows,
    order_by as order_rows,
    project as project_rows,
    scalar_aggregate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataset import Dataset


class QueryResult:
    """Rows plus the query's :class:`~repro.cluster.reports.QueryReport`."""

    def __init__(self, rows: Any, report: QueryReport) -> None:
        self.rows = rows
        self.report = report

    def __iter__(self) -> Iterator[Row]:
        if isinstance(self.rows, list):
            return iter(self.rows)
        return iter([self.rows])

    def __len__(self) -> int:
        return len(self.rows) if isinstance(self.rows, list) else 1

    def __getitem__(self, index: int) -> Row:
        return self.rows[index] if isinstance(self.rows, list) else [self.rows][index]

    def first(self) -> Optional[Row]:
        if isinstance(self.rows, list):
            return self.rows[0] if self.rows else None
        return self.rows

    def scalar(self, column: Optional[str] = None) -> Any:
        """The single value of a one-row result (e.g. a scalar aggregate)."""
        row = self.first()
        if row is None:
            return None
        if column is not None:
            return row[column]
        if isinstance(row, Mapping):
            if len(row) != 1:
                raise QueryError(
                    f"scalar() on a row with {len(row)} columns; name one of {sorted(row)}"
                )
            return next(iter(row.values()))
        return row

    @property
    def simulated_seconds(self) -> float:
        return self.report.simulated_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryResult(rows={len(self)}, seconds={self.report.simulated_seconds:.3f})"


def _column(row: Row, name: str) -> Any:
    """Column access that fails with the engine's UnknownColumnError idiom."""
    try:
        return row[name]
    except KeyError:
        from ..common.errors import UnknownColumnError

        raise UnknownColumnError(
            f"row has no column {name!r}: {sorted(row)[:8]}"
        ) from None


def _extractor(column: "str | Callable[[Row], Any] | None") -> Callable[[Row], Any]:
    if column is None:
        return lambda row: 1
    if callable(column):
        return column
    return lambda row, _c=column: _column(row, _c)


class QueryBuilder:
    """Immutable-ish fluent builder; every verb returns ``self`` for chaining."""

    def __init__(self, dataset: "Dataset", name: Optional[str] = None) -> None:
        self._dataset = dataset
        self._name = name
        self._ops: List[Tuple[str, Dict[str, Any]]] = []
        self._selectivity = 1.0
        self._access = ACCESS_FULL_SCAN
        self._index_name: Optional[str] = None
        self._lookups = 0
        self._scan_count = 1
        self._operator_depth: Optional[int] = None
        self._ordered = False
        self._scalar_aggs: Optional[Dict[str, Tuple[str, Callable[[Row], Any]]]] = None
        self._group_keys: Optional[Tuple[str, ...]] = None

    # --------------------------------------------------------------- access

    def via_index(self, index_name: str) -> "QueryBuilder":
        """Read through a covering secondary index instead of the primary."""
        self._dataset.spec.index(index_name)  # validates the name
        self._access = ACCESS_SECONDARY_INDEX
        self._index_name = index_name
        return self

    def by_keys(self, lookups: int) -> "QueryBuilder":
        """Spec-mode access: ``lookups`` primary-key point lookups."""
        if lookups < 1:
            raise QueryError("by_keys needs at least one lookup")
        self._access = ACCESS_PRIMARY_KEY_LOOKUPS
        self._lookups = lookups
        return self

    def ordered(self) -> "QueryBuilder":
        """Require primary-key order from the scan (q18-style merge-sort)."""
        self._ordered = True
        return self

    def scans(self, count: int) -> "QueryBuilder":
        """Spec-mode: the query reads its input ``count`` times (q21-style)."""
        if count < 1:
            raise QueryError("scan count must be at least 1")
        self._scan_count = count
        return self

    def depth(self, operator_depth: int) -> "QueryBuilder":
        """Spec-mode: average operator-pipeline depth (compute heaviness)."""
        if operator_depth < 1:
            raise QueryError("operator_depth must be at least 1")
        self._operator_depth = operator_depth
        return self

    # ------------------------------------------------------------ operators

    def filter(
        self,
        predicate: Optional[Callable[[Row], bool]] = None,
        *,
        selectivity: Optional[float] = None,
    ) -> "QueryBuilder":
        """Keep rows matching ``predicate``; ``selectivity`` feeds spec mode.

        Either argument may be omitted: a predicate without selectivity
        estimates nothing for spec mode (assumed 1.0); a selectivity without
        predicate shapes the spec but filters nothing in plan mode.
        """
        if predicate is None and selectivity is None:
            raise QueryError("filter() needs a predicate and/or a selectivity")
        if selectivity is not None:
            if not 0.0 <= selectivity <= 1.0:
                raise QueryError("selectivity must be within [0, 1]")
            self._selectivity *= selectivity
        if predicate is not None:
            self._ops.append(("filter", {"predicate": predicate}))
        return self

    def project(
        self,
        *columns: str,
        **computed: Callable[[Row], Any],
    ) -> "QueryBuilder":
        """Keep only ``columns``, adding ``computed`` columns from callables."""
        if not columns and not computed:
            raise QueryError("project() needs at least one column")
        self._ops.append(("project", {"columns": columns, "computed": computed}))
        return self

    def group_by(self, *keys: str) -> "QueryBuilder":
        """Group by the named columns; follow with :meth:`aggregate`."""
        if not keys:
            raise QueryError("group_by() needs at least one key column")
        if self._group_keys is not None:
            raise QueryError("group_by() may only be called once")
        self._group_keys = keys
        return self

    def aggregate(self, **aggregates: "Tuple[str, Any]") -> "QueryBuilder":
        """Aggregate grouped (after :meth:`group_by`) or over the whole input.

        Each keyword maps an output column to ``(kind, column_or_callable)``
        with kind in {"sum", "count", "min", "max", "avg"}; ``None`` as the
        value works for counts: ``aggregate(n=("count", None))``.
        """
        if not aggregates:
            raise QueryError("aggregate() needs at least one aggregate")
        compiled = {
            out: (kind, _extractor(value)) for out, (kind, value) in aggregates.items()
        }
        if self._group_keys is not None:
            keys = self._group_keys
            self._group_keys = None
            self._ops.append(("group", {"keys": keys, "aggregates": compiled}))
        else:
            if self._scalar_aggs is None:
                self._scalar_aggs = {}
            self._scalar_aggs.update(compiled)
        return self

    def order_by(
        self, key: "str | Callable[[Row], Any]", descending: bool = False
    ) -> "QueryBuilder":
        self._ops.append(
            ("order_by", {"key": _extractor(key), "descending": descending})
        )
        return self

    def limit(self, count: int) -> "QueryBuilder":
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._ops.append(("limit", {"count": count}))
        return self

    # ------------------------------------------------------------ execution

    def _pipeline_depth(self) -> int:
        if self._operator_depth is not None:
            return self._operator_depth
        # One scan stage plus one per composed operator stage.
        depth = 1 + len(self._ops)
        if self._scalar_aggs is not None:
            depth += 1
        return max(1, depth)

    def _plan(self, context: QueryContext) -> Any:
        if self._access == ACCESS_SECONDARY_INDEX:
            rows: Iterable[Row] = context.scan_index(
                self._dataset.name, self._index_name
            )
        else:
            rows = context.scan(self._dataset.name, ordered=self._ordered)
        stats = context.operator_stats
        if self._group_keys is not None:
            raise QueryError("group_by() without aggregate()")
        for op, kwargs in self._ops:
            if op == "filter":
                rows = filter_rows(rows, kwargs["predicate"], stats)
            elif op == "project":
                rows = project_rows(
                    rows, kwargs["columns"], kwargs["computed"], stats
                )
            elif op == "group":
                keys = kwargs["keys"]
                rows = hash_group_by(
                    rows,
                    key=lambda row, _k=keys: {k: _column(row, k) for k in _k},
                    aggregates=kwargs["aggregates"],
                    stats=stats,
                )
            elif op == "order_by":
                rows = order_rows(rows, kwargs["key"], kwargs["descending"], stats)
            elif op == "limit":
                rows = limit_rows(rows, kwargs["count"])
        if self._scalar_aggs is not None:
            return scalar_aggregate(rows, self._scalar_aggs, stats)
        return rows

    def execute(self) -> QueryResult:
        """Run the composed plan over the cluster; returns rows + report."""
        if self._access == ACCESS_PRIMARY_KEY_LOOKUPS:
            raise QueryError(
                "by_keys() queries are access-pattern specs; use estimate(), "
                "or Dataset.get() for real point lookups"
            )
        self._dataset._runtime()  # enforces the session/dataset checks
        name = self._name or f"{self._dataset.name}.query"
        result, report = self._dataset.database.execute(
            name, self._plan, operator_depth_hint=1
        )
        return QueryResult(result, report)

    def count(self) -> int:
        """Execute ``COUNT(*)`` over the composed plan (a scalar aggregate)."""
        if self._group_keys is not None:
            raise QueryError("group_by() without aggregate()")
        counter = QueryBuilder(self._dataset, name=f"{self._dataset.name}.count")
        counter._ops = list(self._ops)
        counter._access = self._access
        counter._index_name = self._index_name
        counter._ordered = self._ordered
        counter._group_keys = None
        counter._scalar_aggs = {"n": ("count", _extractor(None))}
        return int(counter.execute().scalar("n"))

    # ------------------------------------------------------------- spec mode

    def to_spec(self, name: Optional[str] = None) -> QuerySpec:
        """The equivalent access-pattern :class:`QuerySpec` (Figure 8/9 mode)."""
        if self._group_keys is not None:
            raise QueryError("group_by() without aggregate()")
        return QuerySpec(
            name=name or self._name or f"{self._dataset.name}.query",
            accesses=(
                TableAccess(
                    dataset=self._dataset.name,
                    access=self._access,
                    index_name=self._index_name,
                    scan_count=self._scan_count,
                    selectivity=self._selectivity,
                    lookups=self._lookups,
                ),
            ),
            operator_depth=self._pipeline_depth(),
            requires_primary_key_order=self._ordered,
        )

    def estimate(self, name: Optional[str] = None) -> QueryReport:
        """Execute in spec mode: simulated cost only, no materialised rows."""
        self._dataset._runtime()  # enforces the session/dataset checks
        return self._dataset.database.execute_spec(self.to_spec(name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryBuilder({self._dataset.name!r}, access={self._access}, "
            f"ops={[op for op, _ in self._ops]})"
        )
