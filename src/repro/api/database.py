"""The ``Database`` session façade — the canonical entry point of the API.

A :class:`Database` wraps one :class:`~repro.cluster.controller.SimulatedCluster`
behind an AsterixDB-shaped client surface: a context-manager session that
hands out typed :class:`~repro.api.dataset.Dataset` handles, runs resizes
through the configured rebalancing strategy, and exposes the cluster's
lifecycle event bus::

    from repro.api import Database, ClusterConfig

    with Database(ClusterConfig(num_nodes=4), strategy="dynahash") as db:
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(rows)
        db.on("rebalance.*", print)
        report = db.rebalance(remove=1)
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

from ..cluster.controller import SimulatedCluster
from ..cluster.dataset import SecondaryIndexSpec
from ..cluster.reports import ClusterRebalanceReport, QueryReport
from ..common.config import ClusterConfig
from ..common.errors import ClusterError, ConfigError, FaultInjected
from ..common.events import Event, EventBus, Subscription
from ..metrics import MetricsRegistry
from ..query.executor import ClusterQueryExecutor, QuerySpec
from ..control.autopilot import Autopilot
from ..rebalance.operation import FaultInjector
from ..rebalance.recovery import RebalanceRecoveryManager, RecoveryOutcome
from .dataset import Dataset
from .registry import resolve_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace import TraceSession


class Database:
    """An open session against a (simulated) shared-nothing cluster.

    Parameters
    ----------
    config:
        Cluster configuration; ``config.strategy`` may name a registered
        rebalancing strategy.
    strategy:
        Strategy instance or registered name (``"dynahash"``, ``"static"``,
        ``"consistent"``, ``"hashing"``); overrides ``config.strategy``.
        Extra ``strategy_options`` are forwarded to the strategy factory when
        a name is given (either here or via ``config.strategy``).
    workload_scale:
        Work multiplier for the cost model (paper-scale simulated durations
        from reduced-scale data).
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        strategy: "Optional[str | object]" = None,
        workload_scale: float = 1.0,
        strategy_options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        config = config or ClusterConfig()
        if strategy is None:
            strategy = config.strategy
        resolved = resolve_strategy(strategy, **dict(strategy_options or {}))
        self._cluster = SimulatedCluster(
            config, strategy=resolved, workload_scale=workload_scale
        )
        self._executor = ClusterQueryExecutor(self._cluster)
        self._metrics = MetricsRegistry().attach(self._cluster.events)
        self._autopilot: "Optional[Autopilot]" = None
        self._trace: "Optional[TraceSession]" = None
        self._closed = False

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def open(
        cls,
        config: Optional[ClusterConfig] = None,
        strategy: "Optional[str | object]" = None,
        **kwargs: Any,
    ) -> "Database":
        """Open a new session (alias of the constructor, reads better)."""
        return cls(config, strategy=strategy, **kwargs)

    @classmethod
    def attach(cls, cluster: SimulatedCluster) -> "Database":
        """Wrap an existing cluster (migration path for legacy call sites)."""
        db = cls.__new__(cls)
        db._cluster = cluster
        db._executor = ClusterQueryExecutor(cluster)
        db._metrics = MetricsRegistry().attach(cluster.events)
        db._autopilot = None
        db._trace = None
        db._closed = False
        return db

    def close(self) -> None:
        """Close the session; later verbs raise :class:`ClusterError`.

        Closing is idempotent and emits ``database.close`` once.  The metrics
        registry is detached from the bus but keeps its recorded telemetry, so
        ``db.metrics`` stays readable after close.
        """
        if not self._closed:
            if self._autopilot is not None:
                self._autopilot.stop()
            self._closed = True
            self._cluster.events.emit("database.close", datasets=self._cluster.dataset_names())
            if self._trace is not None:
                # The tracer closed its spans on database.close above; this
                # takes the final gauge sample and detaches everything.
                self._trace.finish()
            self._metrics.detach()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        self._check_open()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("this Database session is closed")

    # ------------------------------------------------------------ escape hatch

    @property
    def cluster(self) -> SimulatedCluster:
        """The underlying simulated cluster (escape hatch; prefer the API)."""
        return self._cluster

    @property
    def events(self) -> EventBus:
        return self._cluster.events

    @property
    def executor(self) -> ClusterQueryExecutor:
        return self._executor

    @property
    def metrics(self) -> MetricsRegistry:
        """The session's telemetry: phase-tagged latency histograms,
        throughput counters, and gauges, fed by the event bus (see
        :mod:`repro.metrics`)."""
        return self._metrics

    @property
    def config(self) -> ClusterConfig:
        return self._cluster.config

    @property
    def strategy(self) -> Optional[object]:
        return self._cluster.strategy

    @property
    def num_nodes(self) -> int:
        return self._cluster.num_nodes

    @property
    def total_partitions(self) -> int:
        return self._cluster.total_partitions

    # --------------------------------------------------------------- events

    def on(self, pattern: str, callback: Callable[[Event], None]) -> Subscription:
        """Subscribe to lifecycle events (``fnmatch`` patterns, e.g.
        ``"rebalance.*"``); returns a cancellable subscription."""
        return self._cluster.events.on(pattern, callback)

    def once(self, pattern: str, callback: Callable[[Event], None]) -> Subscription:
        return self._cluster.events.once(pattern, callback)

    # -------------------------------------------------------------- datasets

    def create_dataset(
        self,
        name: str,
        primary_key: "str | Sequence[str]",
        secondary_indexes: Sequence[SecondaryIndexSpec] = (),
    ) -> Dataset:
        """Create a dataset partitioned across every node; returns its handle."""
        self._check_open()
        self._cluster.create_dataset(name, primary_key, secondary_indexes)
        return Dataset(self, name)

    def dataset(self, name: str) -> Dataset:
        """Handle for an existing dataset (raises if it does not exist)."""
        self._check_open()
        self._cluster.dataset(name)  # validates existence
        return Dataset(self, name)

    def __getitem__(self, name: str) -> Dataset:
        return self.dataset(name)

    def dataset_names(self) -> List[str]:
        self._check_open()
        return self._cluster.dataset_names()

    def datasets(self) -> Iterator[Dataset]:
        for name in self.dataset_names():
            yield Dataset(self, name)

    def drop_dataset(self, name: str) -> None:
        self._check_open()
        self._cluster.drop_dataset(name)

    # ------------------------------------------------------------- rebalance

    def rebalance(
        self,
        target_nodes: Optional[int] = None,
        *,
        add: Optional[int] = None,
        remove: Optional[int] = None,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_sites: Optional[Iterable[str]] = None,
        arm_chaos: bool = True,
    ) -> ClusterRebalanceReport:
        """Resize the cluster with the configured strategy.

        Exactly one of ``target_nodes``, ``add``, ``remove`` selects the new
        size.  ``concurrent_rows`` maps dataset name -> rows ingested while
        the rebalance's data movement is in flight (Figure 7c).
        ``fault_sites`` injects protocol failures (see
        :data:`repro.rebalance.operation.FAULT_SITES`); the raised
        :class:`~repro.common.errors.FaultInjected` models the crash, after
        which :meth:`recover` drives the Section V-D recovery cases.  Fault
        injection requires a directory-routing strategy — the ``"hashing"``
        baseline has no protocol sites and rejects it with
        :class:`~repro.common.errors.ConfigError`.

        When a chaos engine is installed (:meth:`enable_chaos`), every crash
        plan the simulated clock has passed arms its site here too, merged
        with any explicit ``fault_sites``; ``arm_chaos=False`` opts a caller
        out (the autopilot uses it so scheduled crashes target explicit
        rebalances, not policy-triggered ones).
        """
        self._check_open()
        chosen = [value for value in (target_nodes, add, remove) if value is not None]
        if len(chosen) != 1:
            raise ConfigError("pass exactly one of target_nodes=, add=, remove=")
        if target_nodes is None:
            target_nodes = self.num_nodes + (add or 0) - (remove or 0)
        sites = list(fault_sites) if fault_sites else []
        chaos = self._cluster.chaos
        if chaos is not None and arm_chaos:
            sites.extend(chaos.due_crash_sites())
        injector = FaultInjector(sites) if sites else None
        try:
            return self._cluster.rebalance_to(
                target_nodes, concurrent_rows=concurrent_rows, fault_injector=injector
            )
        except FaultInjected as fault:
            if chaos is not None:
                chaos.on_fault(fault.site)
            raise

    def rebalance_steps(
        self,
        target_nodes: Optional[int] = None,
        *,
        add: Optional[int] = None,
        remove: Optional[int] = None,
        concurrent_rows: Optional[Mapping[str, Sequence[Mapping[str, Any]]]] = None,
        fault_sites: Optional[Iterable[str]] = None,
        arm_chaos: bool = True,
    ) -> "Generator[Any, None, ClusterRebalanceReport]":
        """Generator twin of :meth:`rebalance` for the event scheduler.

        Resolves its target size, chaos crash sites, and fault injector with
        exactly the same logic as :meth:`rebalance`, then yields every
        :class:`~repro.sim.SimSegment` of the protocol so an
        :class:`~repro.sim.EventScheduler` actor can interleave foreground
        traffic inside the movement windows.  The generator's return value is
        the same :class:`~repro.cluster.reports.ClusterRebalanceReport`.
        """
        self._check_open()
        chosen = [value for value in (target_nodes, add, remove) if value is not None]
        if len(chosen) != 1:
            raise ConfigError("pass exactly one of target_nodes=, add=, remove=")
        if target_nodes is None:
            target_nodes = self.num_nodes + (add or 0) - (remove or 0)
        sites = list(fault_sites) if fault_sites else []
        chaos = self._cluster.chaos
        if chaos is not None and arm_chaos:
            sites.extend(chaos.due_crash_sites())
        injector = FaultInjector(sites) if sites else None
        try:
            report = yield from self._cluster.rebalance_to_steps(
                target_nodes, concurrent_rows=concurrent_rows, fault_injector=injector
            )
        except FaultInjected as fault:
            if chaos is not None:
                chaos.on_fault(fault.site)
            raise
        return report

    def add_nodes(self, count: int = 1) -> ClusterRebalanceReport:
        return self.rebalance(add=count)

    def remove_nodes(self, count: int = 1) -> ClusterRebalanceReport:
        return self.rebalance(remove=count)

    # -------------------------------------------------------------- autopilot

    def autopilot(
        self,
        policy: "str | object" = "threshold",
        *,
        policy_options: Optional[Mapping[str, Any]] = None,
        start: bool = True,
        **engine_options: Any,
    ) -> Autopilot:
        """Attach an autopilot control loop to this session.

        ``policy`` is a registered policy name (``"threshold"``,
        ``"cost_aware"``, ``"scheduled"``; see
        :func:`repro.control.register_policy`) or a policy instance;
        ``policy_options`` are forwarded to the policy factory when a name is
        given, and ``engine_options`` (``check_every_ops``,
        ``cooldown_seconds``, ``hysteresis``, ``dry_run``,
        ``max_rebalances``) configure the engine's guardrails.

        The engine subscribes to the session's ``op.*`` events, so ordinary
        traffic drives its evaluations — a hotspot spike can trigger a
        rebalance mid-run with no explicit :meth:`rebalance` call.  One
        engine per session: attaching a new one stops its predecessor.
        """
        self._check_open()
        if self._autopilot is not None:
            self._autopilot.stop()
        pilot = Autopilot(
            self, policy, policy_options=policy_options, **engine_options
        )
        self._autopilot = pilot
        if start:
            pilot.start()
        return pilot

    @property
    def autopilot_engine(self) -> Optional[Autopilot]:
        """The attached autopilot engine, if :meth:`autopilot` was called."""
        return self._autopilot

    # ----------------------------------------------------------------- tracing

    def start_trace(
        self,
        sample_interval_seconds: float = 0.25,
        clock_anchored_rebalance: bool = False,
    ) -> "TraceSession":
        """Attach a tracing session (spans + timeline gauges) to this run.

        Everything after this call is recorded into a span tree on the
        simulated clock plus sampled time-series (see :mod:`repro.trace`).
        One tracing session per database session: starting a new one
        finishes its predecessor.  The session is finished automatically on
        :meth:`close`; call ``finish()`` earlier to stop recording mid-run.
        Tracing never changes the metrics state — a traced and an untraced
        run of the same seed produce identical snapshots.

        ``clock_anchored_rebalance`` switches the rebalance subtree to
        clock-anchored layout, which the interleaved discrete-event engine
        needs for move spans to genuinely overlap the op spans they ran
        alongside (see :class:`repro.trace.spans.Tracer`).  Leave it off for
        the legacy run-to-completion engine, where the protocol-seconds
        layout is exact.
        """
        self._check_open()
        from ..trace import TraceSession

        if self._trace is not None:
            self._trace.finish()
        self._trace = TraceSession(
            self,
            sample_interval_seconds=sample_interval_seconds,
            clock_anchored_rebalance=clock_anchored_rebalance,
        ).attach()
        return self._trace

    @property
    def trace_session(self) -> "Optional[TraceSession]":
        """The attached tracing session, if :meth:`start_trace` was called."""
        return self._trace

    # ------------------------------------------------------------------ chaos

    def enable_chaos(self, *, seed: Optional[int] = None, **plan: Any) -> Any:
        """Install a deterministic chaos engine on this session's cluster.

        ``plan`` takes the :class:`repro.chaos.ChaosEngine` schedule keywords
        (``stragglers``, ``partitions``, ``crashes``, ``backpressure``,
        ``bursts``, ``retry``, ``random_stragglers``,
        ``straggler_horizon_seconds``); ``seed`` defaults to the cluster
        config's seed and feeds the dedicated ``chaos:<seed>`` RNG stream.
        One engine per session — enabling again replaces the schedule.  The
        hot paths probe ``cluster.chaos is not None`` once per call, so a
        session that never enables chaos is bit-identical to one on a build
        without it.
        """
        self._check_open()
        from ..chaos import ChaosEngine

        engine = ChaosEngine(
            clock=self._metrics.clock,
            cost=self._cluster.cost,
            events=self._cluster.events,
            seed=self.config.seed if seed is None else seed,
            node_ids=[node.node_id for node in self._cluster.nodes],
            **plan,
        )
        self._cluster.chaos = engine
        return engine

    @property
    def chaos_engine(self) -> Optional[Any]:
        """The installed chaos engine, if :meth:`enable_chaos` was called."""
        return self._cluster.chaos

    def recover(self) -> List[RecoveryOutcome]:
        """Run rebalance recovery as a restarted coordinator would."""
        self._check_open()
        outcomes = RebalanceRecoveryManager(self._cluster).recover()
        self._cluster.events.emit(
            "recovery.complete",
            outcomes=[(o.rebalance_id, o.dataset, o.action) for o in outcomes],
        )
        if self._cluster.chaos is not None:
            # Recovery round trips cost simulated time only under chaos, so
            # non-chaos runs keep their recorded clocks bit for bit.
            self._cluster.chaos.charge_recovery(outcomes)
        return outcomes

    # ----------------------------------------------------------------- query

    def execute_spec(self, spec: QuerySpec) -> QueryReport:
        """Run an access-pattern query spec (the paper's figure mode)."""
        self._check_open()
        report = self._executor.execute_spec(spec)
        self._emit_query(spec.name, report)
        return report

    def execute(
        self, name: str, plan: Callable[..., Any], operator_depth_hint: int = 1
    ) -> "tuple[Any, QueryReport]":
        """Run a real operator plan (e.g. the TPC-H q1/q3/q6 plans)."""
        self._check_open()
        result, report = self._executor.execute_plan(name, plan, operator_depth_hint)
        self._emit_query(name, report)
        return result, report

    def _emit_query(self, name: str, report: QueryReport) -> None:
        self._cluster.events.emit(
            "op.query",
            query=name,
            latency_seconds=report.simulated_seconds,
            records=0,
        )

    # ------------------------------------------------------------ inspection

    def describe(self) -> Dict[str, Any]:
        """A structural snapshot of the session's cluster state."""
        self._check_open()
        snapshot = self._cluster.describe()
        snapshot["strategy"] = getattr(
            self._cluster.strategy, "name", None
        ) or (self._cluster.strategy and type(self._cluster.strategy).__name__)
        snapshot["node_ids"] = [node.node_id for node in self._cluster.nodes]
        return snapshot

    def storage_per_node(self) -> Dict[str, int]:
        self._check_open()
        return self._cluster.storage_per_node()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else "open"
        return (
            f"Database({state}, nodes={self._cluster.num_nodes}, "
            f"datasets={self._cluster.dataset_names()})"
        )
