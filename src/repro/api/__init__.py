"""The canonical public surface of the DynaHash reproduction.

This package is the *client API*: a :class:`Database` session façade handing
out typed :class:`Dataset` handles with fluent verbs, a string-keyed strategy
registry, lifecycle events, and the configuration/report types client code
needs — so applications, examples, and benches import only ``repro.api``::

    from repro.api import ClusterConfig, Database

    with Database(ClusterConfig(num_nodes=4), strategy="dynahash") as db:
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(rows)
        orders.upsert(changed_rows)
        orders.delete([1, 2, 3])
        row = orders.get(1234)
        top = (
            orders.query()
            .filter(lambda r: r["o_totalprice"] > 0)
            .group_by("o_custkey")
            .aggregate(total=("sum", "o_totalprice"))
            .order_by("total", descending=True)
            .limit(10)
            .execute()
        )
        db.on("rebalance.*", lambda event: print(event.name))
        report = db.rebalance(remove=1)
        db.autopilot(policy="cost_aware")  # metrics-driven auto-rebalancing

``Database.attach(cluster)`` wraps an existing :class:`SimulatedCluster`
(the escape hatch for code that builds clusters directly).
"""

from ..cluster.dataset import DatasetSpec, SecondaryIndexSpec
from ..cluster.reports import (
    ClusterRebalanceReport,
    IngestReport,
    QueryReport,
    RebalanceReport,
)
from ..common.config import (
    BucketingConfig,
    ClusterConfig,
    CostModelConfig,
    LSMConfig,
)
from ..common.errors import (
    ClusterError,
    ConfigError,
    FaultInjected,
    QueryError,
    RebalanceError,
    ReproError,
    UnknownDatasetError,
)
from ..common.reporting import format_table
from ..common.units import GIB, KIB, MIB
from ..control import (
    Autopilot,
    AutopilotDecision,
    AutopilotPolicy,
    ClusterObservation,
    CostAwarePolicy,
    PlanProjection,
    PolicyDecision,
    ScheduledPolicy,
    ThresholdPolicy,
    WhatIfPlanner,
    available_policies,
    policy_by_name,
    register_policy,
    resolve_policy,
)
from ..query.executor import QuerySpec, TableAccess
from ..rebalance.operation import FAULT_SITES
from ..rebalance.recovery import RecoveryOutcome
from ..tpch.queries import q1_plan, q3_plan, q6_plan, query_spec as tpch_query_spec
from .database import Database
from .dataset import Dataset, DeleteReport
from .events import EVENT_NAMES, Event, EventBus, Subscription
from .query import QueryBuilder, QueryResult
from .registry import (
    available_strategies,
    register_strategy,
    resolve_strategy,
    strategy_by_name,
)
from ..metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    PHASE_REBALANCE,
    PHASE_STEADY,
)
from .workloads import (
    DEFAULT_TABLES,
    DISTRIBUTIONS,
    HotspotKeys,
    KeyGenerator,
    LatestKeys,
    OPERATIONS,
    OperationMix,
    Phase,
    PhaseResult,
    Schedule,
    TPCHLoadResult,
    TPCHWorkload,
    UniformKeys,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
    YCSB_MIXES,
    ZipfianKeys,
    load_tpch,
    make_key_generator,
    make_mix,
    run_workload,
    steady_schedule,
    storm_schedule,
)

__all__ = [
    "Autopilot",
    "AutopilotDecision",
    "AutopilotPolicy",
    "BucketingConfig",
    "ClusterConfig",
    "ClusterError",
    "ClusterObservation",
    "ClusterRebalanceReport",
    "ConfigError",
    "CostAwarePolicy",
    "CostModelConfig",
    "Counter",
    "DEFAULT_TABLES",
    "DISTRIBUTIONS",
    "Database",
    "Dataset",
    "DatasetSpec",
    "DeleteReport",
    "EVENT_NAMES",
    "Event",
    "EventBus",
    "FAULT_SITES",
    "FaultInjected",
    "GIB",
    "Gauge",
    "HotspotKeys",
    "IngestReport",
    "KIB",
    "KeyGenerator",
    "LSMConfig",
    "LatencyHistogram",
    "LatestKeys",
    "MIB",
    "MetricsRegistry",
    "MetricsSnapshot",
    "OPERATIONS",
    "OperationMix",
    "PHASE_REBALANCE",
    "PHASE_STEADY",
    "Phase",
    "PhaseResult",
    "PlanProjection",
    "PolicyDecision",
    "QueryBuilder",
    "QueryError",
    "QueryReport",
    "QueryResult",
    "QuerySpec",
    "RebalanceError",
    "RebalanceReport",
    "RecoveryOutcome",
    "ReproError",
    "Schedule",
    "ScheduledPolicy",
    "SecondaryIndexSpec",
    "Subscription",
    "TPCHLoadResult",
    "TPCHWorkload",
    "TableAccess",
    "ThresholdPolicy",
    "UniformKeys",
    "UnknownDatasetError",
    "WhatIfPlanner",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "YCSB_MIXES",
    "ZipfianKeys",
    "available_policies",
    "available_strategies",
    "format_table",
    "load_tpch",
    "make_key_generator",
    "make_mix",
    "policy_by_name",
    "q1_plan",
    "q3_plan",
    "q6_plan",
    "register_policy",
    "register_strategy",
    "resolve_policy",
    "resolve_strategy",
    "run_workload",
    "steady_schedule",
    "storm_schedule",
    "strategy_by_name",
    "tpch_query_spec",
]
