"""Lifecycle events exposed by the client API.

Every :class:`~repro.api.database.Database` owns an
:class:`~repro.common.events.EventBus` (the implementation lives in
:mod:`repro.common.events` so the lower layers can emit without importing the
API package).  Benches, tests, and observability code subscribe with
``db.on(pattern, callback)`` instead of poking cluster internals.

Canonical event names, in emission order for a resize:

========================== ==================================================
``dataset.create``          a dataset was created (controller)
``dataset.drop``            a dataset was dropped (controller)
``ingest.start``            a data feed started ingesting (feed)
``ingest.complete``         the feed finished; payload carries the report
``rebalance.start``         ``rebalance_to`` began (controller)
``rebalance.dataset.start`` one dataset's rebalance operation began
``rebalance.phase``         a protocol phase finished (initialization,
                            data_movement, finalization)
``rebalance.commit``        the COMMIT record was forced (the commit point)
``rebalance.abort``         the operation aborted; payload carries the reason
``rebalance.dataset.complete`` one dataset's operation finished
``rebalance.complete``      the whole resize finished; payload carries the
                            :class:`~repro.cluster.reports.ClusterRebalanceReport`
``rebalance.error``         the resize raised (e.g. an injected fault)
``recovery.complete``       ``db.recover()`` finished; payload lists outcomes
``node.provision``          a node was added (before data moved onto it)
``node.decommission``       a node was removed (after data moved away)
``database.close``          the Database session was closed
``autopilot.start``         an autopilot engine attached to the session
``autopilot.stop``          the engine detached; payload carries its tallies
``autopilot.decision``      a policy decided to act; payload carries action,
                            target_nodes, reason, and the engine outcome
``autopilot.skip``          a guardrail vetoed the decision (cooldown,
                            hysteresis, max_rebalances)
``autopilot.dry_run``       dry-run mode: the decision was planned, not run
``autopilot.rebalance.start``    the engine began executing a rebalance
``autopilot.rebalance.complete`` the policy-triggered rebalance finished;
                            payload carries the
                            :class:`~repro.cluster.reports.ClusterRebalanceReport`
``op.read``                 an instrumented ``Dataset.get`` completed
``op.insert``               an instrumented ``Dataset.insert`` batch completed
``op.update``               a ``Dataset.upsert`` (or a concurrent write
                            replicated during a rebalance) completed
``op.delete``               an instrumented ``Dataset.delete`` completed
``op.scan``                 an instrumented ``Dataset.scan`` was fully consumed
``op.query``                a query (plan or spec mode) completed
========================== ==================================================

Every ``op.*`` payload carries ``latency_seconds`` (the call's simulated
latency) and ``records``; the session's
:class:`~repro.metrics.MetricsRegistry` subscribes to ``op.*`` and turns the
samples into latency histograms tagged with the cluster phase in flight
(steady vs rebalance).

Patterns use ``fnmatch`` semantics: ``db.on("rebalance.*", cb)`` sees every
rebalance event, ``db.on("*", cb)`` sees everything.
"""

from __future__ import annotations

from ..common.events import Event, EventBus, Subscription

#: Canonical event names (kept in one tuple so tests can assert coverage).
EVENT_NAMES = (
    "dataset.create",
    "dataset.drop",
    "dataset.delete",
    "ingest.start",
    "ingest.complete",
    "rebalance.start",
    "rebalance.dataset.start",
    "rebalance.phase",
    "rebalance.commit",
    "rebalance.abort",
    "rebalance.dataset.complete",
    "rebalance.complete",
    "rebalance.error",
    "recovery.complete",
    "node.provision",
    "node.decommission",
    "database.close",
    "autopilot.start",
    "autopilot.stop",
    "autopilot.decision",
    "autopilot.skip",
    "autopilot.dry_run",
    "autopilot.rebalance.start",
    "autopilot.rebalance.complete",
    "op.read",
    "op.insert",
    "op.update",
    "op.delete",
    "op.scan",
    "op.query",
)

__all__ = ["EVENT_NAMES", "Event", "EventBus", "Subscription"]
