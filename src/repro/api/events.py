"""Lifecycle events exposed by the client API.

Every :class:`~repro.api.database.Database` owns an
:class:`~repro.common.events.EventBus` (the implementation lives in
:mod:`repro.common.events` so the lower layers can emit without importing the
API package).  Benches, tests, and observability code subscribe with
``db.on(pattern, callback)`` instead of poking cluster internals.

The full declared contract — every event name with its required and optional
payload keys — lives in :mod:`repro.common.event_contract`, which is also
what the ``reprolint`` static-analysis rules (:mod:`repro.analysis`) hold
every emitter and subscriber to, and what the event-bus section of
``docs/ARCHITECTURE.md`` is generated from.  :data:`EVENT_NAMES` is derived
from that contract, so the three can never disagree.

The short version of the contract:

* ``op.*`` — instrumented operation samples (``op.read`` / ``op.insert`` /
  ``op.update`` / ``op.delete`` / ``op.scan`` / ``op.query``, plus
  ``op.batch`` for one batched same-verb run).  Every sample carries
  ``latency_seconds`` and ``records``; the session's
  :class:`~repro.metrics.MetricsRegistry` turns them into latency histograms
  tagged with the cluster phase in flight (steady vs rebalance).
* ``rebalance.*`` / ``recovery.complete`` — the resize protocol's lifecycle,
  from ``rebalance.start`` through per-dataset phases and commit to
  ``rebalance.complete``.
* ``autopilot.*`` — the control loop's decisions, skips, and triggered
  rebalances.
* ``ingest.*``, ``dataset.*``, ``node.*``, ``database.close`` — feeds,
  dataset DDL, topology, and session lifecycle.

Patterns use ``fnmatch`` semantics: ``db.on("rebalance.*", cb)`` sees every
rebalance event, ``db.on("*", cb)`` sees everything.
"""

from __future__ import annotations

from ..common.event_contract import EVENT_CONTRACT, declared_events
from ..common.events import Event, EventBus, Subscription

#: Canonical event names, derived from the declared contract
#: (:mod:`repro.common.event_contract`) so tests can assert coverage against
#: the same source the linter and the generated docs use.
EVENT_NAMES = declared_events()

__all__ = ["EVENT_CONTRACT", "EVENT_NAMES", "Event", "EventBus", "Subscription"]
