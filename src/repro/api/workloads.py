"""Workload conveniences for the client API.

Examples and benches repeatedly need "a database with TPC-H loaded"; this
module provides that in API terms so client code never touches the cluster
internals directly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tpch.workload import DEFAULT_TABLES, TPCHLoadResult, TPCHWorkload
from .database import Database

__all__ = ["DEFAULT_TABLES", "TPCHLoadResult", "TPCHWorkload", "load_tpch"]


def load_tpch(
    db: Database,
    scale_factor: float = 0.001,
    tables: Sequence[str] = DEFAULT_TABLES,
    seed: Optional[int] = None,
    batch_size: int = 2000,
) -> TPCHLoadResult:
    """Create and load the named TPC-H tables into ``db``.

    Datasets are created with the paper's schema (covering secondary indexes
    on LineItem and Orders) and ingested through data feeds, so ``ingest.*``
    events fire per table.  ``seed=None`` uses the cluster config's seed.
    """
    workload = TPCHWorkload(
        scale_factor=scale_factor,
        seed=db.config.seed if seed is None else seed,
    )
    return workload.load(db.cluster, tables=tables, batch_size=batch_size)
