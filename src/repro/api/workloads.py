"""Workloads for the client API: TPC-H loading and the traffic engine.

This module is the one import point for everything workload-shaped:

* :func:`load_tpch` — "a database with TPC-H loaded", in API terms, for the
  paper's figure experiments;
* the YCSB-style traffic engine re-exported from :mod:`repro.workload` — key
  distributions, operation mixes, phased schedules, and the
  :class:`~repro.workload.driver.WorkloadDriver` / :func:`run_workload` pair
  that drives sustained mixed traffic through :class:`~repro.api.dataset.Dataset`
  handles while ``db.metrics`` records phase-tagged latency histograms.

Client code should not import :mod:`repro.workload` or :mod:`repro.tpch`
directly; everything here is also re-exported from :mod:`repro.api`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..tpch.workload import DEFAULT_TABLES, TPCHLoadResult, TPCHWorkload
from ..workload import (
    DISTRIBUTIONS,
    HotspotKeys,
    KeyGenerator,
    LatestKeys,
    OPERATIONS,
    OperationMix,
    Phase,
    PhaseResult,
    Schedule,
    UniformKeys,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
    YCSB_MIXES,
    ZipfianKeys,
    make_key_generator,
    make_mix,
    run_workload,
    steady_schedule,
    storm_schedule,
)
from .database import Database

__all__ = [
    "DEFAULT_TABLES",
    "DISTRIBUTIONS",
    "HotspotKeys",
    "KeyGenerator",
    "LatestKeys",
    "OPERATIONS",
    "OperationMix",
    "Phase",
    "PhaseResult",
    "Schedule",
    "TPCHLoadResult",
    "TPCHWorkload",
    "UniformKeys",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "YCSB_MIXES",
    "ZipfianKeys",
    "load_tpch",
    "make_key_generator",
    "make_mix",
    "run_workload",
    "steady_schedule",
    "storm_schedule",
]


def load_tpch(
    db: Database,
    scale_factor: float = 0.001,
    tables: Sequence[str] = DEFAULT_TABLES,
    seed: Optional[int] = None,
    batch_size: int = 2000,
) -> TPCHLoadResult:
    """Create and load the named TPC-H tables into ``db``.

    Datasets are created with the paper's schema (covering secondary indexes
    on LineItem and Orders) and ingested through data feeds, so ``ingest.*``
    events fire per table.  ``seed=None`` uses the cluster config's seed.
    """
    workload = TPCHWorkload(
        scale_factor=scale_factor,
        seed=db.config.seed if seed is None else seed,
    )
    return workload.load(db.cluster, tables=tables, batch_size=batch_size)
