"""String-keyed strategy registry for the client API.

The paper's evaluation compares four rebalancing approaches; client code
should be able to name them (``strategy="dynahash"``) rather than import and
construct strategy classes.  The registry itself lives next to the strategy
classes (:mod:`repro.rebalance.strategies`); this module is the public face:

* :func:`resolve_strategy` — turn ``None`` / a name / an instance into a
  strategy object (what :class:`repro.api.Database` calls),
* :func:`strategy_by_name` — name -> fresh instance, with factory kwargs,
* :func:`register_strategy` — plug in custom strategies,
* :func:`available_strategies` — the valid names for error messages and CLIs.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ConfigError
from ..rebalance.strategies import (
    RebalancingStrategy,
    available_strategies,
    register_strategy,
    strategy_by_name,
)

__all__ = [
    "available_strategies",
    "register_strategy",
    "resolve_strategy",
    "strategy_by_name",
]


def resolve_strategy(
    strategy: "Optional[str | RebalancingStrategy]", **kwargs: Any
) -> Optional[RebalancingStrategy]:
    """Resolve a strategy given as ``None``, a registered name, or an instance.

    ``None`` passes through (the cluster then defaults to DynaHash-style
    directory routing and requires a strategy before any resize).  A string is
    looked up in the registry, forwarding ``kwargs`` to the factory.  Anything
    else must already look like a strategy (have ``rebalance_cluster``).
    """
    if strategy is None:
        if kwargs:
            raise ConfigError("strategy options given without a strategy name")
        return None
    if isinstance(strategy, str):
        return strategy_by_name(strategy, **kwargs)
    if kwargs:
        raise ConfigError("strategy options are only valid with a strategy name")
    if not hasattr(strategy, "rebalance_cluster"):
        raise ConfigError(
            f"{strategy!r} is not a rebalancing strategy (missing rebalance_cluster); "
            f"pass an instance or one of: {', '.join(available_strategies())}"
        )
    return strategy
