"""Typed dataset handles: the client-side verbs of the dataset API.

A :class:`Dataset` is a lightweight handle bound to a
:class:`~repro.api.database.Database` session and a dataset name.  It owns no
state of its own — every call re-resolves the live
:class:`~repro.cluster.controller.DatasetRuntime`, so a handle stays valid
across rebalances (which swap the routing directory and partition map under
it, exactly as AsterixDB dataset names do).

Every verb is *instrumented*: it emits an ``op.<verb>`` event on the session's
event bus carrying the call's simulated latency, which the session's
:class:`~repro.metrics.MetricsRegistry` turns into phase-tagged latency
histograms and throughput counters (see :mod:`repro.metrics`).  Latencies are
per *call* — a batched ``insert`` records the batch call's latency, a point
``get`` records one lookup's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, TYPE_CHECKING

from ..cluster.dataset import DatasetSpec
from ..cluster.reports import IngestReport
from ..common.errors import UnknownDatasetError
from .query import QueryBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime
    from .database import Database


@dataclass
class DeleteReport:
    """Outcome of deleting a batch of keys from a dataset."""

    dataset: str
    keys_requested: int
    records_deleted: int
    simulated_seconds: float
    per_partition_deletes: Dict[int, int] = field(default_factory=dict)

    @property
    def keys_missing(self) -> int:
        return self.keys_requested - self.records_deleted

    def summary(self) -> str:
        return (
            f"deleted {self.records_deleted}/{self.keys_requested} keys from "
            f"{self.dataset!r} in {self.simulated_seconds:.3f}s"
        )


class Dataset:
    """Handle for one dataset of an open :class:`Database` session."""

    def __init__(self, database: "Database", name: str) -> None:
        self.database = database
        self.name = name

    # -------------------------------------------------------------- plumbing

    def _runtime(self) -> "DatasetRuntime":
        self.database._check_open()
        return self.database.cluster.dataset(self.name)

    @property
    def spec(self) -> DatasetSpec:
        return self._runtime().spec

    @property
    def exists(self) -> bool:
        """Whether the dataset exists — a non-throwing probe, so it answers
        from the cluster metadata even on a closed session."""
        try:
            self.database.cluster.dataset(self.name)
            return True
        except UnknownDatasetError:
            return False

    def _emit_op(
        self, op: str, latency_seconds: float, records: int = 1, **extra: Any
    ) -> None:
        """Publish one instrumented-verb sample on the session's event bus.

        Skipped outright — payload construction included — when nothing
        subscribes to the op's event name (e.g. a session whose metrics
        registry was detached); ``has_subscribers`` is a cached dict probe.
        """
        events = self.database.events
        name = f"op.{op}"
        if not events.has_subscribers(name):
            return
        events.emit(
            name,
            dataset=self.name,
            latency_seconds=latency_seconds,
            records=records,
            **extra,
        )

    def _emit_op_batch(
        self, op: str, latencies: "List[float]", records_per_op: int = 1
    ) -> None:
        """Publish a batch of same-verb samples as one ``op.batch`` event."""
        if not latencies:
            return
        events = self.database.events
        if not events.has_subscribers("op.batch"):
            return
        events.emit(
            "op.batch",
            op=op,
            dataset=self.name,
            latencies=latencies,
            records_per_op=records_per_op,
            count=len(latencies),
        )

    # ------------------------------------------------------------ write path

    def insert(
        self, rows: Iterable[Mapping[str, Any]], batch_size: int = 2000
    ) -> IngestReport:
        """Insert rows through a data feed; returns the ingest report."""
        return self._ingest(rows, batch_size, op="insert")

    def upsert(
        self, rows: Iterable[Mapping[str, Any]], batch_size: int = 2000
    ) -> IngestReport:
        """Insert-or-replace rows by primary key.

        The LSM write path is natively upserting (a newer entry shadows the
        older one at the same key), so this shares :meth:`insert`'s feed path;
        the separate verb keeps client intent explicit (and the two verbs are
        metered as distinct ``op.insert`` / ``op.update`` samples).
        """
        return self._ingest(rows, batch_size, op="update")

    def _ingest(
        self, rows: Iterable[Mapping[str, Any]], batch_size: int, op: str
    ) -> IngestReport:
        self._runtime()  # enforces the session/dataset checks
        report = self.database.cluster.feed(self.name, batch_size=batch_size).ingest(rows)
        self._emit_op(op, report.simulated_seconds, records=report.records)
        return report

    def upsert_each(self, rows: "Sequence[Mapping[str, Any]]") -> "List[IngestReport]":
        """Upsert rows one at a time, metered as a single batched event.

        Each row is ingested through its own single-row feed call — the same
        storage work, maintenance boundaries, and per-row simulated latency a
        loop of ``upsert([row], batch_size=1)`` pays — but the feed (and its
        routing snapshot) is built once, and the per-row latencies travel as
        one ``op.batch`` event instead of N ``op.update`` events.  This is
        the update path of the batched workload driver.
        """
        self._runtime()  # enforces the session/dataset checks
        if not rows:
            return []
        feed = self.database.cluster.feed(self.name, batch_size=1)
        reports: List[IngestReport] = []
        latencies: List[float] = []
        for row in rows:
            report = feed.ingest((row,))
            reports.append(report)
            latencies.append(report.simulated_seconds)
        self._emit_op_batch("update", latencies)
        return reports

    def delete(self, keys: "Iterable[Any] | Any") -> DeleteReport:
        """Delete records by primary key; accepts one key or an iterable.

        Missing keys are counted but not an error (deletes are tombstones in
        an LSM tree either way).
        """
        if isinstance(keys, (str, bytes)) or not isinstance(keys, Iterable):
            keys = [keys]
        runtime = self._runtime()
        cost = self.database.cluster.cost
        per_partition: Dict[int, int] = {}
        requested = 0
        deleted = 0
        for key in keys:
            requested += 1
            pid = runtime.partition_of_key(key)
            partition = runtime.partitions[pid]
            existing = partition.lookup(key)
            partition.delete(key, record=existing)
            if existing is not None:
                deleted += 1
                per_partition[pid] = per_partition.get(pid, 0) + 1
        for partition in runtime.partitions.values():
            partition.maintain()
        simulated = cost.parse_time(requested) + cost.rpc_time(2)
        report = DeleteReport(
            dataset=self.name,
            keys_requested=requested,
            records_deleted=deleted,
            simulated_seconds=simulated,
            per_partition_deletes=per_partition,
        )
        self.database.events.emit(
            "dataset.delete", dataset=self.name, keys=requested, deleted=deleted
        )
        self._emit_op("delete", simulated, records=requested, deleted=deleted)
        return report

    # ------------------------------------------------------------- read path

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """Point lookup by primary key (routes via the current directory).

        The emitted ``op.read`` latency charges the client/CC round trip plus
        the per-component open overhead and disk pages the probe actually
        touched (taken from the partition's storage-stats delta), so lookups
        get slower as a bucket accumulates unmerged components.
        """
        runtime = self._runtime()
        heat = self.database.cluster.heat
        if heat is not None:
            heat.record_read(self.name, key)
        partition_id = runtime.partition_of_key(key)
        partition = runtime.partitions[partition_id]
        opened_before = partition.components_opened_total()
        record = partition.lookup(key)
        opened = partition.components_opened_total() - opened_before
        cost = self.database.cluster.cost
        latency = (
            cost.rpc_time(2)
            + cost.component_open_time(opened)
            # One page per component probed past the Bloom filters; charged
            # unscaled because a point read touches one page regardless of
            # what data scale the run represents.
            + (opened * self.database.config.lsm.page_bytes)
            / cost.config.disk_read_bytes_per_sec
        )
        chaos = self.database.cluster.chaos
        if chaos is not None:
            # Burst windows stretch the client's service time; partition
            # windows add the retry path's miss/backoff penalty on top.
            latency = latency * chaos.client_factor() + chaos.routing_penalty(runtime, key)
        self._emit_op("read", latency, found=record is not None)
        return record

    def get_many(self, keys: "Sequence[Any]") -> "List[Optional[Dict[str, Any]]]":
        """Point-lookup a batch of primary keys, in order.

        The storage work, per-key cost accounting, and resulting telemetry
        are identical to looping :meth:`get` — each key's latency is computed
        from its own probe's component-open delta — but session/runtime
        resolution happens once and the samples travel as a single
        ``op.batch`` event, which the metrics registry folds in with
        :meth:`~repro.metrics.MetricsRegistry.observe_op_batch`.  This is the
        read path of the batched workload driver.
        """
        runtime = self._runtime()
        partitions = runtime.partitions
        partition_of_key = runtime.partition_of_key
        cost = self.database.cluster.cost
        rpc = cost.rpc_time(2)
        component_open_time = cost.component_open_time
        page_bytes = self.database.config.lsm.page_bytes
        disk_rate = cost.config.disk_read_bytes_per_sec
        heat = self.database.cluster.heat
        chaos = self.database.cluster.chaos
        records: List[Optional[Dict[str, Any]]] = []
        latencies: List[float] = []
        for key in keys:
            if heat is not None:
                heat.record_read(self.name, key)
            partition = partitions[partition_of_key(key)]
            opened_before = partition.components_opened_total()
            record = partition.lookup(key)
            opened = partition.components_opened_total() - opened_before
            # Same float-operation order as get(): the batched and looped
            # paths must produce bit-identical latency samples.
            latency = rpc + component_open_time(opened) + (opened * page_bytes) / disk_rate
            if chaos is not None:
                latency = latency * chaos.client_factor() + chaos.routing_penalty(
                    runtime, key
                )
            latencies.append(latency)
            records.append(record)
        self._emit_op_batch("read", latencies)
        return records

    def scan(
        self, low: Any = None, high: Any = None, ordered: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Iterate the dataset's records across every partition.

        ``ordered=True`` merge-sorts each partition's buckets by primary key
        (records still arrive partition by partition, as a cluster scan does).
        A fully consumed scan emits one ``op.scan`` sample whose latency
        covers the bytes it returned; an abandoned iterator emits nothing.
        """
        runtime = self._runtime()
        bytes_read = 0
        rows = 0
        for pid in sorted(runtime.partitions):
            for entry in runtime.partitions[pid].scan_primary(
                low=low, high=high, ordered=ordered
            ):
                bytes_read += entry.size_bytes
                rows += 1
                yield dict(entry.value)
        cost = self.database.cluster.cost
        latency = (
            cost.rpc_time(2)
            + cost.component_open_time(len(runtime.partitions))
            + cost.disk_read_time(bytes_read)
        )
        self._emit_op("scan", latency, records=rows)

    def count(self) -> int:
        """Number of live records (served from the partitions' key counts)."""
        return self._runtime().record_count()

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    # ----------------------------------------------------------------- query

    def query(self, name: Optional[str] = None) -> QueryBuilder:
        """Start a fluent query over this dataset."""
        return QueryBuilder(self, name=name)

    # ------------------------------------------------------------ inspection

    def describe(self) -> Dict[str, Any]:
        """A structural snapshot of this dataset."""
        runtime = self._runtime()
        return {
            "name": self.name,
            "primary_key": list(runtime.spec.primary_key),
            "secondary_indexes": runtime.spec.index_names(),
            "routing": runtime.routing_mode,
            "records": runtime.record_count(),
            "bytes": runtime.total_size_bytes,
            "partitions": sorted(runtime.partitions),
            "buckets": (
                len(runtime.global_directory)
                if runtime.global_directory is not None
                else None
            ),
        }

    def drop(self) -> None:
        """Drop this dataset from the database."""
        self.database.drop_dataset(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dataset({self.name!r})"
