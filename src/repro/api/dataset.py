"""Typed dataset handles: the client-side verbs of the dataset API.

A :class:`Dataset` is a lightweight handle bound to a
:class:`~repro.api.database.Database` session and a dataset name.  It owns no
state of its own — every call re-resolves the live
:class:`~repro.cluster.controller.DatasetRuntime`, so a handle stays valid
across rebalances (which swap the routing directory and partition map under
it, exactly as AsterixDB dataset names do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, TYPE_CHECKING

from ..cluster.dataset import DatasetSpec
from ..cluster.reports import IngestReport
from ..common.errors import UnknownDatasetError
from .query import QueryBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.controller import DatasetRuntime
    from .database import Database


@dataclass
class DeleteReport:
    """Outcome of deleting a batch of keys from a dataset."""

    dataset: str
    keys_requested: int
    records_deleted: int
    simulated_seconds: float
    per_partition_deletes: Dict[int, int] = field(default_factory=dict)

    @property
    def keys_missing(self) -> int:
        return self.keys_requested - self.records_deleted

    def summary(self) -> str:
        return (
            f"deleted {self.records_deleted}/{self.keys_requested} keys from "
            f"{self.dataset!r} in {self.simulated_seconds:.3f}s"
        )


class Dataset:
    """Handle for one dataset of an open :class:`Database` session."""

    def __init__(self, database: "Database", name: str):
        self.database = database
        self.name = name

    # -------------------------------------------------------------- plumbing

    def _runtime(self) -> "DatasetRuntime":
        self.database._check_open()
        return self.database.cluster.dataset(self.name)

    @property
    def spec(self) -> DatasetSpec:
        return self._runtime().spec

    @property
    def exists(self) -> bool:
        """Whether the dataset exists — a non-throwing probe, so it answers
        from the cluster metadata even on a closed session."""
        try:
            self.database.cluster.dataset(self.name)
            return True
        except UnknownDatasetError:
            return False

    # ------------------------------------------------------------ write path

    def insert(
        self, rows: Iterable[Mapping[str, Any]], batch_size: int = 2000
    ) -> IngestReport:
        """Insert rows through a data feed; returns the ingest report."""
        self._runtime()  # enforces the session/dataset checks
        return self.database.cluster.feed(self.name, batch_size=batch_size).ingest(rows)

    def upsert(
        self, rows: Iterable[Mapping[str, Any]], batch_size: int = 2000
    ) -> IngestReport:
        """Insert-or-replace rows by primary key.

        The LSM write path is natively upserting (a newer entry shadows the
        older one at the same key), so this shares :meth:`insert`'s feed path;
        the separate verb keeps client intent explicit.
        """
        return self.insert(rows, batch_size=batch_size)

    def delete(self, keys: "Iterable[Any] | Any") -> DeleteReport:
        """Delete records by primary key; accepts one key or an iterable.

        Missing keys are counted but not an error (deletes are tombstones in
        an LSM tree either way).
        """
        if isinstance(keys, (str, bytes)) or not isinstance(keys, Iterable):
            keys = [keys]
        runtime = self._runtime()
        cost = self.database.cluster.cost
        per_partition: Dict[int, int] = {}
        requested = 0
        deleted = 0
        for key in keys:
            requested += 1
            pid = runtime.partition_of_key(key)
            partition = runtime.partitions[pid]
            existing = partition.lookup(key)
            partition.delete(key, record=existing)
            if existing is not None:
                deleted += 1
                per_partition[pid] = per_partition.get(pid, 0) + 1
        for partition in runtime.partitions.values():
            partition.maintain()
        simulated = cost.parse_time(requested) + cost.rpc_time(2)
        report = DeleteReport(
            dataset=self.name,
            keys_requested=requested,
            records_deleted=deleted,
            simulated_seconds=simulated,
            per_partition_deletes=per_partition,
        )
        self.database.events.emit(
            "dataset.delete", dataset=self.name, keys=requested, deleted=deleted
        )
        return report

    # ------------------------------------------------------------- read path

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """Point lookup by primary key (routes via the current directory)."""
        self._runtime()  # enforces the session/dataset checks
        return self.database.cluster.point_lookup(self.name, key)

    def scan(
        self, low: Any = None, high: Any = None, ordered: bool = False
    ) -> Iterator[Dict[str, Any]]:
        """Iterate the dataset's records across every partition.

        ``ordered=True`` merge-sorts each partition's buckets by primary key
        (records still arrive partition by partition, as a cluster scan does).
        """
        runtime = self._runtime()
        for pid in sorted(runtime.partitions):
            for entry in runtime.partitions[pid].scan_primary(
                low=low, high=high, ordered=ordered
            ):
                yield dict(entry.value)

    def count(self) -> int:
        """Number of live records (served from the partitions' key counts)."""
        return self._runtime().record_count()

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    # ----------------------------------------------------------------- query

    def query(self, name: Optional[str] = None) -> QueryBuilder:
        """Start a fluent query over this dataset."""
        return QueryBuilder(self, name=name)

    # ------------------------------------------------------------ inspection

    def describe(self) -> Dict[str, Any]:
        """A structural snapshot of this dataset."""
        runtime = self._runtime()
        return {
            "name": self.name,
            "primary_key": list(runtime.spec.primary_key),
            "secondary_indexes": runtime.spec.index_names(),
            "routing": runtime.routing_mode,
            "records": runtime.record_count(),
            "bytes": runtime.total_size_bytes,
            "partitions": sorted(runtime.partitions),
            "buckets": (
                len(runtime.global_directory)
                if runtime.global_directory is not None
                else None
            ),
        }

    def drop(self) -> None:
        """Drop this dataset from the database."""
        self.database.drop_dataset(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dataset({self.name!r})"
