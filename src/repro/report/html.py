"""The head-to-head HTML dashboard: one file, zero dependencies.

:func:`render_dashboard` turns a :class:`~repro.report.align.Comparison` into
a single self-contained HTML document — inline CSS, a dozen lines of inline
vanilla JS for column sorting, inline SVG for the timeline sparklines and the
per-cell span Gantt strips.  No external fonts, scripts, stylesheets, or
images: the file opens identically from a CI artifact, an email attachment,
or ``file://``.

Determinism: the document contains no timestamps, hostnames, or environment
detail; numbers render via ``%.6g``; all iteration orders derive from cell
order and sorted unions.  The same recordings produce byte-identical HTML on
every run and every ``PYTHONHASHSEED`` (pinned by tests).
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .align import CellView, Comparison, align_series

__all__ = ["render_dashboard"]

#: Fixed cell palette (cycled); chosen for contrast on the light background.
_PALETTE = (
    "#2563eb",  # blue
    "#dc2626",  # red
    "#16a34a",  # green
    "#9333ea",  # purple
    "#ea580c",  # orange
    "#0891b2",  # cyan
    "#ca8a04",  # dark yellow
    "#db2777",  # pink
)

#: Span categories -> Gantt strip colors (others fall back to grey).
_CATEGORY_COLORS = {
    "workload": "#93c5fd",
    "rebalance": "#fca5a5",
    "autopilot": "#d8b4fe",
    "session": "#e5e7eb",
}
_OTHER_COLOR = "#d1d5db"

#: Sparkline sections rendered before the "+N more" cut.
_MAX_SERIES = 16

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #111827; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #d1d5db; padding: .3rem .6rem; text-align: right; }
th { background: #f3f4f6; cursor: pointer; user-select: none; }
th:first-child, td:first-child { text-align: left; }
td.pass { color: #16a34a; font-weight: 600; }
td.fail { color: #dc2626; font-weight: 600; }
.note { color: #92400e; background: #fef3c7; padding: .4rem .8rem;
        border-radius: .3rem; margin-top: .5rem; display: inline-block; }
.legend span { display: inline-block; margin-right: 1rem; }
.legend i { display: inline-block; width: .8rem; height: .8rem;
            border-radius: 2px; margin-right: .3rem; vertical-align: -1px; }
svg { display: block; margin-top: .3rem; background: #f9fafb;
      border: 1px solid #e5e7eb; border-radius: .3rem; }
.lane-label { font-size: 11px; fill: #6b7280; }
"""

_SORT_JS = """
document.querySelectorAll("th[data-sort]").forEach(function (th) {
  th.addEventListener("click", function () {
    var tbody = th.closest("table").querySelector("tbody");
    var index = Array.prototype.indexOf.call(th.parentNode.children, th);
    var dir = th.dataset.dir === "asc" ? -1 : 1;
    th.dataset.dir = dir === 1 ? "asc" : "desc";
    var rows = Array.prototype.slice.call(tbody.querySelectorAll("tr"));
    rows.sort(function (a, b) {
      var x = a.children[index].dataset.value, y = b.children[index].dataset.value;
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return (nx - ny) * dir;
      return x < y ? -dir : x > y ? dir : 0;
    });
    rows.forEach(function (row) { tbody.appendChild(row); });
  });
});
"""


def _num(value: float) -> str:
    return f"{value:.6g}"


def _cell_color(index: int) -> str:
    return _PALETTE[index % len(_PALETTE)]


# ---------------------------------------------------------------------------
# table
# ---------------------------------------------------------------------------


def _metric_cell(value: Optional[float]) -> str:
    if value is None:
        return '<td data-value="">-</td>'
    return f'<td data-value="{_num(value)}">{_num(value)}</td>'


def _cells_table(comparison: Comparison) -> List[str]:
    keys = comparison.metric_keys()
    out = ["<h2>cells</h2>", '<table id="cells"><thead><tr>']
    for header in ["cell", "strategy", "seed", "checks"] + keys:
        out.append(f'<th data-sort="1">{escape(header)}</th>')
    out.append("</tr></thead><tbody>")
    for cell in comparison.cells:
        out.append("<tr>")
        out.append(f'<td data-value="{escape(cell.label)}">{escape(cell.label)}</td>')
        strategy = cell.strategy or "-"
        out.append(f'<td data-value="{escape(strategy)}">{escape(strategy)}</td>')
        seed = "-" if cell.seed is None else str(cell.seed)
        out.append(f'<td data-value="{seed}">{seed}</td>')
        if cell.checks:
            verdict = "pass" if cell.passed else "fail"
            text = f"{sum(1 for c in cell.checks if c.get('passed'))}/{len(cell.checks)}"
            out.append(f'<td class="{verdict}" data-value="{text}">{text} {verdict.upper()}</td>')
        else:
            out.append('<td data-value="">-</td>')
        for key in keys:
            out.append(_metric_cell(cell.metrics.get(key)))
        out.append("</tr>")
    out.append("</tbody></table>")
    return out


# ---------------------------------------------------------------------------
# sparklines
# ---------------------------------------------------------------------------


def _sparkline(
    comparison: Comparison, name: str, width: int = 640, height: int = 90
) -> List[str]:
    times, aligned = align_series(comparison, name)
    if not times or not aligned:
        return []
    values = [v for series in aligned.values() for v in series if v is not None]
    if not values:
        return []
    t_max = times[-1] or 1.0
    v_min, v_max = min(values), max(values)
    v_span = (v_max - v_min) or 1.0
    pad = 6
    out = [f"<h2>{escape(name)}</h2>"]
    out.append(
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="{escape(name)}">'
    )
    for label, series in aligned.items():
        index = comparison.labels.index(label)
        points = []
        for t, value in zip(times, series, strict=True):
            if value is None:
                continue
            x = pad + (t / t_max) * (width - 2 * pad)
            y = height - pad - ((value - v_min) / v_span) * (height - 2 * pad)
            points.append(f"{x:.1f},{y:.1f}")
        if points:
            out.append(
                f'<polyline fill="none" stroke="{_cell_color(index)}" '
                f'stroke-width="1.5" points="{" ".join(points)}">'
                f"<title>{escape(label)}</title></polyline>"
            )
    out.append(
        f'<text x="{pad}" y="{height - 2}" class="lane-label">0s .. {_num(t_max)}s '
        f"(simulated); range {_num(v_min)} .. {_num(v_max)}</text>"
    )
    out.append("</svg>")
    return out


# ---------------------------------------------------------------------------
# Gantt strips
# ---------------------------------------------------------------------------


def _gantt_rows(trace: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The structural spans (same selection as the terminal Gantt)."""
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in trace.get("spans", []):
        children.setdefault(span.get("parent"), []).append(span)
    rows: List[Dict[str, Any]] = []

    def collect(span: Dict[str, Any], depth: int) -> None:
        structural = depth == 1 or span["cat"] in ("rebalance", "autopilot")
        if structural and depth <= 3 and span["dur"] > 0:
            rows.append(span)
        for child in children.get(span["id"], []):
            collect(child, depth + 1)

    for root in children.get(None, []):
        collect(root, 0)
    return rows


def _gantt_strips(comparison: Comparison, width: int = 640) -> List[str]:
    traced: List[Tuple[CellView, List[Dict[str, Any]]]] = []
    t_max = 0.0
    for cell in comparison.cells:
        trace = cell.trace
        if trace is None:
            continue
        rows = _gantt_rows(trace)
        if not rows:
            continue
        traced.append((cell, rows))
        t_max = max(t_max, max(span["start"] + span["dur"] for span in rows))
    if not traced or t_max <= 0:
        return []
    out = ["<h2>timeline (shared simulated-time axis)</h2>"]
    out.append('<div class="legend">')
    for category, color in _CATEGORY_COLORS.items():
        out.append(f'<span><i style="background:{color}"></i>{escape(category)}</span>')
    out.append("</div>")
    lane_height, label_height = 16, 14
    for cell, rows in traced:
        height = label_height + lane_height + 6
        out.append(
            f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
            f'role="img" aria-label="timeline {escape(cell.label)}">'
        )
        out.append(
            f'<text x="4" y="{label_height - 3}" class="lane-label">'
            f"{escape(cell.label)} (0s .. {_num(t_max)}s)</text>"
        )
        for span in rows:
            x = (span["start"] / t_max) * (width - 8) + 4
            w = max(1.0, (span["dur"] / t_max) * (width - 8))
            color = _CATEGORY_COLORS.get(span["cat"], _OTHER_COLOR)
            title = f"{span['name']}: {_num(span['start'])}s +{_num(span['dur'])}s"
            out.append(
                f'<rect x="{x:.1f}" y="{label_height}" width="{w:.1f}" '
                f'height="{lane_height}" fill="{color}" stroke="#9ca3af" '
                f'stroke-width="0.5"><title>{escape(title)}</title></rect>'
            )
        out.append("</svg>")
    return out


# ---------------------------------------------------------------------------
# document
# ---------------------------------------------------------------------------


def render_dashboard(comparison: Comparison, title: str = "repro comparison") -> str:
    """The full dashboard document (UTF-8 HTML, byte-stable)."""
    names = sorted({str(cell.scenario_name) for cell in comparison.cells})
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>scenario {escape(', '.join(names))} · {len(comparison.cells)} cell(s); "
        "click a column header to sort</p>",
    ]
    out.append('<div class="legend">')
    for index, label in enumerate(comparison.labels):
        out.append(
            f'<span><i style="background:{_cell_color(index)}"></i>{escape(label)}</span>'
        )
    out.append("</div>")
    for note in comparison.notes:
        out.append(f'<p class="note">{escape(note)}</p>')
    out.extend(_cells_table(comparison))
    out.extend(_gantt_strips(comparison))
    series_names = comparison.series_names()
    for name in series_names[:_MAX_SERIES]:
        out.extend(_sparkline(comparison, name))
    if len(series_names) > _MAX_SERIES:
        out.append(
            f'<p class="note">+{len(series_names) - _MAX_SERIES} more series not '
            f"shown: {escape(', '.join(series_names[_MAX_SERIES:]))}</p>"
        )
    out.append(f"<script>{_SORT_JS}</script>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"
