"""Sweep grids: axes into cells.

An *axis* is a named list of values — either a shorthand alias (``strategy``,
``seed``, ``nodes``, ``workload_scale``, ``policy``) or a dotted path into the
spec's canonical mapping form (``workload.phases.0.ops``,
``autopilot.options.max_skew``).  Axes come from a spec's ``[sweep]`` section,
from ``--axis name=v1,v2`` CLI arguments, or both (a CLI axis replaces the
spec axis of the same name in place, so the grid order stays the declared
order).

:func:`expand_cells` walks the cartesian product in declared axis order and
builds one :class:`SweepCell` per point: the base spec's canonical mapping
with the cell's overrides patched in (and the ``[sweep]`` section stripped),
re-validated through :meth:`~repro.scenario.ScenarioSpec.from_mapping` so a
bad combination fails with the cell's id in the error.  Overriding
``cluster.strategy`` drops the base spec's ``strategy_options`` — they are
specific to the strategy they were written for (the same rule as the CLI's
``--strategy`` override).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..scenario import ScenarioSpec, ScenarioSpecError
from ..scenario.spec import SweepSection

__all__ = ["SweepCell", "expand_cells", "merge_axes", "parse_axis_arg"]

Axis = Tuple[str, Tuple[Any, ...]]


@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: an id, its overrides, and the resolved spec."""

    #: Stable identifier, e.g. ``"strategy=dynahash,seed=1"``.
    cell_id: str
    #: ``axis -> value`` for this cell, in declared axis order.
    overrides: Tuple[Tuple[str, Any], ...]
    #: The base spec with the overrides applied and ``[sweep]`` stripped.
    spec: ScenarioSpec

    @property
    def slug(self) -> str:
        """The cell id as a filesystem-safe fragment."""
        return "".join(
            ch if ch.isalnum() or ch in "._-" else "-" for ch in self.cell_id
        ).strip("-")


def _coerce_scalar(text: str) -> Any:
    """A CLI axis value string into the scalar a TOML author would write."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_axis_arg(argument: str) -> Axis:
    """Parse one ``--axis name=v1,v2,...`` argument into an axis."""
    name, separator, values_text = argument.partition("=")
    name = name.strip()
    if not separator or not name:
        raise ScenarioSpecError(
            f"--axis {argument!r}: expected NAME=VALUE[,VALUE...] "
            "(e.g. --axis strategy=dynahash,statichash)"
        )
    values = tuple(_coerce_scalar(v.strip()) for v in values_text.split(",") if v.strip())
    if not values:
        raise ScenarioSpecError(f"--axis {argument!r}: an axis needs at least one value")
    where = f"--axis {name}"
    SweepSection.validate_axis_name(name, where)
    # Reuse the section's registry-backed value checks (strategies, seeds,
    # policies) so a typo'd CLI value fails before any cell runs.
    SweepSection(axes=((name, values),))._validate_values()
    return name, values


def merge_axes(
    spec_axes: Sequence[Axis], cli_axes: Sequence[Axis]
) -> Tuple[Axis, ...]:
    """Spec axes in declared order, CLI axes replacing/appending by name."""
    merged: List[Axis] = list(spec_axes)
    for name, values in cli_axes:
        for index, (existing, _) in enumerate(merged):
            if existing == name:
                merged[index] = (name, values)
                break
        else:
            merged.append((name, values))
    return tuple(merged)


def _patch_path(mapping: Dict[str, Any], path: str, value: Any, where: str) -> None:
    """Set ``path`` (dotted; integer segments index arrays) in ``mapping``."""
    segments = path.split(".")
    target: Any = mapping
    for position, segment in enumerate(segments[:-1]):
        if isinstance(target, list):
            index = _array_index(segment, target, where)
            target = target[index]
        elif isinstance(target, dict):
            target = target.setdefault(segment, {})
        else:
            raise ScenarioSpecError(
                f"{where}: cannot descend into {'.'.join(segments[: position + 1])!r} "
                f"(it is a {type(target).__name__}, not a section)"
            )
    leaf = segments[-1]
    if isinstance(target, list):
        target[_array_index(leaf, target, where)] = value
    elif isinstance(target, dict):
        target[leaf] = value
    else:
        raise ScenarioSpecError(
            f"{where}: cannot set {path!r} on a {type(target).__name__}"
        )


def _array_index(segment: str, array: List[Any], where: str) -> int:
    try:
        index = int(segment)
    except ValueError:
        raise ScenarioSpecError(
            f"{where}: {segment!r} is not an array index (the spec has an "
            f"array of {len(array)} entries here)"
        ) from None
    if not 0 <= index < len(array):
        raise ScenarioSpecError(
            f"{where}: index {index} out of range (array has {len(array)} entries)"
        )
    return index


def expand_cells(base: ScenarioSpec, axes: Sequence[Axis]) -> List[SweepCell]:
    """One :class:`SweepCell` per point of the grid, in declared axis order.

    The last axis varies fastest (odometer order), so
    ``strategy=[a,b], seed=[1,2]`` yields ``a,1  a,2  b,1  b,2``.
    """
    if not axes:
        raise ScenarioSpecError(
            "sweep: no axes — declare a [sweep.axes] section in the spec or "
            "pass --axis NAME=VALUE,... on the command line"
        )
    import copy

    base_mapping = base.to_mapping()
    base_mapping.pop("sweep", None)

    cells: List[SweepCell] = []
    counters = [0] * len(axes)
    while True:
        overrides = tuple(
            (name, values[counters[position]])
            for position, (name, values) in enumerate(axes)
        )
        cell_id = ",".join(f"{name}={_value_text(value)}" for name, value in overrides)
        mapping = copy.deepcopy(base_mapping)
        for name, value in overrides:
            path = SweepSection.validate_axis_name(name, f"cell {cell_id!r}: axis {name}")
            if path == "cluster.strategy" and value != base.cluster.strategy:
                mapping.get("cluster", {}).pop("strategy_options", None)
            _patch_path(mapping, path, value, f"cell {cell_id!r}: axis {name}")
        try:
            spec = ScenarioSpec.from_mapping(mapping)
        except ScenarioSpecError as exc:
            raise ScenarioSpecError(f"cell {cell_id!r}: {exc}") from exc
        cells.append(SweepCell(cell_id=cell_id, overrides=overrides, spec=spec))

        position = len(axes) - 1
        while position >= 0:
            counters[position] += 1
            if counters[position] < len(axes[position][1]):
                break
            counters[position] = 0
            position -= 1
        if position < 0:
            return cells


def _value_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
