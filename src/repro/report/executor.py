"""Running a sweep: one deterministic recording per cell, plus the manifest.

Cells are independent seeded simulations, so the executor can run them
in-process (``jobs=1``) or fan them out across worker processes.  Both paths
funnel through the same module-level :func:`_run_cell` worker, which renders
the cell's recording to its canonical JSON text *inside* the worker — the
parent only writes bytes to disk.  That is the whole byte-identical
guarantee: a recording's bytes are a pure function of the cell's spec, so
``--jobs 4`` and ``--jobs 1`` produce the same files and the same manifest
(pinned by tests).

The manifest is itself byte-stable (sorted keys, fixed indentation, relative
recording paths): running the same sweep twice into two directories produces
identical manifests, which CI checks with a plain ``cmp``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..scenario import ScenarioSpec
from .align import MANIFEST_KIND, MANIFEST_VERSION, headline_metrics
from .grid import Axis, SweepCell, expand_cells

__all__ = ["run_sweep", "sweep_manifest_json"]

#: The manifest's filename inside the sweep output directory.
MANIFEST_NAME = "sweep.manifest.json"


def _run_cell(payload: Tuple[int, Dict[str, Any]]) -> str:
    """Run one cell and return its recording as canonical JSON text.

    Module-level (picklable) so :class:`~concurrent.futures.ProcessPoolExecutor`
    can ship it to workers; the in-process path calls it directly, so both
    modes execute byte-for-byte the same code.
    """
    _, mapping = payload
    from ..scenario import ScenarioSpec, recording_payload, run_scenario

    spec = ScenarioSpec.from_mapping(mapping)
    result = run_scenario(spec)
    return json.dumps(recording_payload(result), sort_keys=True, indent=2) + "\n"


def run_sweep(
    base: ScenarioSpec,
    axes: Sequence[Axis],
    out_dir: Union[str, Path],
    jobs: int = 1,
    progress: Optional[Callable[[SweepCell, bool], None]] = None,
) -> Dict[str, Any]:
    """Expand ``base`` over ``axes``, run every cell, write recordings + manifest.

    Returns the manifest document (already written to
    ``out_dir/sweep.manifest.json``).  ``progress`` is invoked once per cell,
    in grid order, with the cell and whether its checks passed.
    """
    cells = expand_cells(base, axes)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    payloads = [(index, cell.spec.to_mapping()) for index, cell in enumerate(cells)]
    if jobs > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            texts: List[str] = list(pool.map(_run_cell, payloads))
    else:
        texts = [_run_cell(payload) for payload in payloads]

    manifest_cells: List[Dict[str, Any]] = []
    for index, (cell, text) in enumerate(zip(cells, texts, strict=True)):
        filename = f"cell-{index:03d}-{cell.slug}.recording.json"
        (out / filename).write_text(text)
        document = json.loads(text)
        passed = all(check.get("passed") for check in document.get("checks", []))
        manifest_cells.append(
            {
                "id": cell.cell_id,
                "overrides": dict(cell.overrides),
                "recording": filename,
                "passed": passed,
                "metrics": headline_metrics(document),
            }
        )
        if progress is not None:
            progress(cell, passed)

    manifest: Dict[str, Any] = {
        "version": MANIFEST_VERSION,
        "kind": MANIFEST_KIND,
        "scenario": base.name,
        "axes": [{"axis": name, "values": list(values)} for name, values in axes],
        "cells": manifest_cells,
    }
    (out / MANIFEST_NAME).write_text(sweep_manifest_json(manifest))
    return manifest


def sweep_manifest_json(manifest: Dict[str, Any]) -> str:
    """The manifest as deterministic (byte-stable) JSON text."""
    return json.dumps(manifest, sort_keys=True, indent=2) + "\n"
