"""Parameter sweeps and cross-recording comparison (the reporting layer).

PR 7 made a *single* run observable; this package makes claims about
*differences between runs* first-class.  It has two halves, mirrored by the
``python -m repro sweep`` and ``python -m repro compare`` subcommands:

* **Sweeps** (:mod:`repro.report.grid`, :mod:`repro.report.executor`): a base
  :class:`~repro.scenario.ScenarioSpec` plus a parameter grid — axes declared
  in the spec's ``[sweep]`` section and/or ``--axis strategy=a,b`` arguments —
  expands into one *cell* per point of the cartesian product.  Each cell is an
  independent seeded simulation, so the executor can fan cells out across
  worker processes (``--jobs``) with a test-pinned guarantee that parallel and
  serial sweeps produce **byte-identical** recordings, and writes a byte-stable
  *sweep manifest* (cell -> overrides, recording path, headline metrics).

* **Comparison** (:mod:`repro.report.align`, :mod:`repro.report.tables`,
  :mod:`repro.report.html`): N recordings (or one manifest) load into a
  :class:`~repro.report.align.Comparison`, their snapshots and trace/timeline
  payloads aligned on the shared simulated-time grid, rendered as terminal
  tables, per-pair metric diffs with relative-delta gates (the CI regression
  gate), and a self-contained dependency-free HTML dashboard.

Everything here is offline and deterministic: the same recordings produce the
same tables, diffs, and dashboard bytes on every run, every process, and every
``PYTHONHASHSEED``.
"""

from .align import CellView, Comparison, align_series, headline_metrics, load_comparison
from .executor import run_sweep, sweep_manifest_json
from .grid import SweepCell, expand_cells, merge_axes, parse_axis_arg
from .html import render_dashboard
from .tables import GateResult, evaluate_gates, parse_gate_arg, render_comparison

__all__ = [
    "CellView",
    "Comparison",
    "GateResult",
    "SweepCell",
    "align_series",
    "evaluate_gates",
    "expand_cells",
    "headline_metrics",
    "load_comparison",
    "merge_axes",
    "parse_axis_arg",
    "parse_gate_arg",
    "render_comparison",
    "render_dashboard",
    "run_sweep",
    "sweep_manifest_json",
]
