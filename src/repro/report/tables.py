"""Terminal renderings of a comparison, and the relative-delta gates.

Everything renders through :func:`repro.common.reporting.format_table` like
the rest of the repo, and every row/column order is derived from cell order
and sorted unions — so the same comparison prints byte-identical text on
every run and every ``PYTHONHASHSEED``.

Gates are the CI regression story: ``--gate METRIC=THRESHOLD`` compares every
non-baseline cell against the baseline on one headline metric.  The
threshold is a *signed relative delta*: ``write_p99_ms[rebalance]=0.25``
fails a cell whose rebalance-phase write p99 grew more than +25% over the
baseline, ``ops_per_sec=-0.10`` fails a cell whose throughput dropped more
than 10%.  A gate over a metric a cell never recorded fails loudly — absent
evidence is not a pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.reporting import format_table
from ..scenario import ScenarioSpecError
from .align import CellView, Comparison

__all__ = [
    "GateResult",
    "evaluate_gates",
    "parse_gate_arg",
    "render_comparison",
]


def _fmt(value: Optional[float]) -> str:
    """A metric value as stable text (``-`` for absent)."""
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_delta(delta: Optional[float]) -> str:
    if delta is None:
        return "-"
    return f"{delta * 100:+.1f}%"


def _relative_delta(base: Optional[float], value: Optional[float]) -> Optional[float]:
    if base is None or value is None:
        return None
    if base == 0:
        return 0.0 if value == 0 else float("inf") if value > 0 else float("-inf")
    return (value - base) / abs(base)


def _checks_cell(cell: CellView) -> str:
    checks = cell.checks
    if not checks:
        return "-"
    passed = sum(1 for check in checks if check.get("passed"))
    verdict = "PASS" if passed == len(checks) else "FAIL"
    return f"{passed}/{len(checks)} {verdict}"


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def overview_table(comparison: Comparison) -> str:
    """One row per cell: identity, scale, throughput, check verdict."""
    rows = []
    for cell in comparison.cells:
        nodes = cell.document.get("nodes", {})
        rows.append(
            [
                cell.label,
                cell.strategy or "-",
                _fmt(float(cell.seed)) if cell.seed is not None else "-",
                f"{nodes.get('before', '-')}->{nodes.get('after', '-')}",
                _fmt(cell.metrics.get("total_ops")),
                _fmt(cell.metrics.get("simulated_seconds")),
                _fmt(cell.metrics.get("ops_per_sec")),
                _checks_cell(cell),
            ]
        )
    return format_table(
        ["cell", "strategy", "seed", "nodes", "ops", "sim s", "ops/s", "checks"], rows
    )


def metrics_table(comparison: Comparison) -> str:
    """Head-to-head: one row per headline metric, one column per cell."""
    keys = comparison.metric_keys()
    rows = [
        [key] + [_fmt(cell.metrics.get(key)) for cell in comparison.cells] for key in keys
    ]
    return format_table(["metric"] + comparison.labels, rows)


def checks_table(comparison: Comparison) -> str:
    """Per-check outcomes across cells (empty string when no cell has checks)."""
    names: List[str] = []
    for cell in comparison.cells:
        for check in cell.checks:
            if check.get("name") not in names:
                names.append(check.get("name"))
    if not names:
        return ""
    rows = []
    for name in names:
        row: List[str] = [name]
        for cell in comparison.cells:
            outcome = next((c for c in cell.checks if c.get("name") == name), None)
            row.append("-" if outcome is None else "PASS" if outcome.get("passed") else "FAIL")
        rows.append(row)
    return format_table(["check"] + comparison.labels, rows)


def diff_table(comparison: Comparison, baseline: CellView) -> str:
    """Per-pair metric deltas vs the baseline cell, relative where defined."""
    others = [cell for cell in comparison.cells if cell is not baseline]
    headers = ["metric", f"{baseline.label} (base)"]
    for cell in others:
        headers += [cell.label, "delta"]
    rows = []
    for key in comparison.metric_keys():
        base_value = baseline.metrics.get(key)
        row = [key, _fmt(base_value)]
        for cell in others:
            value = cell.metrics.get(key)
            row += [_fmt(value), _fmt_delta(_relative_delta(base_value, value))]
        rows.append(row)
    return format_table(headers, rows)


def _resolve_baseline(comparison: Comparison, baseline: Optional[str]) -> CellView:
    if baseline is None:
        return comparison.cells[0]
    for cell in comparison.cells:
        if cell.label == baseline:
            return cell
    raise ScenarioSpecError(
        f"--baseline {baseline!r}: no such cell "
        f"(cells: {', '.join(comparison.labels)})"
    )


def render_comparison(comparison: Comparison, baseline: Optional[str] = None) -> str:
    """The full terminal report: overview, metrics, checks, diffs, notes."""
    sections = [overview_table(comparison), "", "headline metrics:", metrics_table(comparison)]
    checks = checks_table(comparison)
    if checks:
        sections += ["", "checks:", checks]
    if len(comparison.cells) > 1:
        base = _resolve_baseline(comparison, baseline)
        sections += ["", f"deltas vs baseline {base.label!r}:", diff_table(comparison, base)]
    for note in comparison.notes:
        sections += ["", f"note: {note}"]
    return "\n".join(sections)


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateResult:
    """One (cell, metric) gate evaluation."""

    cell: str
    metric: str
    threshold: float
    passed: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"gate {self.metric} [{self.cell}]: {status} ({self.detail})"


def parse_gate_arg(argument: str) -> Tuple[str, float]:
    """Parse one ``--gate METRIC=THRESHOLD`` argument."""
    metric, separator, threshold_text = argument.rpartition("=")
    if not separator or not metric:
        raise ScenarioSpecError(
            f"--gate {argument!r}: expected METRIC=THRESHOLD "
            "(e.g. --gate write_p99_ms[rebalance]=0.25 or --gate ops_per_sec=-0.10)"
        )
    try:
        threshold = float(threshold_text)
    except ValueError:
        raise ScenarioSpecError(
            f"--gate {argument!r}: threshold {threshold_text!r} is not a number "
            "(a signed relative delta, e.g. 0.25 or -0.10)"
        ) from None
    return metric, threshold


def evaluate_gates(
    comparison: Comparison,
    gates: Dict[str, float],
    baseline: Optional[str] = None,
) -> List[GateResult]:
    """Every non-baseline cell against every gate, in cell-then-gate order."""
    if len(comparison.cells) < 2:
        raise ScenarioSpecError(
            "gates need at least two recordings (a baseline and a candidate)"
        )
    base = _resolve_baseline(comparison, baseline)
    results: List[GateResult] = []
    for cell in comparison.cells:
        if cell is base:
            continue
        for metric, threshold in gates.items():
            base_value = base.metrics.get(metric)
            value = cell.metrics.get(metric)
            if base_value is None or value is None:
                missing = base.label if base_value is None else cell.label
                results.append(
                    GateResult(
                        cell.label,
                        metric,
                        threshold,
                        False,
                        f"metric not recorded by {missing!r} "
                        f"(known metrics: {', '.join(comparison.metric_keys())})",
                    )
                )
                continue
            delta = _relative_delta(base_value, value)
            assert delta is not None
            if threshold >= 0:
                passed = delta <= threshold
                bound = f"<= {_fmt_delta(threshold)}"
            else:
                passed = delta >= threshold
                bound = f">= {_fmt_delta(threshold)}"
            results.append(
                GateResult(
                    cell.label,
                    metric,
                    threshold,
                    passed,
                    f"{_fmt(base_value)} -> {_fmt(value)}, "
                    f"delta {_fmt_delta(delta)} (need {bound})",
                )
            )
    return results
