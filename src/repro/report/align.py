"""Loading recordings into a comparison and aligning them.

A :class:`Comparison` is N recordings viewed side by side: each becomes a
:class:`CellView` (label, headline metrics, checks, optional trace payload),
loaded either from explicit recording paths or from one sweep manifest
written by ``python -m repro sweep``.

Alignment: every run measures time in *simulated seconds from zero*, so runs
are directly comparable without clock skew — the "shared simulated-time grid"
is simply the union of the cells' sample instants.  :func:`align_series`
resamples each cell's timeline series onto that union grid as a step function
(a sample holds until the next one), which is exactly how the gauges behave
between samples.

Degradation contract (tested): recordings without a trace payload compare
fine (their series are just absent); a single recording renders its overview
without diffs; version mismatches fail in
:func:`~repro.scenario.load_recording` with the offending path; cells from
different scenarios compare, but the comparison carries a loud note.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..scenario import ScenarioSpecError, load_recording

__all__ = [
    "CellView",
    "Comparison",
    "align_series",
    "headline_metrics",
    "load_comparison",
]

#: Manifest documents are versioned independently of recordings.
MANIFEST_VERSION = 1
MANIFEST_KIND = "sweep"


@dataclass
class CellView:
    """One recording, digested for comparison."""

    label: str
    document: Dict[str, Any]
    #: ``axis -> value`` overrides when the cell came from a sweep manifest.
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: Flat headline metrics (see :func:`headline_metrics`).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def scenario_name(self) -> Optional[str]:
        return self.document.get("scenario", {}).get("scenario", {}).get("name")

    @property
    def seed(self) -> Optional[int]:
        return self.document.get("seed")

    @property
    def strategy(self) -> Optional[str]:
        return self.document.get("scenario", {}).get("cluster", {}).get("strategy")

    @property
    def checks(self) -> List[Dict[str, Any]]:
        return list(self.document.get("checks", []))

    @property
    def passed(self) -> bool:
        return all(check.get("passed") for check in self.checks)

    @property
    def trace(self) -> Optional[Dict[str, Any]]:
        return self.document.get("trace")


@dataclass
class Comparison:
    """N cells side by side, plus anything worth warning about."""

    cells: List[CellView]
    #: Loud-but-non-fatal observations (mismatched scenarios, missing traces).
    notes: List[str] = field(default_factory=list)
    #: The manifest path when the comparison was loaded from one.
    manifest: Optional[str] = None

    @property
    def labels(self) -> List[str]:
        return [cell.label for cell in self.cells]

    def metric_keys(self) -> List[str]:
        """The union of headline-metric keys, in first-seen cell order."""
        keys: List[str] = []
        for cell in self.cells:
            for key in cell.metrics:
                if key not in keys:
                    keys.append(key)
        return keys

    def series_names(self) -> List[str]:
        """The union of timeline-series names across traced cells, sorted."""
        names = set()
        for cell in self.cells:
            trace = cell.trace
            if trace is not None:
                names.update(series["name"] for series in trace.get("series", []))
        return sorted(names)


# ---------------------------------------------------------------------------
# headline metrics
# ---------------------------------------------------------------------------


def _phase_percentile(
    document: Dict[str, Any], ops: Sequence[str], phase: str, quantile: float
) -> Optional[float]:
    """A percentile over the given ops' recorded histograms for one phase."""
    from ..metrics.histogram import LatencyHistogram

    merged = LatencyHistogram()
    found = False
    histograms = document.get("snapshot", {}).get("histograms", {})
    for op in ops:
        snap = histograms.get(f"{op}[{phase}]")
        if snap is None:
            continue
        merged.merge(LatencyHistogram.from_snapshot((tuple(snap[0]), *snap[1:])))
        found = True
    if not found or not merged.count:
        return None
    return merged.percentile(quantile)


def headline_metrics(document: Dict[str, Any]) -> Dict[str, float]:
    """The flat metric dict a manifest/compare table shows per cell.

    Keys are stable strings; values are plain floats.  A metric whose
    population is absent from the recording (no writes in a phase, no
    rebalance, no autopilot) is *omitted*, not zeroed — comparison tables
    print ``-`` for it.
    """
    from ..metrics import PHASE_REBALANCE, PHASE_STEADY, WRITE_OPS

    metrics: Dict[str, float] = {}
    total_ops = document.get("total_ops", 0)
    simulated = document.get("simulated_seconds", 0.0)
    metrics["total_ops"] = float(total_ops)
    metrics["simulated_seconds"] = float(simulated)
    if simulated > 0:
        metrics["ops_per_sec"] = total_ops / simulated
    for phase in (PHASE_STEADY, PHASE_REBALANCE):
        for quantile, tag in ((0.50, "p50"), (0.99, "p99")):
            write = _phase_percentile(document, WRITE_OPS, phase, quantile)
            if write is not None:
                metrics[f"write_{tag}_ms[{phase}]"] = write * 1e3
            read = _phase_percentile(document, ("read",), phase, quantile)
            if read is not None:
                metrics[f"read_{tag}_ms[{phase}]"] = read * 1e3
    rebalances = document.get("rebalances", {})
    if rebalances:
        metrics["rebalance.count"] = float(rebalances.get("count", 0))
        metrics["rebalance.seconds"] = float(rebalances.get("simulated_seconds", 0.0))
        metrics["rebalance.records_moved"] = float(rebalances.get("records_moved", 0))
        metrics["rebalance.bytes_shipped"] = float(rebalances.get("bytes_shipped", 0))
        metrics["rebalance.buckets_moved"] = float(rebalances.get("buckets_moved", 0))
    counters = document.get("snapshot", {}).get("counters", {})
    if "autopilot.decision" in counters:
        metrics["autopilot.decisions"] = float(counters["autopilot.decision"])
    if "autopilot.rebalance.complete" in counters:
        metrics["autopilot.rebalances"] = float(counters["autopilot.rebalance.complete"])
    # Chaos runs surface the retry path so `compare --gate` can cap regressions
    # in miss/backoff counts; chaos-free recordings omit the keys entirely.
    if document.get("chaos") is not None:
        metrics["chaos.crashes"] = float(counters.get("chaos.crash", 0))
        metrics["retry.routing_miss"] = float(counters.get("retry.routing_miss", 0))
        metrics["retry.backoff"] = float(counters.get("retry.backoff", 0))
        if total_ops:
            metrics["routing_miss_rate"] = (
                float(counters.get("retry.routing_miss", 0)) / total_ops
            )
    checks = document.get("checks", [])
    if checks:
        metrics["checks.passed"] = float(sum(1 for c in checks if c.get("passed")))
        metrics["checks.total"] = float(len(checks))
    return metrics


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def _is_manifest(document: Any) -> bool:
    return isinstance(document, dict) and document.get("kind") == MANIFEST_KIND


def _load_manifest(path: Path) -> Dict[str, Any]:
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioSpecError(f"{path}: not a sweep manifest (invalid JSON: {exc})") from exc
    if not _is_manifest(document):
        raise ScenarioSpecError(
            f"{path}: not a sweep manifest (missing kind={MANIFEST_KIND!r}); "
            "manifests are written by `python -m repro sweep`"
        )
    version = document.get("version")
    if version != MANIFEST_VERSION:
        raise ScenarioSpecError(
            f"{path}: unsupported manifest version {version!r} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    if not document.get("cells"):
        raise ScenarioSpecError(f"{path}: the manifest lists no cells")
    return document


def load_comparison(sources: Sequence[Union[str, Path]]) -> Comparison:
    """Build a :class:`Comparison` from recording paths or one manifest.

    One source ending in ``.json`` whose document carries ``kind: "sweep"``
    is treated as a manifest: its cells load in manifest order, recording
    paths resolved relative to the manifest's directory.  Any other mix of
    sources is treated as explicit recordings, labelled by file stem
    (deduplicated with ``#2``, ``#3``, ... suffixes).
    """
    if not sources:
        raise ScenarioSpecError("compare: no recordings given")
    first = Path(sources[0])
    if len(sources) == 1 and first.suffix == ".json" and first.exists():
        try:
            probe = json.loads(first.read_text())
        except json.JSONDecodeError:
            probe = None
        # Only documents that *claim* to be manifests take the manifest path:
        # a broken manifest (bad version, no cells) must fail with the
        # manifest's error, not fall through to a confusing recording error.
        if _is_manifest(probe):
            return _comparison_from_manifest(first, _load_manifest(first))

    cells: List[CellView] = []
    seen: Dict[str, int] = {}
    for source in sources:
        path = Path(source)
        document = load_recording(path)
        label = path.stem.removesuffix(".recording")
        seen[label] = seen.get(label, 0) + 1
        if seen[label] > 1:
            label = f"{label}#{seen[label]}"
        cells.append(
            CellView(label=label, document=document, metrics=headline_metrics(document))
        )
    return _finish(Comparison(cells=cells))


def _comparison_from_manifest(path: Path, manifest: Dict[str, Any]) -> Comparison:
    cells: List[CellView] = []
    for entry in manifest["cells"]:
        recording = path.parent / entry["recording"]
        document = load_recording(recording)
        cells.append(
            CellView(
                label=entry["id"],
                document=document,
                overrides=dict(entry.get("overrides", {})),
                metrics=headline_metrics(document),
            )
        )
    return _finish(Comparison(cells=cells, manifest=str(path)))


def _finish(comparison: Comparison) -> Comparison:
    """Attach the degradation notes the render layers surface."""
    names = sorted({str(cell.scenario_name) for cell in comparison.cells})
    if len(names) > 1:
        comparison.notes.append(
            "cells come from different scenarios ("
            + ", ".join(names)
            + ") — absolute numbers are not like-for-like"
        )
    untraced = [cell.label for cell in comparison.cells if cell.trace is None]
    if untraced and len(untraced) < len(comparison.cells):
        comparison.notes.append(
            "no trace payload in: "
            + ", ".join(untraced)
            + " (timeline sparklines cover the traced cells only)"
        )
    if len(comparison.cells) == 1:
        comparison.notes.append(
            "single recording — nothing to diff against; showing its summary only"
        )
    return comparison


# ---------------------------------------------------------------------------
# time alignment
# ---------------------------------------------------------------------------


def align_series(
    comparison: Comparison, name: str
) -> Tuple[List[float], Dict[str, List[Optional[float]]]]:
    """One timeline series across cells, on the shared simulated-time grid.

    Returns ``(times, {label: values})`` where ``times`` is the sorted union
    of every cell's sample instants for ``name`` and each cell's values are
    step-function resampled onto it: the value at ``t`` is the cell's last
    sample at or before ``t``, or ``None`` before the cell's first sample or
    when the cell never recorded the series (missing trace, later-provisioned
    node).  Cells that never recorded the series are omitted from the dict.
    """
    per_cell: Dict[str, Tuple[List[float], List[float]]] = {}
    union: List[float] = []
    for cell in comparison.cells:
        trace = cell.trace
        if trace is None:
            continue
        for series in trace.get("series", []):
            if series["name"] == name:
                times = [float(t) for t in series["times"]]
                per_cell[cell.label] = (times, [float(v) for v in series["values"]])
                union.extend(times)
                break
    grid = sorted(set(union))
    aligned: Dict[str, List[Optional[float]]] = {}
    for label, (times, values) in per_cell.items():
        resampled: List[Optional[float]] = []
        cursor = -1
        for t in grid:
            while cursor + 1 < len(times) and times[cursor + 1] <= t:
                cursor += 1
            resampled.append(values[cursor] if cursor >= 0 else None)
        aligned[label] = resampled
    return grid, aligned
