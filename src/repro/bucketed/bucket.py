"""One bucket of a bucketed LSM-tree.

Section IV, storage Option 3: each bucket of the primary index is its own
LSM-tree (memory component + disk components), so moving or deleting a bucket
touches only that bucket's data.  Buckets are reference counted like
components are, so a bucket that has been dropped from the local directory is
reclaimed only after its last reader finishes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..common.config import LSMConfig
from ..common.errors import StorageError
from ..lsm.component import DiskComponent, ReferenceCounted, ReferenceDiskComponent
from ..lsm.entry import Entry
from ..lsm.merge_policy import MergePolicy
from ..lsm.tree import LSMTree
from ..hashing.bucket_id import BucketId


class Bucket(ReferenceCounted):
    """A bucket: an extendible-hash identity plus its own LSM-tree."""

    def __init__(
        self,
        bucket_id: BucketId,
        config: Optional[LSMConfig] = None,
        merge_policy: Optional[MergePolicy] = None,
        index_name: str = "primary",
    ) -> None:
        super().__init__()
        self.bucket_id = bucket_id
        self.index_name = index_name
        self.tree = LSMTree(
            name=f"{index_name}/bucket-{bucket_id.label}",
            config=config,
            merge_policy=merge_policy,
        )
        #: Set while a split or a rebalance snapshot temporarily blocks access.
        self._locked = False

    # ------------------------------------------------------------- identity

    @property
    def depth(self) -> int:
        return self.bucket_id.depth

    @property
    def hash_prefix(self) -> int:
        return self.bucket_id.prefix

    def owns_key(self, key: Any) -> bool:
        return self.bucket_id.contains_key(key)

    # ------------------------------------------------------------- locking

    @property
    def is_locked(self) -> bool:
        return self._locked

    def lock(self) -> None:
        """Block new readers and writers (Algorithm 1 line 6)."""
        if self._locked:
            raise StorageError(f"bucket {self.bucket_id} is already locked")
        self._locked = True

    def unlock(self) -> None:
        if not self._locked:
            raise StorageError(f"bucket {self.bucket_id} is not locked")
        self._locked = False

    def _check_access(self) -> None:
        if self._locked:
            raise StorageError(f"bucket {self.bucket_id} is locked by a split")
        if self.is_destroyed:
            raise StorageError(f"bucket {self.bucket_id} has been reclaimed")

    # ------------------------------------------------------------- data path

    def insert(self, key: Any, value: Any) -> Entry:
        self._check_access()
        if not self.owns_key(key):
            raise StorageError(f"key {key!r} does not belong to bucket {self.bucket_id}")
        return self.tree.insert(key, value)

    def delete(self, key: Any) -> Entry:
        self._check_access()
        if not self.owns_key(key):
            raise StorageError(f"key {key!r} does not belong to bucket {self.bucket_id}")
        return self.tree.delete(key)

    def apply_entry(self, entry: Entry) -> Entry:
        """Apply a replicated/recovered entry without the ownership check
        being fatal (the caller has already routed it)."""
        self._check_access()
        return self.tree.apply_entry(entry)

    def get(self, key: Any) -> Optional[Any]:
        self._check_access()
        return self.tree.get(key)

    def get_entry(self, key: Any) -> Optional[Entry]:
        self._check_access()
        return self.tree.get_entry(key)

    def scan(self, low: Any = None, high: Any = None) -> Iterator[Entry]:
        self._check_access()
        return self.tree.scan(low, high)

    # -------------------------------------------------------------- storage

    def flush(self) -> Optional[DiskComponent]:
        return self.tree.flush()

    def maybe_flush(self) -> Optional[DiskComponent]:
        return self.tree.maybe_flush()

    def maybe_merge(self) -> Optional[DiskComponent]:
        return self.tree.maybe_merge()

    @property
    def size_bytes(self) -> int:
        return self.tree.size_bytes

    @property
    def disk_components(self) -> List:
        return list(self.tree.disk_components)

    @property
    def component_count(self) -> int:
        return self.tree.component_count

    def entries(self) -> List[Entry]:
        """All live entries of the bucket (used by rebalance scans)."""
        return list(self.tree.scan())

    def snapshot_components(self) -> List:
        """The immutable disk components forming a rebalance snapshot.

        Callers must have flushed the memory component first (the rebalance
        initialization phase does); the returned components are retained so
        the snapshot stays valid even if the bucket is merged or dropped
        concurrently.
        """
        components = list(self.tree.disk_components)
        for component in components:
            component.retain()
        return components

    @staticmethod
    def release_snapshot(components: List) -> None:
        for component in components:
            component.release()

    def split_into(self) -> "tuple[Bucket, Bucket]":
        """Create the two child buckets whose components reference this one.

        This implements Algorithm 1 line 8 ("Create two buckets B1 and B2
        that refer to B"): each child receives a
        :class:`~repro.lsm.component.ReferenceDiskComponent` per parent disk
        component, filtered by the child's (deeper) prefix.  The caller is
        responsible for the surrounding protocol (flushes, locking, manifest
        force) — see :mod:`repro.bucketed.split`.
        """
        low_id, high_id = self.bucket_id.split()
        children = []
        for child_id in (low_id, high_id):
            child = Bucket(
                child_id,
                config=self.tree.config,
                merge_policy=self.tree.merge_policy,
                index_name=self.index_name,
            )
            for component in self.tree.disk_components:
                if isinstance(component, ReferenceDiskComponent):
                    # A re-split before any merge: reference the underlying
                    # real component directly with the deeper prefix.
                    reference = ReferenceDiskComponent(
                        component.target, child_id.prefix, child_id.depth
                    )
                else:
                    reference = ReferenceDiskComponent(
                        component, child_id.prefix, child_id.depth
                    )
                child.tree.disk_components.append(reference)
            children.append(child)
        return children[0], children[1]

    def _destroy(self) -> None:
        """Reclaim the bucket's storage when it is dropped and unreferenced.

        Deactivates every component of the bucket's LSM-tree; components that
        are still pinned (e.g. by an in-flight rebalance snapshot) survive
        until their own reference counts drop to zero.
        """
        super()._destroy()
        self.tree.memory.deactivate()
        for component in self.tree.disk_components:
            component.deactivate()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bucket({self.bucket_id.label}, bytes={self.size_bytes})"
