"""The bucketed LSM-tree — the paper's Section IV storage design.

* :class:`Bucket` — one extendible-hash bucket stored as its own LSM-tree.
* :class:`BucketedLSMTree` — a partition's primary index: a local directory of
  buckets with LSM semantics plus bucket-granular rebalance operations.
* :func:`split_bucket` / :class:`SplitResult` — Algorithm 1.
* :class:`ScanMode`, :func:`choose_scan_mode` — the unordered vs merge-sorted
  primary-key scan rule.
"""

from .bucket import Bucket
from .bucketed_lsm import BucketedLSMTree, MaintenanceReport
from .scan import (
    ScanMode,
    choose_scan_mode,
    estimate_merge_comparisons,
    ordered_scan,
    scan_with_mode,
    unordered_scan,
)
from .split import SplitResult, split_bucket

__all__ = [
    "Bucket",
    "BucketedLSMTree",
    "MaintenanceReport",
    "ScanMode",
    "SplitResult",
    "choose_scan_mode",
    "estimate_merge_comparisons",
    "ordered_scan",
    "scan_with_mode",
    "split_bucket",
    "unordered_scan",
]
