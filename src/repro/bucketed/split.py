"""Bucket splitting — Algorithm 1 of the paper.

The split must neither rewrite data (that would cause write amplification)
nor block reads and writes for long.  The protocol is::

    1. Pause scheduling merges for B; wait for running merges to finish.
    2. Asynchronously flush B's memory component (writers are not blocked).
    3. Lock B (blocks new readers/writers briefly).
    4. Synchronously flush B's memory component (persists stragglers).
    5. Create children B1, B2 whose disk components *reference* B's.
    6. Force the directory metadata file (the split becomes durable).
    7. Unlock; resume merges.

In the simulator merges are synchronous, so "wait for merges" is implicit;
the two flushes and the short lock window are modelled explicitly and their
sizes reported in :class:`SplitResult` so benchmarks can account the cost of
splits during ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..common.errors import StorageError
from ..lsm.manifest import Manifest
from .bucket import Bucket


@dataclass(frozen=True)
class SplitResult:
    """Outcome of one bucket split."""

    parent: Bucket
    low_child: Bucket
    high_child: Bucket
    #: Bytes flushed by the asynchronous (non-blocking) flush.
    async_flush_bytes: int
    #: Bytes flushed by the synchronous flush while the bucket was locked.
    sync_flush_bytes: int
    #: Number of parent disk components referenced (not copied) by each child.
    referenced_components: int

    @property
    def children(self) -> Tuple[Bucket, Bucket]:
        return (self.low_child, self.high_child)

    @property
    def blocked_write_bytes(self) -> int:
        """Bytes written while readers/writers were blocked — the cost the
        two-flush approach minimises (only the stragglers of step 4)."""
        return self.sync_flush_bytes


def split_bucket(bucket: Bucket, manifest: Optional[Manifest] = None) -> SplitResult:
    """Split ``bucket`` into two children following Algorithm 1.

    The returned children are *not* yet registered in any directory; the
    caller (:class:`repro.bucketed.bucketed_lsm.BucketedLSMTree`) swaps them
    in and retires the parent, mirroring how the real system updates its local
    directory and reclaims the parent bucket via reference counting.
    """
    if bucket.is_locked:
        raise StorageError(f"bucket {bucket.bucket_id} is already being split")
    if bucket.is_destroyed:
        raise StorageError(f"bucket {bucket.bucket_id} has been reclaimed")

    # Line 3-4: stop scheduling merges and wait for running ones to finish.
    bucket.tree.pause_merges()
    try:
        # Line 5: asynchronous flush — writers keep going; we model it as a
        # flush of whatever is currently in the memory component.
        async_component = bucket.tree.flush()
        async_flush_bytes = async_component.size_bytes if async_component else 0

        # Line 6: lock the bucket; new readers and writers now block.
        bucket.lock()
        try:
            # Line 7: synchronous flush persists writes that raced in after
            # the asynchronous flush (none in a single-threaded simulation,
            # but concurrent-ingest tests inject some between the two steps
            # via the pre_lock_hook below).
            sync_component = bucket.tree.flush()
            sync_flush_bytes = sync_component.size_bytes if sync_component else 0

            # Line 8: create the children referencing the parent's components.
            low_child, high_child = bucket.split_into()

            # Line 9: force the directory metadata file recording the split.
            if manifest is not None:
                manifest.remove_bucket(bucket.bucket_id.prefix, bucket.bucket_id.depth)
                for child in (low_child, high_child):
                    manifest.add_bucket(
                        child.bucket_id.prefix,
                        child.bucket_id.depth,
                        [c.component_id for c in child.tree.disk_components],
                    )
                manifest.force()
        finally:
            # Line 10: unlock.
            bucket.unlock()
    finally:
        # Line 11: resume scheduling merges (on the parent's tree object; the
        # children start with merges enabled).
        bucket.tree.resume_merges()

    return SplitResult(
        parent=bucket,
        low_child=low_child,
        high_child=high_child,
        async_flush_bytes=async_flush_bytes,
        sync_flush_bytes=sync_flush_bytes,
        referenced_components=len(bucket.tree.disk_components),
    )
