"""The bucketed LSM-tree (Section IV).

A bucketed LSM-tree is the primary-index storage structure of DynaHash: a
local directory of extendible-hash buckets, each of which is its own LSM-tree
(:class:`~repro.bucketed.bucket.Bucket`).  It offers the same interface as a
traditional LSM-tree — writes, point lookups, range scans — plus the
operations the rebalance protocol needs: bucket-granular snapshots, installs,
and removals, and dynamic bucket splits when a bucket grows past the
configured maximum size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..common.config import BucketingConfig, LSMConfig
from ..common.errors import BucketNotFoundError, StorageError
from ..common.hashutil import hash_key
from ..hashing.bucket_id import BucketId
from ..hashing.extendible import LocalDirectory
from ..lsm.entry import Entry
from ..lsm.manifest import Manifest
from ..lsm.merge_policy import MergePolicy
from ..lsm.stats import StorageStats
from .bucket import Bucket
from .scan import ScanMode, choose_scan_mode, scan_with_mode
from .split import SplitResult, split_bucket


@dataclass
class MaintenanceReport:
    """Work performed by one maintenance pass (flushes, merges, splits)."""

    flush_bytes: int = 0
    merge_read_bytes: int = 0
    merge_write_bytes: int = 0
    splits: List[SplitResult] = field(default_factory=list)

    @property
    def split_count(self) -> int:
        return len(self.splits)

    def merge_into(self, other: "MaintenanceReport") -> None:
        other.flush_bytes += self.flush_bytes
        other.merge_read_bytes += self.merge_read_bytes
        other.merge_write_bytes += self.merge_write_bytes
        other.splits.extend(self.splits)


class BucketedLSMTree:
    """A local directory of buckets, each stored as its own LSM-tree."""

    def __init__(
        self,
        name: str,
        partition_id: int,
        initial_buckets: Iterable[BucketId],
        lsm_config: Optional[LSMConfig] = None,
        bucketing_config: Optional[BucketingConfig] = None,
        merge_policy_factory: Optional[Callable[[], MergePolicy]] = None,
        allow_empty: bool = False,
    ) -> None:
        self.name = name
        self.partition_id = partition_id
        self.lsm_config = lsm_config or LSMConfig()
        self.bucketing_config = bucketing_config or BucketingConfig()
        self._merge_policy_factory = merge_policy_factory
        self.directory = LocalDirectory(partition_id)
        self.manifest = Manifest(name)
        self._buckets: Dict[BucketId, Bucket] = {}
        #: Splits are disabled for the duration of a rebalance (Section V-A).
        self.splits_enabled = not self.bucketing_config.static
        #: Cumulative record of all splits ever performed (for benchmarks).
        self.split_history: List[SplitResult] = []
        initial = list(initial_buckets)
        if not initial and not allow_empty:
            raise StorageError("a bucketed LSM-tree needs at least one initial bucket")
        for bucket_id in initial:
            self._create_bucket(bucket_id)
        self.manifest.force()

    # --------------------------------------------------------------- buckets

    def _make_policy(self) -> Optional[MergePolicy]:
        return self._merge_policy_factory() if self._merge_policy_factory else None

    def _create_bucket(self, bucket_id: BucketId) -> Bucket:
        bucket = Bucket(
            bucket_id,
            config=self.lsm_config,
            merge_policy=self._make_policy(),
            index_name=self.name,
        )
        self.directory.add_bucket(bucket_id)
        self._buckets[bucket_id] = bucket
        self.manifest.add_bucket(bucket_id.prefix, bucket_id.depth)
        return bucket

    @property
    def bucket_ids(self) -> List[BucketId]:
        return self.directory.buckets

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def bucket(self, bucket_id: BucketId) -> Bucket:
        try:
            return self._buckets[bucket_id]
        except KeyError:
            raise BucketNotFoundError(
                f"bucket {bucket_id} is not on partition {self.partition_id}"
            ) from None

    def buckets(self) -> List[Bucket]:
        return [self._buckets[bucket_id] for bucket_id in self.directory.buckets]

    def bucket_for_key(self, key: Any) -> Bucket:
        bucket_id = self.directory.bucket_for_hash(hash_key(key))
        return self._buckets[bucket_id]

    def owns_key(self, key: Any) -> bool:
        return self.directory.owns_key(key)

    def bucket_sizes(self) -> Dict[BucketId, int]:
        """Physical size per bucket — the input to the rebalance planner."""
        return {bucket_id: bucket.size_bytes for bucket_id, bucket in self._buckets.items()}

    # ------------------------------------------------------------ data path

    def insert(self, key: Any, value: Any) -> Entry:
        return self.insert_routed(key, value, hash_key(key))

    def insert_routed(self, key: Any, value: Any, hashed: int) -> Entry:
        """Insert with the key's hash already computed (the feed routes on the
        same hash).  Directory routing proves bucket ownership, so the
        bucket-level insert (which would re-hash the key twice more via
        ``owns_key``) is bypassed in favour of its access check + tree write.
        """
        bucket = self._buckets[self.directory.bucket_for_hash(hashed)]
        bucket._check_access()
        return bucket.tree.insert(key, value)

    upsert = insert

    def delete(self, key: Any) -> Entry:
        return self.bucket_for_key(key).delete(key)

    def apply_entry(self, entry: Entry) -> Entry:
        return self.bucket_for_key(entry.key).apply_entry(entry)

    def get(self, key: Any) -> Optional[Any]:
        """Point lookup: only the owning bucket is searched (Section IV)."""
        return self.bucket_for_key(key).get(key)

    def lookup(self, key: Any) -> Optional[Any]:
        """Point lookup that treats "bucket not local" as a miss.

        Collapses the partition hot path's ``owns_key`` + ``get`` pair (three
        key hashes) into a single hash and route: a stale-directory probe for
        a moved bucket simply returns ``None``, exactly as the partition-level
        lookup contract requires.
        """
        bucket_id = self.directory.try_bucket_for_hash(hash_key(key))
        if bucket_id is None:
            return None
        bucket = self._buckets[bucket_id]
        bucket._check_access()
        return bucket.tree.get(key)

    def get_entry(self, key: Any) -> Optional[Entry]:
        return self.bucket_for_key(key).get_entry(key)

    def __contains__(self, key: Any) -> bool:
        return self.get_entry(key) is not None and not self.get_entry(key).tombstone

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    def scan(
        self,
        low: Any = None,
        high: Any = None,
        ordered: bool = False,
        mode: Optional[ScanMode] = None,
    ) -> Iterator[Entry]:
        """Range scan over every bucket.

        ``ordered=False`` concatenates per-bucket scans (no extra overhead,
        unsorted output); ``ordered=True`` merge-sorts them (q18-style).  An
        explicit ``mode`` overrides the flag.
        """
        scan_mode = mode if mode is not None else choose_scan_mode(ordered)
        bucket_scans = [bucket.scan(low, high) for bucket in self.buckets()]
        return scan_with_mode(bucket_scans, scan_mode)

    # ----------------------------------------------------------- maintenance

    def flush_all(self) -> int:
        """Flush every bucket's memory component; returns bytes flushed."""
        total = 0
        for bucket in self.buckets():
            component = bucket.flush()
            if component is not None:
                total += component.size_bytes
        return total

    def maintain(self, force_flush: bool = False) -> MaintenanceReport:
        """Run one maintenance pass: flushes, merges, and (if enabled) splits.

        Called by the ingestion path after every batch of writes, mirroring
        AsterixDB's background flush/merge scheduler.
        """
        report = MaintenanceReport()
        for bucket_id in list(self.directory.buckets):
            bucket = self._buckets.get(bucket_id)
            if bucket is None:
                continue
            flushed = bucket.flush() if force_flush else bucket.maybe_flush()
            if flushed is not None:
                report.flush_bytes += flushed.size_bytes
            before = bucket.tree.stats.snapshot()
            merged = bucket.maybe_merge()
            if merged is not None:
                delta = bucket.tree.stats.diff(before)
                report.merge_read_bytes += delta.bytes_merged_read
                report.merge_write_bytes += delta.bytes_merged_written
            if self._should_split(bucket):
                result = self.split(bucket.bucket_id)
                report.splits.append(result)
        return report

    def _should_split(self, bucket: Bucket) -> bool:
        if not self.splits_enabled or self.bucketing_config.static:
            return False
        if bucket.depth >= 62:
            return False
        return bucket.size_bytes >= self.bucketing_config.max_bucket_bytes

    def disable_splits(self) -> None:
        """Disable splits for the duration of a rebalance (Section V-A)."""
        self.splits_enabled = False

    def enable_splits(self) -> None:
        if not self.bucketing_config.static:
            self.splits_enabled = True

    # ---------------------------------------------------------------- split

    def split(self, bucket_id: BucketId) -> SplitResult:
        """Split one bucket in place (Algorithm 1) and update the directory."""
        bucket = self.bucket(bucket_id)
        result = split_bucket(bucket, manifest=self.manifest)
        # Swap the children in for the parent in the local directory.
        self.directory.split_bucket(bucket_id)
        del self._buckets[bucket_id]
        self._buckets[result.low_child.bucket_id] = result.low_child
        self._buckets[result.high_child.bucket_id] = result.high_child
        bucket.deactivate()
        self.split_history.append(result)
        return result

    # ------------------------------------------------- rebalance operations

    def snapshot_bucket(self, bucket_id: BucketId) -> List:
        """Flush a bucket and return retained components forming its snapshot.

        This is the "immutable bucket snapshot" of Section V-A: the flush time
        is the rebalance start time for this bucket; everything in the
        returned components predates it, and later writes only live in the
        memory component / WAL (which the rebalance replicates separately).
        """
        bucket = self.bucket(bucket_id)
        bucket.flush()
        return bucket.snapshot_components()

    def install_bucket(self, bucket_id: BucketId, entries: Iterable[Entry]) -> Bucket:
        """Create a bucket from received rebalance data (destination side).

        The bucket is registered in the local directory immediately but the
        caller controls query visibility at the partition level (received
        buckets are tracked separately until the rebalance commits).
        Installing an already-present bucket is idempotent and returns the
        existing one.
        """
        if bucket_id in self._buckets:
            return self._buckets[bucket_id]
        bucket = Bucket(
            bucket_id,
            config=self.lsm_config,
            merge_policy=self._make_policy(),
            index_name=self.name,
        )
        entry_list = list(entries)
        if entry_list:
            bucket.tree.add_loaded_component(entry_list)
        self.directory.add_bucket(bucket_id)
        self._buckets[bucket_id] = bucket
        self.manifest.add_bucket(bucket_id.prefix, bucket_id.depth)
        return bucket

    def adopt_bucket(self, bucket: Bucket) -> None:
        """Register an externally constructed bucket object (receive path)."""
        if bucket.bucket_id in self._buckets:
            return
        self.directory.add_bucket(bucket.bucket_id)
        self._buckets[bucket.bucket_id] = bucket
        self.manifest.add_bucket(bucket.bucket_id.prefix, bucket.bucket_id.depth)

    def remove_bucket(self, bucket_id: BucketId) -> None:
        """Drop a bucket that has moved away (source-side commit task).

        Removing an absent bucket is a no-op so the operation is idempotent
        (Section V-D).  The bucket's components are reclaimed once their last
        reader releases them.
        """
        bucket = self._buckets.pop(bucket_id, None)
        self.directory.remove_bucket(bucket_id)
        self.manifest.remove_bucket(bucket_id.prefix, bucket_id.depth)
        if bucket is not None:
            bucket.deactivate()

    def force_manifest(self) -> None:
        self.manifest.force()

    # ---------------------------------------------------------------- sizing

    @property
    def size_bytes(self) -> int:
        return sum(bucket.size_bytes for bucket in self._buckets.values())

    @property
    def component_count(self) -> int:
        return sum(bucket.component_count for bucket in self._buckets.values())

    def aggregated_stats(self) -> StorageStats:
        """Sum of per-bucket storage stats (for the cluster cost model)."""
        total = StorageStats()
        for bucket in self._buckets.values():
            total.add(bucket.tree.stats)
        return total

    def components_opened_total(self) -> int:
        """Sum of ``components_opened`` across buckets — the one stat the
        point-lookup cost charge needs, without materialising a full
        :class:`StorageStats` aggregate per probe."""
        return sum(bucket.tree.stats.components_opened for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BucketedLSMTree(name={self.name!r}, partition={self.partition_id}, "
            f"buckets={self.bucket_count}, bytes={self.size_bytes})"
        )
