"""Range-scan modes for the bucketed LSM-tree.

With hash bucketing, records in different buckets are not in a global primary
key order.  Section IV describes two ways to serve a primary-key range scan:

* **Unordered (per-bucket)**: scan each bucket separately and concatenate the
  results.  No extra overhead versus a traditional LSM-tree, but the output is
  not globally sorted on the primary key.
* **Ordered (merge-sorted)**: merge the per-bucket streams with a priority
  queue, restoring global key order at the cost of the extra merge-sort step.

AsterixDB's optimizer picks the unordered mode unless a downstream operator
(an ORDER BY, or a GROUP BY on a prefix of the primary key, as in TPC-H q18)
needs key order; :func:`choose_scan_mode` encodes that rule so the query
planner, the benchmarks and the ablation study all share it.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from ..lsm.entry import Entry


class ScanMode(Enum):
    """How a bucketed primary-index scan orders its output."""

    UNORDERED = "unordered"
    ORDERED = "ordered"


def choose_scan_mode(requires_primary_key_order: bool) -> ScanMode:
    """AsterixDB's optimization rule for bucketed primary-index scans."""
    return ScanMode.ORDERED if requires_primary_key_order else ScanMode.UNORDERED


def _sort_key(key: Any) -> Tuple:
    if isinstance(key, tuple):
        return key
    return (key,)


def unordered_scan(bucket_scans: Sequence[Iterable[Entry]]) -> Iterator[Entry]:
    """Concatenate per-bucket scans; no cross-bucket ordering guarantee."""
    for scan in bucket_scans:
        for entry in scan:
            yield entry


def ordered_scan(bucket_scans: Sequence[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge-sort per-bucket scans into global primary-key order.

    Unlike :func:`repro.lsm.iterators.merge_scan`, no reconciliation is needed
    here: a key lives in exactly one bucket, so the streams are disjoint.  The
    cost is the priority-queue comparisons, which is exactly the overhead the
    paper observes on q18.
    """
    heap: List[Tuple[Tuple, int, int, Entry]] = []
    iterators = [iter(scan) for scan in bucket_scans]
    counter = 0
    for index, iterator in enumerate(iterators):
        for entry in iterator:
            heapq.heappush(heap, (_sort_key(entry.key), index, counter, entry))
            counter += 1
            break
    while heap:
        _, index, _, entry = heapq.heappop(heap)
        for next_entry in iterators[index]:
            heapq.heappush(heap, (_sort_key(next_entry.key), index, counter, next_entry))
            counter += 1
            break
        yield entry


def scan_with_mode(bucket_scans: Sequence[Iterable[Entry]], mode: ScanMode) -> Iterator[Entry]:
    """Dispatch to the requested scan mode."""
    if mode is ScanMode.ORDERED:
        return ordered_scan(bucket_scans)
    return unordered_scan(bucket_scans)


def estimate_merge_comparisons(bucket_count: int, total_records: int) -> int:
    """Rough comparison count of the ordered scan: N * log2(buckets).

    Used by the cost model to charge the q18-style merge-sort overhead
    proportionally to the number of buckets per partition — which is why
    StaticHash (16 buckets/partition at 4 nodes) pays more than DynaHash
    (4 buckets/partition) in Figure 8a.
    """
    if bucket_count <= 1 or total_records <= 0:
        return 0
    log_buckets = max(1, (bucket_count - 1).bit_length())
    return total_records * log_buckets
