"""``repro.sim`` — the deterministic discrete-event concurrency core.

Until this package existed, every feed, workload phase, rebalance, and
autopilot evaluation ran to completion back-to-back on the
:class:`~repro.common.clock.SimulatedClock`; overlap was only approximated
by callbacks.  The scheduler here makes overlap real: actors are plain
Python generators that ``yield`` simulated durations, and the scheduler
interleaves them on one shared clock in strict ``(timestamp, seq)`` order.

See ``docs/CONCURRENCY.md`` for the actor model, the yield protocol, the
determinism-by-stream-partitioning contract, and the legacy-vs-interleaved
mode matrix.
"""

from .scheduler import (
    Actor,
    EventScheduler,
    SimSchedulerError,
    SimSegment,
    stream_rng,
)

__all__ = [
    "Actor",
    "EventScheduler",
    "SimSchedulerError",
    "SimSegment",
    "stream_rng",
]
