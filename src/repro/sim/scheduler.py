"""The discrete-event scheduler: a binary heap of ``(timestamp, seq, entry)``.

Actors are generators.  Each ``yield`` hands a simulated duration back to the
scheduler ("I just did work that takes this long"); the scheduler parks the
actor and wakes it again once the shared :class:`~repro.common.clock
.SimulatedClock` reaches that point.  Between two wakes of one actor, every
other runnable actor gets the clock — which is exactly how a rebalance's
bucket moves and a workload driver's foreground reads end up interleaved on
one timeline.

Determinism
-----------
Three properties make a run bit-replayable:

* **Tiebreak by construction.**  Every heap entry is ``(timestamp, seq,
  entry)`` where ``seq`` is a monotone counter assigned at scheduling time.
  Two events due at the same instant therefore dispatch in scheduling order,
  never in object-identity or insertion-luck order (the ``det-heap-tiebreak``
  lint rule enforces the same pattern repo-wide).
* **One clock, forward only.**  Dispatch advances the shared clock to the
  entry's due time with ``advance_to`` — a no-op when inline work (op
  latencies charged through the metrics registry) already pushed the clock
  past it.  Observed dispatch times are monotone non-decreasing.
* **Partitioned RNG streams.**  An actor that needs randomness derives its
  own ``random.Random`` via :func:`stream_rng` (the ``"chaos:<seed>"``
  pattern from the chaos engine), so interleaving changes *when* an actor
  runs but never *which* draws it makes.

The yield protocol
------------------
An actor may yield:

* a non-negative ``int``/``float`` — simulated seconds of work just done
  (``0.0`` is a pure cooperative yield: re-enqueue at the current instant);
* any object with a ``seconds`` attribute (e.g. :class:`SimSegment`) — the
  labelled form the rebalance protocol uses so composing actors can see
  *what kind* of work each slice was.

The generator's ``return`` value becomes ``actor.result``.  An exception
raised by an actor propagates out of :meth:`EventScheduler.run` immediately
(mirroring the run-to-completion engine, where the first failure aborts the
run); the scheduler must not be reused after that.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..common.clock import SimulatedClock

__all__ = ["Actor", "EventScheduler", "SimSchedulerError", "SimSegment", "stream_rng"]


class SimSchedulerError(RuntimeError):
    """An actor violated the yield protocol (negative or non-numeric delay)."""


def stream_rng(stream: str, seed: int) -> random.Random:
    """A named, seeded RNG stream (``random.Random(f"{stream}:{seed}")``).

    This is the chaos engine's ``"chaos:<seed>"`` pattern generalised: each
    actor draws from its own stream, so scheduling order can never reorder
    another actor's draws.  Streams with the same name and seed are
    bit-identical across processes (string seeding is not hash-salted).
    """
    return random.Random(f"{stream}:{seed}")


@dataclass(frozen=True)
class SimSegment:
    """One labelled slice of simulated work yielded by a protocol generator.

    ``kind`` names the protocol step (``"initialization"``, ``"move"``,
    ``"concurrent_writes"``, ``"finalization"``, ...); ``remaining`` counts
    how many more segments of the same kind the generator will yield, which
    lets a composing actor pace its own work across the window (the
    interleaved workload driver spreads foreground ops evenly over the
    ``remaining`` bucket moves).
    """

    kind: str
    seconds: float
    remaining: int = 0


class Actor:
    """One spawned generator: its name, liveness, and eventual result."""

    __slots__ = ("name", "gen", "finished", "result")

    def __init__(self, name: str, gen: Generator[Any, None, Any]) -> None:
        self.name = name
        self.gen = gen
        self.finished = False
        self.result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"Actor({self.name!r}, {state})"


class EventScheduler:
    """Dispatches heap-ordered events onto one shared simulated clock."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        #: The shared clock.  Passing the session's metrics clock makes the
        #: scheduler and the registry's inline latency charges one timeline.
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: List[Tuple[float, int, Any]] = []
        self._seq = 0
        #: Every dispatch as ``(due_timestamp, seq, label)``, in dispatch
        #: order — the property tests pin monotonicity and seq-order ties on
        #: this, and byte-identical logs across PYTHONHASHSEED reruns.
        self.dispatch_log: List[Tuple[float, int, str]] = []

    # ------------------------------------------------------------- scheduling

    @property
    def pending(self) -> int:
        """Number of events still waiting in the heap."""
        return len(self._heap)

    def _push(self, timestamp: float, payload: Any) -> int:
        seq = self._seq
        self._seq += 1
        # The seq tiebreak guarantees payloads are never compared.
        heapq.heappush(self._heap, (float(timestamp), seq, payload))
        return seq

    def call_at(self, timestamp: float, callback: Callable[[], Any], label: str = "call") -> int:
        """Schedule a plain callback at an absolute simulated time."""
        if timestamp < self.clock.now:
            raise SimSchedulerError(
                f"cannot schedule {label!r} at {timestamp!r}, before now={self.clock.now!r}"
            )
        return self._push(timestamp, (label, callback))

    def call_later(self, delay: float, callback: Callable[[], Any], label: str = "call") -> int:
        """Schedule a plain callback ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimSchedulerError(f"cannot schedule {label!r} with negative delay {delay!r}")
        return self._push(self.clock.now + delay, (label, callback))

    def spawn(self, name: str, gen: Generator[Any, None, Any]) -> Actor:
        """Register a generator actor; its first step runs at the current time."""
        actor = Actor(name, gen)
        self._push(self.clock.now, actor)
        return actor

    # --------------------------------------------------------------- dispatch

    @staticmethod
    def _delay_of(yielded: Any) -> float:
        """Normalise a yielded value to a non-negative duration in seconds."""
        if yielded is None:
            return 0.0
        seconds = getattr(yielded, "seconds", yielded)
        if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
            raise SimSchedulerError(
                f"actors must yield durations (or objects with .seconds), got {yielded!r}"
            )
        if seconds < 0:
            raise SimSchedulerError(f"actors cannot yield negative durations ({seconds!r})")
        return float(seconds)

    def step(self) -> bool:
        """Dispatch the single next event; False when the heap is empty."""
        if not self._heap:
            return False
        timestamp, seq, payload = heapq.heappop(self._heap)
        # No-op when inline work already pushed the clock past the due time —
        # that slack *is* the overlap between actors.
        self.clock.advance_to(timestamp)
        if isinstance(payload, Actor):
            actor = payload
            self.dispatch_log.append((timestamp, seq, actor.name))
            try:
                yielded = next(actor.gen)
            except StopIteration as done:
                actor.finished = True
                actor.result = done.value
                return True
            self._push(self.clock.now + self._delay_of(yielded), actor)
            return True
        label, callback = payload
        self.dispatch_log.append((timestamp, seq, label))
        callback()
        return True

    def run(self) -> None:
        """Dispatch until the heap drains (all actors finished)."""
        while self.step():
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventScheduler(now={self.clock.now:.6f}, pending={self.pending}, "
            f"dispatched={len(self.dispatch_log)})"
        )
