"""Declarative scenario specs: frozen dataclasses a TOML/JSON file validates into.

A *scenario* is everything one experiment needs, declared in one document:
the cluster to build, the datasets to create (or the TPC-H subset to load),
the phased workload to drive, the autopilot policy to attach, the explicit
steps to run afterwards (rebalances — possibly fault-injected — recovery,
queries), and the checks the run must satisfy.  The
:mod:`~repro.scenario.runner` compiles a validated :class:`ScenarioSpec` onto
the existing :class:`~repro.api.Database` / :class:`~repro.api.WorkloadDriver`
/ :class:`~repro.api.Autopilot` APIs, so a spec file is exactly as powerful —
and exactly as deterministic — as the Python it replaces.

Validation philosophy
---------------------
Specs are parsed *strictly*: unknown sections and unknown keys are errors
(catching typos like ``initial_recrods``), every error names the section path
it occurred in (``workload.phases[2]``), and cross-field conflicts that could
silently produce a meaningless run (a phase-scheduled rebalance fighting an
autopilot, a dry-run autopilot expected to rebalance) are rejected with
messages that say what to change.  Byte-sized fields accept either integers
or human-readable strings (``"32 KiB"``, ``"10 GiB"``).

The canonical mapping form (:meth:`ScenarioSpec.to_mapping`) round-trips:
``ScenarioSpec.from_mapping(spec.to_mapping()) == spec``; recordings embed it
so :mod:`repro.cli`'s ``replay`` can re-run a scenario without the original
file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..chaos import CrashPlan, LoadWindow, PartitionWindow, RetryPolicy, StragglerWindow

from ..common.config import BucketingConfig, ClusterConfig, CostModelConfig, LSMConfig
from ..common.errors import ConfigError
from ..common.units import GIB, KIB, MIB

__all__ = [
    "AutopilotSection",
    "ChaosSection",
    "ChecksSection",
    "ClusterSection",
    "DatasetSection",
    "QueryStep",
    "RebalanceStep",
    "RecoverStep",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SecondaryIndexSection",
    "SweepSection",
    "TPCHSection",
    "TraceSection",
    "WorkloadPhaseSpec",
    "WorkloadSection",
    "parse_bytes",
]


class ScenarioSpecError(ConfigError):
    """A scenario document failed validation; the message names the section."""


# ---------------------------------------------------------------------------
# parsing helpers
# ---------------------------------------------------------------------------

_BYTE_UNITS = {
    "B": 1,
    "KB": 1000,
    "MB": 1000**2,
    "GB": 1000**3,
    "KIB": KIB,
    "MIB": MIB,
    "GIB": GIB,
}


def parse_bytes(value: Any, where: str = "value") -> int:
    """An integer byte count, or a string like ``"32 KiB"`` / ``"10 GiB"``."""
    if isinstance(value, bool):
        raise ScenarioSpecError(f"{where}: expected a byte size, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        text = value.strip()
        for unit in sorted(_BYTE_UNITS, key=len, reverse=True):
            if text.upper().endswith(unit):
                number = text[: len(text) - len(unit)].strip()
                try:
                    return int(float(number) * _BYTE_UNITS[unit])
                except ValueError:
                    break
        try:
            return int(text)
        except ValueError:
            pass
    raise ScenarioSpecError(
        f"{where}: expected a byte size (int or a string like \"32 KiB\"), got {value!r}"
    )


def _require_mapping(value: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioSpecError(f"{where}: expected a table, got {type(value).__name__}")
    return value


def _check_keys(
    mapping: Mapping[str, Any],
    where: str,
    allowed: Sequence[str],
    required: Sequence[str] = (),
) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ScenarioSpecError(
            f"{where}: unknown key(s) {unknown}; allowed keys: {sorted(allowed)}"
        )
    missing = sorted(set(required) - set(mapping))
    if missing:
        raise ScenarioSpecError(f"{where}: missing required key(s) {missing}")


def _get_typed(
    mapping: Mapping[str, Any],
    key: str,
    types: "type | Tuple[type, ...]",
    where: str,
    default: Any = None,
) -> Any:
    if key not in mapping:
        return default
    value = mapping[key]
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ScenarioSpecError(
            f"{where}.{key}: expected {_type_names(types)}, got a boolean"
        )
    if not isinstance(value, types):
        raise ScenarioSpecError(
            f"{where}.{key}: expected {_type_names(types)}, got {type(value).__name__}"
        )
    return value


def _type_names(types: "type | Tuple[type, ...]") -> str:
    if isinstance(types, tuple):
        return " or ".join(t.__name__ for t in types)
    return types.__name__


def _string_tuple(value: Any, where: str) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, Sequence) and all(isinstance(item, str) for item in value):
        return tuple(value)
    raise ScenarioSpecError(f"{where}: expected a string or a list of strings")


def _drop_defaults(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical form: keys whose value is None or empty are omitted."""
    return {
        key: value
        for key, value in mapping.items()
        if value is not None and value != {} and value != [] and value != ()
    }


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterSection:
    """``[cluster]``: the :class:`~repro.api.ClusterConfig` to build."""

    nodes: int = 4
    partitions_per_node: int = 2
    seed: Optional[int] = None
    strategy: str = "dynahash"
    strategy_options: Mapping[str, Any] = field(default_factory=dict)
    workload_scale: float = 1.0
    lsm: Mapping[str, Any] = field(default_factory=dict)
    bucketing: Mapping[str, Any] = field(default_factory=dict)
    cost: Mapping[str, Any] = field(default_factory=dict)

    _KEYS = (
        "nodes",
        "partitions_per_node",
        "seed",
        "strategy",
        "strategy_options",
        "workload_scale",
        "lsm",
        "bucketing",
        "cost",
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "cluster") -> "ClusterSection":
        _check_keys(mapping, where, cls._KEYS)
        section = cls(
            nodes=_get_typed(mapping, "nodes", int, where, 4),
            partitions_per_node=_get_typed(mapping, "partitions_per_node", int, where, 2),
            seed=_get_typed(mapping, "seed", int, where),
            strategy=_get_typed(mapping, "strategy", str, where, "dynahash"),
            strategy_options=dict(
                _require_mapping(mapping.get("strategy_options", {}), f"{where}.strategy_options")
            ),
            workload_scale=float(
                _get_typed(mapping, "workload_scale", (int, float), where, 1.0)
            ),
            lsm=dict(_require_mapping(mapping.get("lsm", {}), f"{where}.lsm")),
            bucketing=dict(_require_mapping(mapping.get("bucketing", {}), f"{where}.bucketing")),
            cost=dict(_require_mapping(mapping.get("cost", {}), f"{where}.cost")),
        )
        section.build_config()  # validate eagerly so errors carry the section path
        return section

    def build_config(self, seed_override: Optional[int] = None) -> ClusterConfig:
        """Compile this section into a :class:`~repro.api.ClusterConfig`."""
        from ..api.registry import available_strategies, strategy_by_name

        try:  # resolves aliases and validates the factory options at spec time
            strategy_by_name(self.strategy, **dict(self.strategy_options))
        except (ConfigError, TypeError) as exc:
            raise ScenarioSpecError(
                f"cluster.strategy: cannot build strategy {self.strategy!r} "
                f"with options {dict(self.strategy_options)!r}: {exc} "
                f"(registered strategies: {', '.join(available_strategies())})"
            ) from exc
        try:
            lsm = LSMConfig(**self._bytes_aware("cluster.lsm", LSMConfig, self.lsm))
            bucketing = BucketingConfig(
                **self._bytes_aware("cluster.bucketing", BucketingConfig, self.bucketing)
            )
            cost = CostModelConfig(
                **self._bytes_aware("cluster.cost", CostModelConfig, self.cost)
            )
            seed = seed_override if seed_override is not None else self.seed
            kwargs: Dict[str, Any] = {}
            if seed is not None:
                kwargs["seed"] = seed
            return ClusterConfig(
                num_nodes=self.nodes,
                partitions_per_node=self.partitions_per_node,
                lsm=lsm,
                bucketing=bucketing,
                cost=cost,
                strategy=self.strategy,
                **kwargs,
            )
        except ScenarioSpecError:
            raise
        except (ConfigError, TypeError) as exc:
            raise ScenarioSpecError(f"cluster: {exc}") from exc

    @staticmethod
    def _bytes_aware(where: str, config_cls: type, mapping: Mapping[str, Any]) -> Dict[str, Any]:
        fields_allowed = tuple(config_cls.__dataclass_fields__)
        _check_keys(mapping, where, fields_allowed)
        resolved: Dict[str, Any] = {}
        for key, value in mapping.items():
            if key.endswith("_bytes") or key.endswith("_bytes_per_sec"):
                resolved[key] = parse_bytes(value, f"{where}.{key}")
            else:
                resolved[key] = value
        return resolved

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "nodes": self.nodes,
                "partitions_per_node": self.partitions_per_node,
                "seed": self.seed,
                "strategy": self.strategy,
                "strategy_options": dict(self.strategy_options),
                "workload_scale": self.workload_scale if self.workload_scale != 1.0 else None,
                "lsm": dict(self.lsm),
                "bucketing": dict(self.bucketing),
                "cost": dict(self.cost),
            }
        )


@dataclass(frozen=True)
class SecondaryIndexSection:
    """One entry of ``[[datasets.secondary_indexes]]``."""

    name: str
    fields: Tuple[str, ...]
    included_fields: Tuple[str, ...] = ()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "SecondaryIndexSection":
        _check_keys(mapping, where, ("name", "fields", "included_fields"), ("name", "fields"))
        return cls(
            name=_get_typed(mapping, "name", str, where),
            fields=_string_tuple(mapping["fields"], f"{where}.fields"),
            included_fields=_string_tuple(
                mapping.get("included_fields", ()), f"{where}.included_fields"
            ),
        )

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "name": self.name,
                "fields": list(self.fields),
                "included_fields": list(self.included_fields),
            }
        )


@dataclass(frozen=True)
class DatasetSection:
    """``[[datasets]]``: a dataset created before traffic starts."""

    name: str
    primary_key: Tuple[str, ...] = ("k",)
    secondary_indexes: Tuple[SecondaryIndexSection, ...] = ()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "DatasetSection":
        _check_keys(mapping, where, ("name", "primary_key", "secondary_indexes"), ("name",))
        indexes = mapping.get("secondary_indexes", [])
        if not isinstance(indexes, Sequence) or isinstance(indexes, str):
            raise ScenarioSpecError(f"{where}.secondary_indexes: expected an array of tables")
        return cls(
            name=_get_typed(mapping, "name", str, where),
            primary_key=_string_tuple(mapping.get("primary_key", "k"), f"{where}.primary_key"),
            secondary_indexes=tuple(
                SecondaryIndexSection.from_mapping(
                    _require_mapping(index, f"{where}.secondary_indexes[{position}]"),
                    f"{where}.secondary_indexes[{position}]",
                )
                for position, index in enumerate(indexes)
            ),
        )

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "name": self.name,
                "primary_key": list(self.primary_key)
                if len(self.primary_key) > 1
                else self.primary_key[0],
                "secondary_indexes": [index.to_mapping() for index in self.secondary_indexes],
            }
        )


@dataclass(frozen=True)
class TPCHSection:
    """``[tpch]``: load the paper's TPC-H subset before traffic starts."""

    scale_factor: float = 0.001
    tables: Tuple[str, ...] = ()
    batch_size: int = 2000

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "tpch") -> "TPCHSection":
        _check_keys(mapping, where, ("scale_factor", "tables", "batch_size"))
        scale_factor = float(_get_typed(mapping, "scale_factor", (int, float), where, 0.001))
        if scale_factor <= 0:
            raise ScenarioSpecError(f"{where}.scale_factor: must be positive")
        return cls(
            scale_factor=scale_factor,
            tables=_string_tuple(mapping.get("tables", ()), f"{where}.tables"),
            batch_size=_get_typed(mapping, "batch_size", int, where, 2000),
        )

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "scale_factor": self.scale_factor,
                "tables": list(self.tables),
                "batch_size": self.batch_size if self.batch_size != 2000 else None,
            }
        )


def _mix_from_value(value: Any, where: str) -> Union[str, Mapping[str, Any], None]:
    """A mix is a YCSB preset name or an inline weight table; validated here."""
    if value is None:
        return None
    if isinstance(value, str):
        from ..workload.mixes import YCSB_MIXES

        if value.upper() not in YCSB_MIXES:
            raise ScenarioSpecError(
                f"{where}: unknown operation mix {value!r}; "
                f"YCSB presets: {', '.join(sorted(YCSB_MIXES))}, "
                "or give an inline table like {read = 0.3, insert = 0.7}"
            )
        return value
    mapping = _require_mapping(value, where)
    _check_keys(mapping, where, ("name", "read", "insert", "update", "delete", "scan"))
    weights = {k: v for k, v in mapping.items() if k != "name"}
    if not weights:
        raise ScenarioSpecError(f"{where}: an inline mix needs at least one weight")
    for key, weight in weights.items():
        if isinstance(weight, bool) or not isinstance(weight, (int, float)) or weight < 0:
            raise ScenarioSpecError(f"{where}.{key}: weights must be non-negative numbers")
    return dict(mapping)


def _build_mix(value: Union[str, Mapping[str, Any], None]) -> Any:
    from ..workload.mixes import OperationMix

    if value is None or isinstance(value, str):
        return value
    return OperationMix(**value)


@dataclass(frozen=True)
class WorkloadPhaseSpec:
    """``[[workload.phases]]``: one leg of the phased schedule."""

    name: str
    ops: int
    mix: Union[str, Mapping[str, Any], None] = None
    keys: Optional[str] = None
    rebalance: Optional[Mapping[str, int]] = None
    max_seconds: Optional[float] = None

    _KEYS = ("name", "ops", "mix", "keys", "rebalance", "max_seconds")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "WorkloadPhaseSpec":
        _check_keys(mapping, where, cls._KEYS, ("name", "ops"))
        keys = _get_typed(mapping, "keys", str, where)
        if keys is not None:
            _validate_distribution(keys, f"{where}.keys")
        rebalance = mapping.get("rebalance")
        if rebalance is not None:
            rebalance = dict(_require_mapping(rebalance, f"{where}.rebalance"))
            _check_keys(rebalance, f"{where}.rebalance", ("add", "remove", "target_nodes"))
            if len(rebalance) != 1:
                raise ScenarioSpecError(
                    f"{where}.rebalance: give exactly one of add/remove/target_nodes"
                )
        max_seconds = _get_typed(mapping, "max_seconds", (int, float), where)
        return cls(
            name=_get_typed(mapping, "name", str, where),
            ops=_get_typed(mapping, "ops", int, where),
            mix=_mix_from_value(mapping.get("mix"), f"{where}.mix"),
            keys=keys,
            rebalance=rebalance,
            max_seconds=float(max_seconds) if max_seconds is not None else None,
        )

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "name": self.name,
                "ops": self.ops,
                "mix": dict(self.mix) if isinstance(self.mix, Mapping) else self.mix,
                "keys": self.keys,
                "rebalance": dict(self.rebalance) if self.rebalance else None,
                "max_seconds": self.max_seconds,
            }
        )


def _validate_distribution(name: str, where: str) -> None:
    from ..workload.keygen import DISTRIBUTIONS

    if name.lower() not in DISTRIBUTIONS:
        raise ScenarioSpecError(
            f"{where}: unknown key distribution {name!r}; "
            f"choose from {', '.join(sorted(DISTRIBUTIONS))}"
        )


@dataclass(frozen=True)
class WorkloadSection:
    """``[workload]``: the phased YCSB-style traffic to drive."""

    dataset: str = "traffic"
    primary_key: str = "k"
    initial_records: int = 1000
    payload_bytes: int = 64
    mix: Union[str, Mapping[str, Any]] = "B"
    keys: str = "zipfian"
    phases: Tuple[WorkloadPhaseSpec, ...] = ()
    default_ops: int = 1000
    batch_size: int = 32
    batch_jitter: float = 0.25
    scan_span: int = 16
    batch_ops: Optional[bool] = None
    op_chunk: int = 256

    _KEYS = (
        "dataset",
        "primary_key",
        "initial_records",
        "payload_bytes",
        "mix",
        "keys",
        "phases",
        "default_ops",
        "batch_size",
        "batch_jitter",
        "scan_span",
        "batch_ops",
        "op_chunk",
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "workload") -> "WorkloadSection":
        _check_keys(mapping, where, cls._KEYS)
        phases_raw = mapping.get("phases", [])
        if not isinstance(phases_raw, Sequence) or isinstance(phases_raw, str):
            raise ScenarioSpecError(f"{where}.phases: expected an array of tables")
        phases = tuple(
            WorkloadPhaseSpec.from_mapping(
                _require_mapping(phase, f"{where}.phases[{position}]"),
                f"{where}.phases[{position}]",
            )
            for position, phase in enumerate(phases_raw)
        )
        _validate_phase_ordering(phases, where)
        keys = _get_typed(mapping, "keys", str, where, "zipfian")
        _validate_distribution(keys, f"{where}.keys")
        section = cls(
            dataset=_get_typed(mapping, "dataset", str, where, "traffic"),
            primary_key=_get_typed(mapping, "primary_key", str, where, "k"),
            initial_records=_get_typed(mapping, "initial_records", int, where, 1000),
            payload_bytes=parse_bytes(mapping.get("payload_bytes", 64), f"{where}.payload_bytes"),
            mix=_mix_from_value(mapping.get("mix", "B"), f"{where}.mix"),
            keys=keys,
            phases=phases,
            default_ops=_get_typed(mapping, "default_ops", int, where, 1000),
            batch_size=_get_typed(mapping, "batch_size", int, where, 32),
            batch_jitter=float(_get_typed(mapping, "batch_jitter", (int, float), where, 0.25)),
            scan_span=_get_typed(mapping, "scan_span", int, where, 16),
            batch_ops=_get_typed(mapping, "batch_ops", bool, where),
            op_chunk=_get_typed(mapping, "op_chunk", int, where, 256),
        )
        section.build_spec()  # validate the numeric ranges eagerly
        return section

    def build_spec(self) -> Any:
        """Compile into a :class:`~repro.api.WorkloadSpec` (with schedule)."""
        from ..workload.driver import WorkloadSpec
        from ..workload.schedule import Phase, Schedule

        try:
            schedule = None
            if self.phases:
                schedule = Schedule(
                    tuple(
                        Phase(
                            name=phase.name,
                            ops=phase.ops,
                            mix=_build_mix(phase.mix),
                            keys=phase.keys,
                            rebalance=dict(phase.rebalance) if phase.rebalance else None,
                            max_seconds=phase.max_seconds,
                        )
                        for phase in self.phases
                    )
                )
            return WorkloadSpec(
                dataset=self.dataset,
                primary_key=self.primary_key,
                initial_records=self.initial_records,
                payload_bytes=self.payload_bytes,
                mix=_build_mix(self.mix),
                keys=self.keys,
                schedule=schedule,
                default_ops=self.default_ops,
                batch_size=self.batch_size,
                batch_jitter=self.batch_jitter,
                scan_span=self.scan_span,
                batch_ops=self.batch_ops,
                op_chunk=self.op_chunk,
            )
        except ValueError as exc:
            raise ScenarioSpecError(f"workload: {exc}") from exc

    @property
    def rebalance_phases(self) -> Tuple[WorkloadPhaseSpec, ...]:
        return tuple(phase for phase in self.phases if phase.rebalance is not None)

    def to_mapping(self) -> Dict[str, Any]:
        defaults = WorkloadSection()
        mapping: Dict[str, Any] = {}
        for key in (
            "dataset",
            "primary_key",
            "initial_records",
            "payload_bytes",
            "keys",
            "default_ops",
            "batch_size",
            "batch_jitter",
            "scan_span",
            "batch_ops",
            "op_chunk",
        ):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                mapping[key] = value
        if self.mix != defaults.mix:
            mapping["mix"] = dict(self.mix) if isinstance(self.mix, Mapping) else self.mix
        if self.phases:
            mapping["phases"] = [phase.to_mapping() for phase in self.phases]
        return mapping


def _validate_phase_ordering(phases: Sequence[WorkloadPhaseSpec], where: str) -> None:
    """Schedule-level sanity: unique names, some traffic, sane rebalance count."""
    names = [phase.name for phase in phases]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ScenarioSpecError(
            f"{where}.phases: phase names must be unique (duplicated: {duplicates}); "
            "rename the repeated phases — reports and metrics are keyed by phase name"
        )
    if phases and all(phase.ops == 0 for phase in phases):
        raise ScenarioSpecError(
            f"{where}.phases: every phase has ops = 0, the schedule drives no traffic; "
            "give at least one phase a positive op count"
        )
    rebalancing = [phase.name for phase in phases if phase.rebalance is not None]
    if len(rebalancing) > 1:
        raise ScenarioSpecError(
            f"{where}.phases: at most one phase may carry a rebalance "
            f"(got {rebalancing}); split the scenario or use [[steps]] for "
            "additional resizes after the workload"
        )


@dataclass(frozen=True)
class AutopilotSection:
    """``[autopilot]``: the control loop attached before traffic starts."""

    policy: str = "threshold"
    options: Mapping[str, Any] = field(default_factory=dict)
    check_every_ops: int = 50
    cooldown_seconds: float = 0.0
    hysteresis: int = 1
    dry_run: bool = False
    max_rebalances: Optional[int] = None

    _KEYS = (
        "policy",
        "options",
        "check_every_ops",
        "cooldown_seconds",
        "hysteresis",
        "dry_run",
        "max_rebalances",
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "autopilot") -> "AutopilotSection":
        from ..control import available_policies

        _check_keys(mapping, where, cls._KEYS)
        policy = _get_typed(mapping, "policy", str, where, "threshold")
        if policy not in available_policies():
            raise ScenarioSpecError(
                f"{where}.policy: unknown policy {policy!r}; "
                f"registered policies: {', '.join(available_policies())}"
            )
        options = dict(_require_mapping(mapping.get("options", {}), f"{where}.options"))
        for key, value in options.items():
            if key.endswith("_bytes"):
                options[key] = parse_bytes(value, f"{where}.options.{key}")
        section = cls(
            policy=policy,
            options=options,
            check_every_ops=_get_typed(mapping, "check_every_ops", int, where, 50),
            cooldown_seconds=float(
                _get_typed(mapping, "cooldown_seconds", (int, float), where, 0.0)
            ),
            hysteresis=_get_typed(mapping, "hysteresis", int, where, 1),
            dry_run=_get_typed(mapping, "dry_run", bool, where, False),
            max_rebalances=_get_typed(mapping, "max_rebalances", int, where),
        )
        if section.check_every_ops < 1:
            raise ScenarioSpecError(f"{where}.check_every_ops: must be at least 1")
        if section.cooldown_seconds < 0:
            raise ScenarioSpecError(f"{where}.cooldown_seconds: must be non-negative")
        if section.hysteresis < 1:
            raise ScenarioSpecError(f"{where}.hysteresis: must be at least 1")
        try:  # conflicting/unknown policy options fail at spec time, not mid-run
            from ..control import resolve_policy

            resolve_policy(policy, **options)
        except ScenarioSpecError:
            raise
        except (ConfigError, TypeError) as exc:
            raise ScenarioSpecError(
                f"{where}.options: policy {policy!r} rejected these options: {exc}"
            ) from exc
        return section

    def to_mapping(self) -> Dict[str, Any]:
        defaults = AutopilotSection()
        mapping: Dict[str, Any] = {"policy": self.policy}
        if self.options:
            mapping["options"] = dict(self.options)
        for key in ("check_every_ops", "cooldown_seconds", "hysteresis", "dry_run", "max_rebalances"):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                mapping[key] = value
        return mapping


@dataclass(frozen=True)
class TraceSection:
    """``[trace]``: attach a tracing session (spans + timeline) to the run.

    Presence of the section enables tracing (``enabled = false`` keeps the
    section but turns it off, e.g. for A/B-ing overhead); the resulting
    span tree and sampled series embed into the run's recording and join
    ``replay``'s determinism diff.
    """

    enabled: bool = True
    #: Simulated seconds between timeline gauge samples.
    sample_interval_seconds: float = 0.25

    _KEYS = ("enabled", "sample_interval_seconds")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "trace") -> "TraceSection":
        _check_keys(mapping, where, cls._KEYS)
        section = cls(
            enabled=_get_typed(mapping, "enabled", bool, where, True),
            sample_interval_seconds=float(
                _get_typed(mapping, "sample_interval_seconds", (int, float), where, 0.25)
            ),
        )
        if section.sample_interval_seconds <= 0:
            raise ScenarioSpecError(f"{where}.sample_interval_seconds: must be positive")
        return section

    def to_mapping(self) -> Dict[str, Any]:
        # ``enabled`` is always emitted: the section's presence is what turns
        # tracing on, so an all-defaults section must survive the round trip.
        mapping: Dict[str, Any] = {"enabled": self.enabled}
        if self.sample_interval_seconds != TraceSection().sample_interval_seconds:
            mapping["sample_interval_seconds"] = self.sample_interval_seconds
        return mapping


def _table_array(value: Any, where: str) -> "List[Mapping[str, Any]]":
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ScenarioSpecError(f"{where}: expected an array of tables ([[{where}]])")
    return [
        _require_mapping(entry, f"{where}[{position}]")
        for position, entry in enumerate(value)
    ]


def _chaos_seconds(
    mapping: Mapping[str, Any],
    key: str,
    where: str,
    default: Any = None,
    minimum: float = 0.0,
    exclusive: bool = False,
) -> Any:
    value = _get_typed(mapping, key, (int, float), where, default)
    if value is None:
        return None
    value = float(value)
    if value < minimum or (exclusive and value == minimum):
        bound = "positive" if exclusive and minimum == 0.0 else f">= {minimum:g}"
        raise ScenarioSpecError(f"{where}.{key}: must be {bound}, got {value!r}")
    return value


@dataclass(frozen=True)
class ChaosSection:
    """``[chaos]``: deterministic fault injection for the run.

    Presence of the section arms the chaos engine (``enabled = false`` keeps
    the section but disarms it, for A/B-ing a scenario with and without
    chaos).  Every fault is declared on the *simulated* clock and every
    undeclared choice (which node straggles, which protocol site a crash
    lands on) is drawn from the run's dedicated ``chaos:<seed>`` RNG stream,
    so a chaos run records and replays exactly like a fault-free one:

    * ``[[chaos.stragglers]]`` — a node whose per-node work is multiplied
      inside a time window (slowest-node semantics spread the slowdown to
      every ingest/query/rebalance roll-up that touches it).
    * ``[[chaos.partitions]]`` — CC↔NC partition windows during which the
      client's directory view goes stale; lookups that land on a moved
      bucket pay a routing miss plus an optional timeout/backoff retry loop.
    * ``[[chaos.crashes]]`` — time-triggered kills at rebalance protocol
      sites (see ``repro.api.FAULT_SITES``), generalising per-step
      ``fault_sites``; pair with a recover step.
    * ``[[chaos.backpressure]]`` / ``[[chaos.bursts]]`` — windows that
      stretch feed ingestion / client service times by a factor.
    * ``[chaos.retry]`` — the client retry policy (attempt cap, capped
      exponential backoff) applied when a partition window forces retries.
    """

    enabled: bool = True
    stragglers: "Tuple[StragglerWindow, ...]" = ()
    random_stragglers: int = 0
    straggler_horizon_seconds: float = 10.0
    partitions: "Tuple[PartitionWindow, ...]" = ()
    crashes: "Tuple[CrashPlan, ...]" = ()
    backpressure: "Tuple[LoadWindow, ...]" = ()
    bursts: "Tuple[LoadWindow, ...]" = ()
    retry: "Optional[RetryPolicy]" = None

    _KEYS = (
        "enabled",
        "stragglers",
        "random_stragglers",
        "straggler_horizon_seconds",
        "partitions",
        "crashes",
        "backpressure",
        "bursts",
        "retry",
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "chaos") -> "ChaosSection":
        from ..chaos import CrashPlan, LoadWindow, PartitionWindow, RetryPolicy, StragglerWindow
        from ..rebalance.operation import FAULT_SITES

        _check_keys(mapping, where, cls._KEYS)

        stragglers = []
        for position, entry in enumerate(
            _table_array(mapping.get("stragglers", []), f"{where}.stragglers")
        ):
            entry_where = f"{where}.stragglers[{position}]"
            _check_keys(
                entry,
                entry_where,
                ("node", "start", "duration", "multiplier"),
                ("start", "duration", "multiplier"),
            )
            node = _get_typed(entry, "node", str, entry_where)
            multiplier = _chaos_seconds(entry, "multiplier", entry_where, minimum=1.0)
            stragglers.append(
                StragglerWindow(
                    start=_chaos_seconds(entry, "start", entry_where),
                    duration=_chaos_seconds(entry, "duration", entry_where, exclusive=True),
                    multiplier=multiplier,
                    node=node,
                )
            )

        partitions = []
        for position, entry in enumerate(
            _table_array(mapping.get("partitions", []), f"{where}.partitions")
        ):
            entry_where = f"{where}.partitions[{position}]"
            _check_keys(
                entry,
                entry_where,
                ("start", "duration", "timeout_probability"),
                ("start", "duration"),
            )
            timeout_probability = _chaos_seconds(
                entry, "timeout_probability", entry_where, default=0.0
            )
            if timeout_probability >= 1.0:
                raise ScenarioSpecError(
                    f"{entry_where}.timeout_probability: must be below 1.0 "
                    "(a certain timeout would retry forever), got "
                    f"{timeout_probability!r}"
                )
            partitions.append(
                PartitionWindow(
                    start=_chaos_seconds(entry, "start", entry_where),
                    duration=_chaos_seconds(entry, "duration", entry_where, exclusive=True),
                    timeout_probability=timeout_probability,
                )
            )

        crashes = []
        for position, entry in enumerate(
            _table_array(mapping.get("crashes", []), f"{where}.crashes")
        ):
            entry_where = f"{where}.crashes[{position}]"
            _check_keys(entry, entry_where, ("after_seconds", "site"), ("after_seconds",))
            site = _get_typed(entry, "site", str, entry_where)
            if site is not None and site not in FAULT_SITES:
                raise ScenarioSpecError(
                    f"{entry_where}.site: unknown site {site!r}; "
                    f"valid sites: {', '.join(FAULT_SITES)}"
                )
            crashes.append(
                CrashPlan(
                    after_seconds=_chaos_seconds(entry, "after_seconds", entry_where),
                    site=site,
                )
            )

        load_windows: Dict[str, "List[LoadWindow]"] = {"backpressure": [], "bursts": []}
        for key, windows in load_windows.items():
            for position, entry in enumerate(
                _table_array(mapping.get(key, []), f"{where}.{key}")
            ):
                entry_where = f"{where}.{key}[{position}]"
                _check_keys(
                    entry,
                    entry_where,
                    ("start", "duration", "factor"),
                    ("start", "duration", "factor"),
                )
                windows.append(
                    LoadWindow(
                        start=_chaos_seconds(entry, "start", entry_where),
                        duration=_chaos_seconds(entry, "duration", entry_where, exclusive=True),
                        factor=_chaos_seconds(entry, "factor", entry_where, exclusive=True),
                    )
                )

        retry = None
        if "retry" in mapping:
            retry_raw = _require_mapping(mapping["retry"], f"{where}.retry")
            retry_where = f"{where}.retry"
            _check_keys(
                retry_raw,
                retry_where,
                ("max_attempts", "backoff_base_seconds", "backoff_cap_seconds"),
            )
            max_attempts = _get_typed(retry_raw, "max_attempts", int, retry_where, 3)
            if max_attempts < 1:
                raise ScenarioSpecError(f"{retry_where}.max_attempts: must be at least 1")
            base = _chaos_seconds(
                retry_raw, "backoff_base_seconds", retry_where, default=0.001, exclusive=True
            )
            cap = _chaos_seconds(
                retry_raw, "backoff_cap_seconds", retry_where, default=0.05, exclusive=True
            )
            if cap < base:
                raise ScenarioSpecError(
                    f"{retry_where}.backoff_cap_seconds: cap {cap!r} is below the "
                    f"base delay {base!r}"
                )
            retry = RetryPolicy(
                max_attempts=max_attempts,
                backoff_base_seconds=base,
                backoff_cap_seconds=cap,
            )

        random_stragglers = _get_typed(mapping, "random_stragglers", int, where, 0)
        if random_stragglers < 0:
            raise ScenarioSpecError(f"{where}.random_stragglers: must be non-negative")
        horizon = _chaos_seconds(
            mapping, "straggler_horizon_seconds", where, default=10.0, exclusive=True
        )
        section = cls(
            enabled=_get_typed(mapping, "enabled", bool, where, True),
            stragglers=tuple(stragglers),
            random_stragglers=random_stragglers,
            straggler_horizon_seconds=horizon,
            partitions=tuple(partitions),
            crashes=tuple(crashes),
            backpressure=tuple(load_windows["backpressure"]),
            bursts=tuple(load_windows["bursts"]),
            retry=retry,
        )
        if section.enabled and not (
            section.stragglers
            or section.random_stragglers
            or section.partitions
            or section.crashes
            or section.backpressure
            or section.bursts
        ):
            raise ScenarioSpecError(
                f"{where}: the section declares no faults — add stragglers, "
                "partitions, crashes, backpressure, or bursts (or drop [chaos])"
            )
        return section

    def engine_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :meth:`repro.api.Database.enable_chaos`."""
        kwargs: Dict[str, Any] = {
            "stragglers": self.stragglers,
            "random_stragglers": self.random_stragglers,
            "straggler_horizon_seconds": self.straggler_horizon_seconds,
            "partitions": self.partitions,
            "crashes": self.crashes,
            "backpressure": self.backpressure,
            "bursts": self.bursts,
        }
        if self.retry is not None:
            kwargs["retry"] = self.retry
        return kwargs

    def to_mapping(self) -> Dict[str, Any]:
        from ..chaos import RetryPolicy

        # Like [trace], presence arms the engine, so ``enabled`` always
        # survives the round trip.
        mapping: Dict[str, Any] = {"enabled": self.enabled}
        if self.stragglers:
            mapping["stragglers"] = [
                _drop_defaults(
                    {
                        "node": w.node,
                        "start": w.start,
                        "duration": w.duration,
                        "multiplier": w.multiplier,
                    }
                )
                for w in self.stragglers
            ]
        if self.random_stragglers:
            mapping["random_stragglers"] = self.random_stragglers
        if self.straggler_horizon_seconds != ChaosSection().straggler_horizon_seconds:
            mapping["straggler_horizon_seconds"] = self.straggler_horizon_seconds
        if self.partitions:
            mapping["partitions"] = [
                _drop_defaults(
                    {
                        "start": w.start,
                        "duration": w.duration,
                        "timeout_probability": w.timeout_probability or None,
                    }
                )
                for w in self.partitions
            ]
        if self.crashes:
            mapping["crashes"] = [
                _drop_defaults({"after_seconds": plan.after_seconds, "site": plan.site})
                for plan in self.crashes
            ]
        for key in ("backpressure", "bursts"):
            windows = getattr(self, key)
            if windows:
                mapping[key] = [
                    {"start": w.start, "duration": w.duration, "factor": w.factor}
                    for w in windows
                ]
        if self.retry is not None:
            defaults = RetryPolicy()
            retry_mapping = {
                field_name: getattr(self.retry, field_name)
                for field_name in ("max_attempts", "backoff_base_seconds", "backoff_cap_seconds")
                if getattr(self.retry, field_name) != getattr(defaults, field_name)
            }
            mapping["retry"] = retry_mapping
        return mapping


@dataclass(frozen=True)
class SweepSection:
    """``[sweep]``: a parameter grid for ``python -m repro sweep``.

    Each key of ``[sweep.axes]`` is an *axis*: a shorthand alias
    (``strategy``, ``seed``, ``nodes``, ``workload_scale``, ``policy``) or a
    dotted path into the spec's canonical mapping form
    (``workload.initial_records``, ``autopilot.options.max_skew``,
    ``steps.0.target_nodes``), mapped to the list of values to try.  The
    sweep runs one cell per point of the cartesian product, in declared axis
    order, each cell being the base spec with that cell's overrides applied
    and the ``[sweep]`` section stripped — so every cell recording replays
    like any single-scenario recording.

    ``run``/``replay`` ignore the section entirely: a spec with a ``[sweep]``
    table still runs as the base scenario, which keeps one file usable both
    as a single run and as a grid.
    """

    #: Ordered ``(axis, values)`` pairs — the declared grid.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Default worker-process count for the executor (CLI ``--jobs`` wins).
    jobs: int = 1

    _KEYS = ("axes", "jobs")

    #: Shorthand axis names -> dotted canonical-mapping paths.
    AXIS_ALIASES = {
        "strategy": "cluster.strategy",
        "seed": "cluster.seed",
        "nodes": "cluster.nodes",
        "workload_scale": "cluster.workload_scale",
        "policy": "autopilot.policy",
    }

    #: Sections a dotted axis path may start with.
    _PATH_ROOTS = (
        "cluster",
        "workload",
        "autopilot",
        "tpch",
        "trace",
        "chaos",
        "steps",
        "checks",
        "datasets",
    )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "sweep") -> "SweepSection":
        _check_keys(mapping, where, cls._KEYS)
        axes_raw = _require_mapping(mapping.get("axes", {}), f"{where}.axes")
        axes: List[Tuple[str, Tuple[Any, ...]]] = []
        for axis, values in axes_raw.items():
            axis_where = f"{where}.axes.{axis}"
            cls.validate_axis_name(axis, axis_where)
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise ScenarioSpecError(
                    f"{axis_where}: expected an array of values, got {type(values).__name__}"
                )
            if not values:
                raise ScenarioSpecError(f"{axis_where}: an axis needs at least one value")
            for position, value in enumerate(values):
                if not isinstance(value, (str, int, float, bool)):
                    raise ScenarioSpecError(
                        f"{axis_where}[{position}]: axis values must be scalars "
                        f"(string/int/float/bool), got {type(value).__name__}"
                    )
            if len(set(map(repr, values))) != len(values):
                raise ScenarioSpecError(f"{axis_where}: axis values must be unique")
            axes.append((axis, tuple(values)))
        jobs = _get_typed(mapping, "jobs", int, where, 1)
        if jobs < 1:
            raise ScenarioSpecError(f"{where}.jobs: must be at least 1")
        section = cls(axes=tuple(axes), jobs=jobs)
        section._validate_values()
        return section

    @classmethod
    def validate_axis_name(cls, axis: str, where: str) -> str:
        """Resolve ``axis`` to its dotted path; raises on unknown names."""
        if axis in cls.AXIS_ALIASES:
            return cls.AXIS_ALIASES[axis]
        root = axis.split(".", 1)[0]
        if "." in axis and root in cls._PATH_ROOTS:
            return axis
        raise ScenarioSpecError(
            f"{where}: unknown axis {axis!r}; use an alias "
            f"({', '.join(sorted(cls.AXIS_ALIASES))}) or a dotted spec path "
            f"starting with one of: {', '.join(cls._PATH_ROOTS)}"
        )

    def _validate_values(self) -> None:
        """Registry-backed eager checks for the common axes."""
        for axis, values in self.axes:
            path = self.validate_axis_name(axis, f"sweep.axes.{axis}")
            if path == "cluster.strategy":
                from ..api.registry import available_strategies, strategy_by_name

                for value in values:
                    try:
                        strategy_by_name(str(value))
                    except ConfigError as exc:
                        raise ScenarioSpecError(
                            f"sweep.axes.{axis}: unknown strategy {value!r} "
                            f"(registered strategies: {', '.join(available_strategies())})"
                        ) from exc
            elif path == "cluster.seed":
                for value in values:
                    if isinstance(value, bool) or not isinstance(value, int):
                        raise ScenarioSpecError(
                            f"sweep.axes.{axis}: seeds must be integers, got {value!r}"
                        )
            elif path == "autopilot.policy":
                from ..control import available_policies

                for value in values:
                    if value not in available_policies():
                        raise ScenarioSpecError(
                            f"sweep.axes.{axis}: unknown policy {value!r} "
                            f"(registered policies: {', '.join(available_policies())})"
                        )

    def to_mapping(self) -> Dict[str, Any]:
        mapping: Dict[str, Any] = {}
        if self.axes:
            mapping["axes"] = {axis: list(values) for axis, values in self.axes}
        if self.jobs != 1:
            mapping["jobs"] = self.jobs
        return mapping


# ---------------------------------------------------------------------------
# steps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RebalanceStep:
    """``{kind = "rebalance"}``: an explicit resize after the workload."""

    add: Optional[int] = None
    remove: Optional[int] = None
    target_nodes: Optional[int] = None
    fault_sites: Tuple[str, ...] = ()
    expect_fault: bool = False

    kind = "rebalance"

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "RebalanceStep":
        _check_keys(
            mapping,
            where,
            ("kind", "add", "remove", "target_nodes", "fault_sites", "expect_fault"),
        )
        step = cls(
            add=_get_typed(mapping, "add", int, where),
            remove=_get_typed(mapping, "remove", int, where),
            target_nodes=_get_typed(mapping, "target_nodes", int, where),
            fault_sites=_string_tuple(mapping.get("fault_sites", ()), f"{where}.fault_sites"),
            expect_fault=_get_typed(mapping, "expect_fault", bool, where, False),
        )
        chosen = [v for v in (step.add, step.remove, step.target_nodes) if v is not None]
        if len(chosen) != 1:
            raise ScenarioSpecError(
                f"{where}: a rebalance step needs exactly one of add/remove/target_nodes"
            )
        if step.expect_fault and not step.fault_sites:
            raise ScenarioSpecError(
                f"{where}: expect_fault = true needs fault_sites naming the "
                "protocol site(s) to crash at (see repro.api.FAULT_SITES)"
            )
        if step.fault_sites and not step.expect_fault:
            raise ScenarioSpecError(
                f"{where}: fault_sites without expect_fault = true would crash "
                "the run when the injected fault fires; add expect_fault = true "
                "(and a recover step) or drop fault_sites"
            )
        if step.fault_sites:
            from ..rebalance.operation import FAULT_SITES

            unknown = sorted(set(step.fault_sites) - set(FAULT_SITES))
            if unknown:
                raise ScenarioSpecError(
                    f"{where}.fault_sites: unknown site(s) {unknown}; "
                    f"valid sites: {', '.join(FAULT_SITES)}"
                )
        return step

    def to_mapping(self) -> Dict[str, Any]:
        return _drop_defaults(
            {
                "kind": "rebalance",
                "add": self.add,
                "remove": self.remove,
                "target_nodes": self.target_nodes,
                "fault_sites": list(self.fault_sites),
                "expect_fault": self.expect_fault or None,
            }
        )


@dataclass(frozen=True)
class RecoverStep:
    """``{kind = "recover"}``: run rebalance recovery (Section V-D)."""

    kind = "recover"

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "RecoverStep":
        _check_keys(mapping, where, ("kind",))
        return cls()

    def to_mapping(self) -> Dict[str, Any]:
        return {"kind": "recover"}


@dataclass(frozen=True)
class QueryStep:
    """``{kind = "query", plan = "q1"}``: run a named TPC-H plan."""

    plan: str = "q1"

    kind = "query"

    _PLANS = ("q1", "q3", "q6")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str) -> "QueryStep":
        _check_keys(mapping, where, ("kind", "plan"), ("plan",))
        plan = _get_typed(mapping, "plan", str, where)
        if plan not in cls._PLANS:
            raise ScenarioSpecError(
                f"{where}.plan: unknown query plan {plan!r}; available: {', '.join(cls._PLANS)}"
            )
        return cls(plan=plan)

    def to_mapping(self) -> Dict[str, Any]:
        return {"kind": "query", "plan": self.plan}


Step = Union[RebalanceStep, RecoverStep, QueryStep]

_STEP_KINDS = {
    "rebalance": RebalanceStep,
    "recover": RecoverStep,
    "query": QueryStep,
}


def _step_from_mapping(mapping: Mapping[str, Any], where: str) -> Step:
    kind = mapping.get("kind")
    if kind not in _STEP_KINDS:
        raise ScenarioSpecError(
            f"{where}.kind: unknown step kind {kind!r}; "
            f"available kinds: {', '.join(sorted(_STEP_KINDS))}"
        )
    return _STEP_KINDS[kind].from_mapping(mapping, where)


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChecksSection:
    """``[checks]``: assertions the run must satisfy (CLI exit status)."""

    min_autopilot_rebalances: Optional[int] = None
    expect_nodes: Optional[int] = None
    min_total_ops: Optional[int] = None
    rebalance_write_p99_gte_steady: bool = False
    datasets_unchanged_after_steps: bool = False
    queries_identical_across_rebalance: bool = False
    #: Per-phase write-p99 SLO budgets in milliseconds, e.g.
    #: ``write_p99_budget_ms = {steady = 5.0, rebalance = 25.0}``.  One check
    #: per phase: the phase's write p99 must not exceed its budget (a phase
    #: that recorded no writes fails — a silent workload is not within SLO).
    write_p99_budget_ms: Mapping[str, float] = field(default_factory=dict)
    #: Simulated-seconds budget from the last chaos-injected crash to the end
    #: of the recovery pass that repaired it (trivially passes when no chaos
    #: crash fired).
    recovered_within_seconds: Optional[float] = None
    #: Cap on ``retry.routing_miss / ops.total`` — how often a stale
    #: directory view may land a lookup on a moved bucket.
    max_routing_miss_rate: Optional[float] = None

    _KEYS = (
        "min_autopilot_rebalances",
        "expect_nodes",
        "min_total_ops",
        "rebalance_write_p99_gte_steady",
        "datasets_unchanged_after_steps",
        "queries_identical_across_rebalance",
        "write_p99_budget_ms",
        "recovered_within_seconds",
        "max_routing_miss_rate",
    )

    #: Phases a latency budget can be stated over.
    _BUDGET_PHASES = ("steady", "rebalance")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any], where: str = "checks") -> "ChecksSection":
        _check_keys(mapping, where, cls._KEYS)
        budgets_raw = _require_mapping(
            mapping.get("write_p99_budget_ms", {}), f"{where}.write_p99_budget_ms"
        )
        _check_keys(budgets_raw, f"{where}.write_p99_budget_ms", cls._BUDGET_PHASES)
        budgets: Dict[str, float] = {}
        for phase, budget in budgets_raw.items():
            if isinstance(budget, bool) or not isinstance(budget, (int, float)) or budget <= 0:
                raise ScenarioSpecError(
                    f"{where}.write_p99_budget_ms.{phase}: budgets are positive "
                    f"milliseconds, got {budget!r}"
                )
            budgets[phase] = float(budget)
        recovered_within = _get_typed(mapping, "recovered_within_seconds", (int, float), where)
        if recovered_within is not None:
            recovered_within = float(recovered_within)
            if recovered_within <= 0:
                raise ScenarioSpecError(f"{where}.recovered_within_seconds: must be positive")
        miss_rate = _get_typed(mapping, "max_routing_miss_rate", (int, float), where)
        if miss_rate is not None:
            miss_rate = float(miss_rate)
            if not 0.0 <= miss_rate <= 1.0:
                raise ScenarioSpecError(
                    f"{where}.max_routing_miss_rate: a rate must be within [0, 1]"
                )
        return cls(
            min_autopilot_rebalances=_get_typed(mapping, "min_autopilot_rebalances", int, where),
            expect_nodes=_get_typed(mapping, "expect_nodes", int, where),
            min_total_ops=_get_typed(mapping, "min_total_ops", int, where),
            rebalance_write_p99_gte_steady=_get_typed(
                mapping, "rebalance_write_p99_gte_steady", bool, where, False
            ),
            datasets_unchanged_after_steps=_get_typed(
                mapping, "datasets_unchanged_after_steps", bool, where, False
            ),
            queries_identical_across_rebalance=_get_typed(
                mapping, "queries_identical_across_rebalance", bool, where, False
            ),
            write_p99_budget_ms=budgets,
            recovered_within_seconds=recovered_within,
            max_routing_miss_rate=miss_rate,
        )

    def to_mapping(self) -> Dict[str, Any]:
        defaults = ChecksSection()
        mapping = {
            key: getattr(self, key)
            for key in self._KEYS
            if key != "write_p99_budget_ms" and getattr(self, key) != getattr(defaults, key)
        }
        if self.write_p99_budget_ms:
            mapping["write_p99_budget_ms"] = dict(self.write_p99_budget_ms)
        return mapping


# ---------------------------------------------------------------------------
# the scenario itself
# ---------------------------------------------------------------------------

#: Execution engines a scenario may select with ``scenario.concurrency``.
CONCURRENCY_MODES = ("legacy", "interleaved")

_TOP_LEVEL_KEYS = (
    "scenario",
    "cluster",
    "datasets",
    "tpch",
    "workload",
    "autopilot",
    "trace",
    "chaos",
    "steps",
    "checks",
    "sweep",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario document (see the module docstring)."""

    name: str
    description: str = ""
    #: Which execution engine runs the scenario: ``"legacy"`` (run to
    #: completion, bit-identical to pre-scheduler recordings) or
    #: ``"interleaved"`` (the :mod:`repro.sim` event scheduler — rebalance
    #: phases migrate bucket by bucket with foreground traffic paced inside
    #: the movement windows).  Embedded in recordings, so ``replay`` always
    #: re-runs the engine the recording was made with.
    concurrency: str = "legacy"
    cluster: ClusterSection = field(default_factory=ClusterSection)
    datasets: Tuple[DatasetSection, ...] = ()
    tpch: Optional[TPCHSection] = None
    workload: Optional[WorkloadSection] = None
    autopilot: Optional[AutopilotSection] = None
    trace: Optional[TraceSection] = None
    chaos: Optional[ChaosSection] = None
    steps: Tuple[Step, ...] = ()
    checks: ChecksSection = field(default_factory=ChecksSection)
    sweep: Optional[SweepSection] = None

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Validate a parsed document into a spec; raises
        :class:`ScenarioSpecError` with the offending section path."""
        mapping = _require_mapping(mapping, "scenario document")
        _check_keys(mapping, "scenario document", _TOP_LEVEL_KEYS, ("scenario",))
        header = _require_mapping(mapping["scenario"], "scenario")
        _check_keys(header, "scenario", ("name", "description", "concurrency"), ("name",))
        name = _get_typed(header, "name", str, "scenario")
        if not name:
            raise ScenarioSpecError("scenario.name: must not be empty")
        concurrency = _get_typed(header, "concurrency", str, "scenario", "legacy")
        if concurrency not in CONCURRENCY_MODES:
            raise ScenarioSpecError(
                f"scenario.concurrency: unknown mode {concurrency!r}; "
                f"choose one of {sorted(CONCURRENCY_MODES)}"
            )

        datasets_raw = mapping.get("datasets", [])
        if not isinstance(datasets_raw, Sequence) or isinstance(datasets_raw, str):
            raise ScenarioSpecError("datasets: expected an array of tables ([[datasets]])")
        datasets = tuple(
            DatasetSection.from_mapping(
                _require_mapping(entry, f"datasets[{position}]"), f"datasets[{position}]"
            )
            for position, entry in enumerate(datasets_raw)
        )
        dataset_names = [dataset.name for dataset in datasets]
        duplicate_datasets = sorted({n for n in dataset_names if dataset_names.count(n) > 1})
        if duplicate_datasets:
            raise ScenarioSpecError(f"datasets: duplicate dataset name(s) {duplicate_datasets}")

        steps_raw = mapping.get("steps", [])
        if not isinstance(steps_raw, Sequence) or isinstance(steps_raw, str):
            raise ScenarioSpecError("steps: expected an array of tables ([[steps]])")
        steps = tuple(
            _step_from_mapping(
                _require_mapping(entry, f"steps[{position}]"), f"steps[{position}]"
            )
            for position, entry in enumerate(steps_raw)
        )

        spec = cls(
            name=name,
            description=_get_typed(header, "description", str, "scenario", ""),
            concurrency=concurrency,
            cluster=ClusterSection.from_mapping(
                _require_mapping(mapping.get("cluster", {}), "cluster")
            ),
            datasets=datasets,
            tpch=TPCHSection.from_mapping(_require_mapping(mapping["tpch"], "tpch"))
            if "tpch" in mapping
            else None,
            workload=WorkloadSection.from_mapping(
                _require_mapping(mapping["workload"], "workload")
            )
            if "workload" in mapping
            else None,
            autopilot=AutopilotSection.from_mapping(
                _require_mapping(mapping["autopilot"], "autopilot")
            )
            if "autopilot" in mapping
            else None,
            trace=TraceSection.from_mapping(_require_mapping(mapping["trace"], "trace"))
            if "trace" in mapping
            else None,
            chaos=ChaosSection.from_mapping(_require_mapping(mapping["chaos"], "chaos"))
            if "chaos" in mapping
            else None,
            steps=steps,
            checks=ChecksSection.from_mapping(_require_mapping(mapping.get("checks", {}), "checks")),
            sweep=SweepSection.from_mapping(_require_mapping(mapping["sweep"], "sweep"))
            if "sweep" in mapping
            else None,
        )
        spec._validate_cross_section()
        return spec

    def _validate_cross_section(self) -> None:
        """Conflicts no single section can see."""
        if self.autopilot is not None and self.workload is not None:
            scheduled = [p.name for p in self.workload.rebalance_phases]
            if scheduled:
                raise ScenarioSpecError(
                    "autopilot: conflicts with the phase-scheduled rebalance in "
                    f"workload.phases {scheduled}: an autopilot and an explicit "
                    "mid-phase resize would fight over the cluster; drop the "
                    "[autopilot] section or the phase's rebalance key"
                )
        if (
            self.autopilot is not None
            and self.autopilot.dry_run
            and (self.checks.min_autopilot_rebalances or 0) > 0
        ):
            raise ScenarioSpecError(
                "checks.min_autopilot_rebalances: conflicts with autopilot.dry_run = true "
                "— a dry-run engine plans but never rebalances; drop dry_run or the check"
            )
        if self.checks.min_autopilot_rebalances is not None and self.autopilot is None:
            raise ScenarioSpecError(
                "checks.min_autopilot_rebalances: needs an [autopilot] section to count"
            )
        if self.checks.queries_identical_across_rebalance:
            # The check compares a plan's first pre-rebalance answer against
            # its first post-rebalance answer, so some plan must straddle a
            # completing (non-fault) rebalance step — otherwise it can never pass.
            rebalance_positions = [
                position
                for position, step in enumerate(self.steps)
                if isinstance(step, RebalanceStep) and not step.expect_fault
            ]
            straddling = any(
                isinstance(before, QueryStep)
                and isinstance(after, QueryStep)
                and before.plan == after.plan
                and any(i < rebalance < j for rebalance in rebalance_positions)
                for i, before in enumerate(self.steps)
                for j, after in enumerate(self.steps)
                if i < j
            )
            if not straddling:
                raise ScenarioSpecError(
                    "checks.queries_identical_across_rebalance: needs the same "
                    "query plan in [[steps]] both before and after a rebalance "
                    "step (one without expect_fault) — as written the check "
                    "could never pass"
                )
        global_hashing_names = ("hashing", "global", "globalhashing", "modulo")
        strategy_name = self.cluster.strategy.strip().lower()
        if strategy_name in global_hashing_names:
            faulted = [
                position
                for position, step in enumerate(self.steps)
                if isinstance(step, RebalanceStep) and step.fault_sites
            ]
            if faulted:
                raise ScenarioSpecError(
                    f"steps[{faulted[0]}].fault_sites: the global-hashing baseline "
                    "rebuilds datasets offline and has no Section V protocol "
                    "sites to fault; use dynahash, statichash, or consistenthash"
                )
        chaos_crashes = (
            self.chaos is not None and self.chaos.enabled and bool(self.chaos.crashes)
        )
        recover_positions = [
            position for position, step in enumerate(self.steps) if isinstance(step, RecoverStep)
        ]
        for position in recover_positions:
            earlier = self.steps[:position]
            if not chaos_crashes and not any(
                isinstance(step, RebalanceStep) and step.expect_fault for step in earlier
            ):
                raise ScenarioSpecError(
                    f"steps[{position}]: a recover step needs an earlier rebalance step "
                    "with expect_fault = true (or [[chaos.crashes]]) — otherwise "
                    "there is nothing to recover"
                )
        if chaos_crashes:
            if strategy_name in global_hashing_names:
                raise ScenarioSpecError(
                    "chaos.crashes: the global-hashing baseline has no "
                    "interruptible protocol window, so crash plans cannot fire "
                    "on it; use dynahash, statichash, or consistenthash"
                )
            rebalance_positions = [
                position
                for position, step in enumerate(self.steps)
                if isinstance(step, RebalanceStep)
            ]
            if not rebalance_positions:
                raise ScenarioSpecError(
                    "chaos.crashes: crash plans fire when an explicit [[steps]] "
                    "rebalance arms them — add a rebalance step (and a recover "
                    "step after it) or drop the crashes"
                )
            if not any(r < position for r in rebalance_positions for position in recover_positions):
                raise ScenarioSpecError(
                    "chaos.crashes: a chaos-interrupted rebalance leaves the "
                    "cluster mid-protocol — add a recover step after the "
                    "rebalance step"
                )
        for position, step in enumerate(self.steps):
            if isinstance(step, QueryStep) and self.tpch is None:
                raise ScenarioSpecError(
                    f"steps[{position}]: query steps run the TPC-H plans and need a "
                    "[tpch] section to load the tables they read"
                )
        if self.workload is None and not self.steps and self.tpch is None and not self.datasets:
            raise ScenarioSpecError(
                "scenario: nothing to do — give a [workload], [tpch], [[datasets]], "
                "or [[steps]] section"
            )

    # ------------------------------------------------------------- utilities

    def to_mapping(self) -> Dict[str, Any]:
        """The canonical, JSON-serialisable form (round-trips through
        :meth:`from_mapping`; embedded in recordings for ``replay``)."""
        mapping: Dict[str, Any] = {
            "scenario": _drop_defaults(
                {
                    "name": self.name,
                    "description": self.description or None,
                    "concurrency": None if self.concurrency == "legacy" else self.concurrency,
                }
            )
        }
        cluster = self.cluster.to_mapping()
        if cluster:
            mapping["cluster"] = cluster
        if self.datasets:
            mapping["datasets"] = [dataset.to_mapping() for dataset in self.datasets]
        if self.tpch is not None:
            mapping["tpch"] = self.tpch.to_mapping()
        if self.workload is not None:
            mapping["workload"] = self.workload.to_mapping()
        if self.autopilot is not None:
            mapping["autopilot"] = self.autopilot.to_mapping()
        if self.trace is not None:
            mapping["trace"] = self.trace.to_mapping()
        if self.chaos is not None:
            mapping["chaos"] = self.chaos.to_mapping()
        if self.steps:
            mapping["steps"] = [step.to_mapping() for step in self.steps]
        checks = self.checks.to_mapping()
        if checks:
            mapping["checks"] = checks
        if self.sweep is not None:
            mapping["sweep"] = self.sweep.to_mapping()
        return mapping

    def with_overrides(
        self,
        seed: Optional[int] = None,
        strategy: Optional[str] = None,
        concurrency: Optional[str] = None,
    ) -> "ScenarioSpec":
        """A copy with the seed, strategy, and/or concurrency mode replaced
        (CLI ``--seed`` / ``--strategy`` / ``--concurrency``).  A strategy
        override drops the spec's ``strategy_options`` — they are specific to
        the strategy they were written for."""
        spec = self
        if concurrency is not None:
            if concurrency not in CONCURRENCY_MODES:
                raise ScenarioSpecError(
                    f"scenario.concurrency: unknown mode {concurrency!r}; "
                    f"choose one of {sorted(CONCURRENCY_MODES)}"
                )
            spec = replace(spec, concurrency=concurrency)
        if seed is not None:
            spec = replace(spec, cluster=replace(spec.cluster, seed=seed))
        if strategy is not None and strategy != spec.cluster.strategy:
            spec = replace(
                spec,
                cluster=replace(spec.cluster, strategy=strategy, strategy_options={}),
            )
            spec.cluster.build_config()  # validate the new name
            # Re-run the cross-section rules: a strategy swap can invalidate
            # combinations the original spec passed (fault_sites steps or
            # chaos crash plans on the global-hashing baseline), and those
            # must fail here as a spec error, not mid-run as a traceback.
            spec._validate_cross_section()
        return spec

    def scaled_down(
        self,
        max_phase_ops: int = 60,
        max_initial_records: int = 240,
        max_tpch_scale: float = 0.0004,
    ) -> "ScenarioSpec":
        """A smoke-scale copy for fast round-trip tests: phase op counts,
        preload sizes, and the TPC-H scale factor are capped; everything else
        (seed, strategy, policy, steps, checks) is untouched.  Checks tuned
        for the full-scale run may not hold at smoke scale."""
        spec = self
        if spec.workload is not None:
            workload = replace(
                spec.workload,
                initial_records=min(spec.workload.initial_records, max_initial_records),
                default_ops=min(spec.workload.default_ops, max_phase_ops),
                phases=tuple(
                    replace(phase, ops=min(phase.ops, max_phase_ops))
                    for phase in spec.workload.phases
                ),
            )
            spec = replace(spec, workload=workload)
        if spec.tpch is not None:
            spec = replace(
                spec,
                tpch=replace(spec.tpch, scale_factor=min(spec.tpch.scale_factor, max_tpch_scale)),
            )
        return spec
