"""Executing a :class:`~repro.scenario.spec.ScenarioSpec` against the client API.

:func:`run_scenario` is the one compile step between the declarative world
and the session APIs: it opens a :class:`~repro.api.Database` from the spec's
cluster section, attaches the autopilot (if declared), creates datasets /
loads TPC-H, drives the phased workload through a
:class:`~repro.api.WorkloadDriver`, executes the explicit steps (rebalances —
possibly fault-injected — recovery, named TPC-H query plans), evaluates the
spec's checks, and returns a :class:`ScenarioResult` carrying the frozen
:class:`~repro.api.MetricsSnapshot` the determinism contract is stated over.

Determinism: everything stochastic is seeded from ``ClusterConfig.seed``
(the workload driver, the TPC-H generator, the autopilot's evaluation points)
— running the same spec with the same seed twice yields *equal* snapshots,
which is what ``python -m repro replay`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spec import QueryStep, RebalanceStep, RecoverStep, ScenarioSpec

__all__ = ["CheckResult", "ScenarioResult", "StepOutcome", "run_scenario"]


@dataclass(frozen=True)
class StepOutcome:
    """What one ``[[steps]]`` entry did, in one printable line."""

    kind: str
    detail: str


@dataclass(frozen=True)
class CheckResult:
    """One ``[checks]`` assertion, evaluated."""

    name: str
    passed: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"check {self.name}: {status} ({self.detail})"


@dataclass
class ScenarioResult:
    """Everything one scenario run produced (see :meth:`render`)."""

    spec: ScenarioSpec
    seed: int
    nodes_before: int = 0
    nodes_after: int = 0
    total_ops: int = 0
    simulated_seconds: float = 0.0
    workload_summary: str = ""
    write_p99_seconds: Dict[str, float] = field(default_factory=dict)
    read_p99_seconds: Dict[str, float] = field(default_factory=dict)
    autopilot_summary: str = ""
    autopilot_rebalances: int = 0
    step_outcomes: List[StepOutcome] = field(default_factory=list)
    checks: List[CheckResult] = field(default_factory=list)
    metrics_report: str = ""
    snapshot: Any = None  # MetricsSnapshot
    describe: Dict[str, Any] = field(default_factory=dict)
    #: Totals accumulated from every ``rebalance.complete`` event of the run
    #: (autopilot-triggered and explicit steps alike): ``count``,
    #: ``simulated_seconds``, ``records_moved``, ``bytes_shipped``,
    #: ``buckets_moved``.  Empty when the run never rebalanced.
    rebalances: Dict[str, float] = field(default_factory=dict)
    #: Trace payload (spans + timeline series) when the spec enabled a
    #: ``[trace]`` section; ``None`` for untraced runs.
    trace: Optional[Dict[str, Any]] = None
    #: Every ``chaos.*`` event the run's chaos engine emitted, in emission
    #: order: ``{"event", "at", **payload}`` dicts.  Empty without a
    #: ``[chaos]`` section; embedded in recordings and diffed by ``replay``.
    chaos_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Protocol site of the last chaos-injected crash that interrupted a
    #: step rebalance (``None`` when no crash fired).
    faulted_site: Optional[str] = None
    #: Simulated seconds from the last chaos crash to the recovery pass that
    #: repaired it (``None`` when nothing crashed or nothing recovered).
    recovery_seconds: Optional[float] = None
    #: sha256 fingerprint of every dataset's final contents (rows sorted by
    #: key, read through the raw partition scan so no metric events fire).
    #: Engine-independent by construction — the differential harness pins
    #: legacy == interleaved on these.
    dataset_fingerprints: Dict[str, str] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        """The CLI's human-readable run report."""
        from ..common.reporting import format_table
        from ..metrics import PHASE_REBALANCE, PHASE_STEADY

        lines = [
            f"scenario {self.spec.name!r}: {self.spec.cluster.strategy} strategy, "
            f"seed={self.seed}, nodes {self.nodes_before} -> {self.nodes_after}"
        ]
        if self.spec.description:
            lines.append(f"  {self.spec.description}")
        if self.workload_summary:
            lines.append("")
            lines.append(self.workload_summary)
        if self.autopilot_summary:
            lines.append("")
            lines.append("autopilot decision log:")
            lines.append(self.autopilot_summary)
            autopilot_counters = [
                [name, int(value)]
                for name, value in (self.snapshot.counters if self.snapshot else {}).items()
                if name.startswith("autopilot.")
            ]
            if autopilot_counters:
                lines.append("")
                lines.append("autopilot.* events as seen by the metrics registry:")
                lines.append(format_table(["event", "count"], autopilot_counters))
        if self.step_outcomes:
            lines.append("")
            lines.append("steps:")
            for outcome in self.step_outcomes:
                lines.append(f"  [{outcome.kind}] {outcome.detail}")
        if self.chaos_events:
            lines.append("")
            lines.append("chaos events (simulated clock):")
            chaos_rows = [
                [
                    f"{event.get('at', 0.0):.3f}s",
                    event.get("event", "?"),
                    ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(event.items())
                        if key not in ("event", "at")
                    ),
                ]
                for event in self.chaos_events
            ]
            lines.append(format_table(["at", "event", "details"], chaos_rows))
            if self.faulted_site is not None:
                line = f"chaos crash interrupted a rebalance at site {self.faulted_site!r}"
                if self.recovery_seconds is not None:
                    line += f"; recovered in {self.recovery_seconds:.3f} simulated seconds"
                lines.append(line)
        if self.metrics_report:
            lines.append("")
            lines.append("per-op latency by cluster phase (simulated ms):")
            lines.append(self.metrics_report)
        phase_rows = []
        for phase in (PHASE_STEADY, PHASE_REBALANCE):
            write_p99 = self.write_p99_seconds.get(phase)
            read_p99 = self.read_p99_seconds.get(phase)
            if write_p99 is None and read_p99 is None:
                continue
            phase_rows.append(
                [
                    phase,
                    round(write_p99 * 1e3, 3) if write_p99 is not None else "-",
                    round(read_p99 * 1e3, 3) if read_p99 is not None else "-",
                ]
            )
        if phase_rows:
            lines.append("")
            lines.append("tail latency by cluster phase:")
            lines.append(
                format_table(["phase", "write p99 (ms)", "read p99 (ms)"], phase_rows)
            )
        if self.rebalances:
            from ..common.units import fmt_bytes, fmt_duration

            lines.append("")
            lines.append(
                f"rebalance totals: {int(self.rebalances.get('count', 0))} completed, "
                f"{int(self.rebalances.get('records_moved', 0))} records / "
                f"{fmt_bytes(self.rebalances.get('bytes_shipped', 0))} shipped in "
                f"{fmt_duration(self.rebalances.get('simulated_seconds', 0.0))}"
            )
        if self.checks:
            lines.append("")
            for check in self.checks:
                lines.append(check.line())
        lines.append("")
        verdict = "OK" if self.passed else "FAILED"
        lines.append(
            f"scenario {self.spec.name!r} {verdict}: {self.total_ops} ops, "
            f"{self.simulated_seconds:.3f} simulated seconds, "
            f"{sum(1 for c in self.checks if c.passed)}/{len(self.checks)} checks passed"
        )
        return "\n".join(lines)


def run_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    strategy: Optional[str] = None,
    concurrency: Optional[str] = None,
) -> ScenarioResult:
    """Execute ``spec`` and return its :class:`ScenarioResult`.

    ``seed`` / ``strategy`` / ``concurrency`` override the spec (the CLI's
    ``--seed`` / ``--strategy`` / ``--concurrency``).  Checks are
    *evaluated*, not raised — the caller decides what a failing check means
    (the CLI exits non-zero).

    With ``concurrency = "interleaved"`` (spec header or override) the
    workload driver is handed a :class:`repro.sim.EventScheduler` sharing the
    session's metrics clock, so phase-scheduled rebalances migrate bucket by
    bucket with foreground traffic paced inside the movement windows.  The
    legacy mode runs bit-identically to pre-scheduler recordings.
    """
    from ..api import Database, FaultInjected, WorkloadDriver, load_tpch
    from ..api import SecondaryIndexSpec as APISecondaryIndexSpec
    from ..sim import EventScheduler
    from ..tpch.queries import q1_plan, q3_plan, q6_plan
    from ..tpch.workload import DEFAULT_TABLES

    spec = spec.with_overrides(seed=seed, strategy=strategy, concurrency=concurrency)
    config = spec.cluster.build_config()
    result = ScenarioResult(spec=spec, seed=config.seed)

    db = Database(
        config,
        workload_scale=spec.cluster.workload_scale,
        strategy_options=dict(spec.cluster.strategy_options) or None,
    )
    try:
        result.nodes_before = db.num_nodes

        def _on_rebalance_complete(event: Any) -> None:
            report = event["report"]
            totals = result.rebalances
            totals["count"] = totals.get("count", 0) + 1
            totals["simulated_seconds"] = (
                totals.get("simulated_seconds", 0.0) + report.simulated_seconds
            )
            totals["records_moved"] = totals.get("records_moved", 0) + report.total_records_moved
            totals["bytes_shipped"] = totals.get("bytes_shipped", 0) + report.total_bytes_shipped
            totals["buckets_moved"] = totals.get("buckets_moved", 0) + sum(
                dataset.buckets_moved for dataset in report.dataset_reports
            )

        db.on("rebalance.complete", _on_rebalance_complete)

        chaos_engine = None
        if spec.chaos is not None and spec.chaos.enabled:
            # Armed before the trace session starts so the tracer's standing
            # chaos.* subscription sees every announcement.
            chaos_engine = db.enable_chaos(**spec.chaos.engine_kwargs())

            def _on_chaos_event(event: Any) -> None:
                entry: Dict[str, Any] = {
                    "event": event.name,
                    "at": db.metrics.clock.now,
                }
                entry.update(event.payload)
                result.chaos_events.append(entry)

            db.on("chaos.*", _on_chaos_event)

        trace_session = None
        if spec.trace is not None and spec.trace.enabled:
            trace_session = db.start_trace(
                sample_interval_seconds=spec.trace.sample_interval_seconds,
                # The interleaved engine advances the clock mid-rebalance, so
                # the rebalance subtree must be laid out on real clock
                # readings for move/op overlap to show up in the trace.
                clock_anchored_rebalance=spec.concurrency == "interleaved",
            )

        pilot = None
        if spec.autopilot is not None:
            section = spec.autopilot
            pilot = db.autopilot(
                policy=section.policy,
                policy_options=dict(section.options) or None,
                check_every_ops=section.check_every_ops,
                cooldown_seconds=section.cooldown_seconds,
                hysteresis=section.hysteresis,
                dry_run=section.dry_run,
                max_rebalances=section.max_rebalances,
            )

        for dataset in spec.datasets:
            primary_key: "str | Tuple[str, ...]" = (
                dataset.primary_key if len(dataset.primary_key) > 1 else dataset.primary_key[0]
            )
            db.create_dataset(
                dataset.name,
                primary_key=primary_key,
                secondary_indexes=[
                    APISecondaryIndexSpec(
                        index.name, tuple(index.fields), tuple(index.included_fields)
                    )
                    for index in dataset.secondary_indexes
                ],
            )

        if spec.tpch is not None:
            load_tpch(
                db,
                scale_factor=spec.tpch.scale_factor,
                tables=spec.tpch.tables or DEFAULT_TABLES,
                batch_size=spec.tpch.batch_size,
            )

        if spec.workload is not None:
            scheduler = (
                EventScheduler(db.metrics.clock)
                if spec.concurrency == "interleaved"
                else None
            )
            driver = WorkloadDriver(db, spec.workload.build_spec(), scheduler=scheduler)
            report = driver.run()
            result.workload_summary = report.summary()
            result.total_ops = report.total_ops
            result.simulated_seconds = report.simulated_seconds
            result.write_p99_seconds = dict(report.write_p99_seconds)
            result.read_p99_seconds = dict(report.read_p99_seconds)
            result.autopilot_rebalances = report.autopilot_rebalances

        counts_before_steps = {name: db[name].count() for name in db.dataset_names()}

        plans = {"q1": q1_plan, "q3": q3_plan, "q6": q6_plan}
        query_results: Dict[str, List[Any]] = {}
        rebalance_seen = False
        queries_before_rebalance: Dict[str, Any] = {}
        queries_after_rebalance: Dict[str, Any] = {}
        for step in spec.steps:
            if isinstance(step, RebalanceStep):
                kwargs: Dict[str, Any] = {}
                if step.add is not None:
                    kwargs["add"] = step.add
                if step.remove is not None:
                    kwargs["remove"] = step.remove
                if step.target_nodes is not None:
                    kwargs["target_nodes"] = step.target_nodes
                if step.fault_sites:
                    kwargs["fault_sites"] = list(step.fault_sites)
                try:
                    report = db.rebalance(**kwargs)
                except FaultInjected as fault:
                    if step.expect_fault:
                        result.step_outcomes.append(
                            StepOutcome(
                                "rebalance",
                                f"interrupted by injected fault at {fault.site!r} (as expected)",
                            )
                        )
                        continue
                    if chaos_engine is None:
                        raise
                    # Spec validation guarantees an un-expect_fault step only
                    # sees FaultInjected when a chaos crash plan armed it.
                    result.faulted_site = fault.site
                    result.step_outcomes.append(
                        StepOutcome(
                            "rebalance",
                            f"interrupted by chaos-injected crash at {fault.site!r}",
                        )
                    )
                else:
                    if step.expect_fault:
                        result.step_outcomes.append(
                            StepOutcome(
                                "rebalance",
                                "expected an injected fault but the rebalance completed",
                            )
                        )
                        result.checks.append(
                            CheckResult(
                                "expect_fault",
                                False,
                                f"fault_sites {list(step.fault_sites)} never fired",
                            )
                        )
                    else:
                        rebalance_seen = True
                        result.step_outcomes.append(
                            StepOutcome(
                                "rebalance",
                                f"{report.old_nodes} -> {report.new_nodes} nodes, "
                                f"{report.total_records_moved} records moved in "
                                f"{report.simulated_seconds:.3f} simulated seconds",
                            )
                        )
            elif isinstance(step, RecoverStep):
                outcomes = db.recover()
                detail = (
                    "; ".join(
                        f"rebalance #{o.rebalance_id} on {o.dataset!r} -> {o.action}"
                        for o in outcomes
                    )
                    or "nothing to recover"
                )
                result.step_outcomes.append(StepOutcome("recover", detail))
                if chaos_engine is not None:
                    recovered = chaos_engine.recovery_seconds()
                    if recovered is not None:
                        result.recovery_seconds = recovered
            elif isinstance(step, QueryStep):
                answer, report = db.execute(step.plan, plans[step.plan]())
                query_results.setdefault(step.plan, []).append(answer)
                target = queries_after_rebalance if rebalance_seen else queries_before_rebalance
                target.setdefault(step.plan, answer)
                result.step_outcomes.append(StepOutcome("query", report.summary()))

        result.nodes_after = db.num_nodes
        result.autopilot_summary = pilot.summary() if pilot is not None else ""
        result.metrics_report = db.metrics.report()
        if not result.write_p99_seconds:
            from ..metrics import PHASE_REBALANCE, PHASE_STEADY

            for phase in (PHASE_STEADY, PHASE_REBALANCE):
                writes = db.metrics.write_latency(phase)
                if writes.count:
                    result.write_p99_seconds[phase] = writes.percentile(0.99)
                reads = db.metrics.latency("read", phase)
                if reads.count:
                    result.read_p99_seconds[phase] = reads.percentile(0.99)
        result.describe = db.describe()
        result.dataset_fingerprints = _dataset_fingerprints(db)
        result.snapshot = db.metrics.snapshot()
        if trace_session is not None:
            # Close the trace *after* the snapshot so the session span's end
            # matches the recorded simulated_seconds, then serialise it.
            trace_session.finish()
            result.trace = trace_session.to_payload(scenario=spec.name, seed=config.seed)

        _evaluate_checks(
            result,
            counts_before_steps={name: counts_before_steps.get(name) for name in db.dataset_names()},
            counts_after_steps={name: db[name].count() for name in db.dataset_names()},
            queries_before=queries_before_rebalance,
            queries_after=queries_after_rebalance,
        )
    finally:
        db.close()
    return result


def _dataset_fingerprints(db: Any) -> Dict[str, str]:
    """sha256 of each dataset's full contents, sorted by primary key.

    Reads go through the raw partition scan (``scan_primary``), not the
    instrumented :meth:`Dataset.scan` verb — fingerprinting must not emit
    ``op.scan`` samples or it would perturb the very snapshots the
    determinism contract compares.
    """
    import hashlib
    import json

    fingerprints: Dict[str, str] = {}
    for name in sorted(db.dataset_names()):
        runtime = db.cluster.dataset(name)
        rows = []
        for pid in sorted(runtime.partitions):
            for entry in runtime.partitions[pid].scan_primary():
                rows.append((entry.key, entry.value))
        rows.sort(key=lambda pair: pair[0])
        digest = hashlib.sha256()
        for key, value in rows:
            digest.update(
                json.dumps([key, value], sort_keys=True, default=str).encode("utf-8")
            )
            digest.update(b"\n")
        fingerprints[name] = digest.hexdigest()
    return fingerprints


def _answers_equal(left: Any, right: Any) -> bool:
    """Structural equality with float tolerance.

    Aggregates computed before and after a rebalance sum the same records in
    a different partition order, so float totals can differ in the last few
    bits; anything beyond summation round-off is a real divergence.
    """
    from math import isclose

    if isinstance(left, float) or isinstance(right, float):
        return (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and isclose(left, right, rel_tol=1e-9, abs_tol=1e-6)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            _answers_equal(value, right[key]) for key, value in left.items()
        )
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return len(left) == len(right) and all(
            _answers_equal(a, b) for a, b in zip(left, right, strict=True)
        )
    return left == right


def _evaluate_checks(
    result: ScenarioResult,
    counts_before_steps: Dict[str, Optional[int]],
    counts_after_steps: Dict[str, int],
    queries_before: Dict[str, Any],
    queries_after: Dict[str, Any],
) -> None:
    from ..metrics import PHASE_REBALANCE, PHASE_STEADY

    checks = result.spec.checks
    if checks.min_autopilot_rebalances is not None:
        result.checks.append(
            CheckResult(
                "min_autopilot_rebalances",
                result.autopilot_rebalances >= checks.min_autopilot_rebalances,
                f"{result.autopilot_rebalances} autopilot rebalance(s), "
                f"need >= {checks.min_autopilot_rebalances}",
            )
        )
    if checks.expect_nodes is not None:
        result.checks.append(
            CheckResult(
                "expect_nodes",
                result.nodes_after == checks.expect_nodes,
                f"final cluster has {result.nodes_after} node(s), expected {checks.expect_nodes}",
            )
        )
    if checks.min_total_ops is not None:
        result.checks.append(
            CheckResult(
                "min_total_ops",
                result.total_ops >= checks.min_total_ops,
                f"{result.total_ops} op(s), need >= {checks.min_total_ops}",
            )
        )
    if checks.rebalance_write_p99_gte_steady:
        steady = result.write_p99_seconds.get(PHASE_STEADY)
        rebalance = result.write_p99_seconds.get(PHASE_REBALANCE)
        if steady is None or rebalance is None:
            result.checks.append(
                CheckResult(
                    "rebalance_write_p99_gte_steady",
                    False,
                    "missing a write-latency population for "
                    f"{'steady' if steady is None else 'rebalance'} phase",
                )
            )
        else:
            result.checks.append(
                CheckResult(
                    "rebalance_write_p99_gte_steady",
                    rebalance >= steady,
                    f"write p99 {rebalance * 1e3:.3f} ms mid-rebalance vs "
                    f"{steady * 1e3:.3f} ms steady",
                )
            )
    for phase in (PHASE_STEADY, PHASE_REBALANCE):
        budget_ms = checks.write_p99_budget_ms.get(phase)
        if budget_ms is None:
            continue
        observed = result.write_p99_seconds.get(phase)
        if observed is None:
            # A budget over a phase that recorded no writes fails loudly: a
            # silent workload is not evidence the SLO held.
            result.checks.append(
                CheckResult(
                    f"write_p99_budget_ms.{phase}",
                    False,
                    f"no write-latency population for the {phase} phase",
                )
            )
            continue
        result.checks.append(
            CheckResult(
                f"write_p99_budget_ms.{phase}",
                observed * 1e3 <= budget_ms,
                f"write p99 {observed * 1e3:.3f} ms vs budget {budget_ms:.3f} ms",
            )
        )
    if checks.datasets_unchanged_after_steps:
        changed = {
            name: (before, counts_after_steps.get(name))
            for name, before in counts_before_steps.items()
            if before is not None and before != counts_after_steps.get(name)
        }
        result.checks.append(
            CheckResult(
                "datasets_unchanged_after_steps",
                not changed,
                "record counts intact across the steps"
                if not changed
                else "changed: "
                + ", ".join(f"{name} {a} -> {b}" for name, (a, b) in sorted(changed.items())),
            )
        )
    if checks.recovered_within_seconds is not None:
        if result.faulted_site is None:
            result.checks.append(
                CheckResult(
                    "recovered_within_seconds",
                    True,
                    "no chaos crash fired, nothing to recover from",
                )
            )
        elif result.recovery_seconds is None:
            result.checks.append(
                CheckResult(
                    "recovered_within_seconds",
                    False,
                    f"chaos crash at {result.faulted_site!r} was never recovered "
                    "(is there a recover step after the rebalance?)",
                )
            )
        else:
            result.checks.append(
                CheckResult(
                    "recovered_within_seconds",
                    result.recovery_seconds <= checks.recovered_within_seconds,
                    f"recovered {result.recovery_seconds:.3f}s after the crash at "
                    f"{result.faulted_site!r}, budget "
                    f"{checks.recovered_within_seconds:.3f}s",
                )
            )
    if checks.max_routing_miss_rate is not None:
        counters = dict(result.snapshot.counters) if result.snapshot is not None else {}
        misses = int(counters.get("retry.routing_miss", 0))
        total = int(counters.get("ops.total", 0))
        rate = misses / total if total else 0.0
        result.checks.append(
            CheckResult(
                "max_routing_miss_rate",
                rate <= checks.max_routing_miss_rate,
                f"{misses} routing miss(es) over {total} op(s) = {rate:.4f}, "
                f"cap {checks.max_routing_miss_rate:.4f}",
            )
        )
    if checks.queries_identical_across_rebalance:
        compared = sorted(set(queries_before) & set(queries_after))
        mismatched = [
            plan
            for plan in compared
            if not _answers_equal(queries_before[plan], queries_after[plan])
        ]
        result.checks.append(
            CheckResult(
                "queries_identical_across_rebalance",
                bool(compared) and not mismatched,
                f"plans {compared} answered identically before and after the rebalance"
                if compared and not mismatched
                else (
                    f"answers differ for {mismatched}"
                    if mismatched
                    else "no query plan ran on both sides of a rebalance"
                ),
            )
        )
