"""Scenario recordings: the on-disk artifact ``replay`` and ``inspect`` read.

A recording is one JSON document capturing everything needed to re-run a
scenario and check determinism:

* the **resolved spec** (canonical mapping form — seed and strategy overrides
  already applied), so ``replay`` does not need the original ``.toml`` file;
* the **seed** the run used;
* the frozen :class:`~repro.api.MetricsSnapshot` (via its lossless JSON form);
* the cluster's structural ``describe()`` snapshot and the check outcomes,
  for ``inspect``.

:func:`diff_snapshots` produces the human-readable difference list the
``replay`` subcommand prints — an empty list is the determinism contract
("same spec + same seed ⇒ bit-identical snapshot") holding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..metrics import MetricsSnapshot
from .runner import ScenarioResult
from .spec import ScenarioSpec, ScenarioSpecError

__all__ = [
    "diff_chaos",
    "diff_snapshots",
    "diff_traces",
    "load_recording",
    "recording_payload",
    "spec_from_recording",
    "snapshot_from_recording",
    "write_recording",
]

RECORDING_VERSION = 1


def recording_payload(result: ScenarioResult) -> Dict[str, Any]:
    """The JSON-serialisable recording for one finished run."""
    payload = {
        "version": RECORDING_VERSION,
        "scenario": result.spec.to_mapping(),
        "seed": result.seed,
        "nodes": {"before": result.nodes_before, "after": result.nodes_after},
        "total_ops": result.total_ops,
        "simulated_seconds": result.simulated_seconds,
        "checks": [
            {"name": check.name, "passed": check.passed, "detail": check.detail}
            for check in result.checks
        ],
        "describe": result.describe,
        "snapshot": json.loads(result.snapshot.to_json()),
    }
    # Traced runs embed the span/series payload; its absence keeps older
    # readers (and untraced recordings) working, so the version stays 1.
    if result.trace is not None:
        payload["trace"] = result.trace
    # Rebalance totals (count / seconds / records / bytes / buckets) feed the
    # sweep manifest and `compare` tables; same absence-tolerated contract.
    if result.rebalances:
        payload["rebalances"] = dict(result.rebalances)
    # Chaos runs embed the injected-event log (and the faulted site of an
    # interrupted rebalance) so `inspect` can print it and `replay` can diff
    # it; same absence-tolerated contract as `trace`.
    if result.chaos_events:
        payload["chaos"] = {
            "events": [dict(event) for event in result.chaos_events],
            "faulted_site": result.faulted_site,
            "recovery_seconds": result.recovery_seconds,
        }
    return payload


def write_recording(result: ScenarioResult, path: Union[str, Path]) -> str:
    """Write the run's recording to ``path`` (parents created); returns it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(recording_payload(result), sort_keys=True, indent=2) + "\n")
    return str(target)


def load_recording(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate a recording document."""
    target = Path(path)
    if not target.exists():
        raise ScenarioSpecError(f"recording not found: {target}")
    try:
        document = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioSpecError(f"{target}: not a recording (invalid JSON: {exc})") from exc
    if not isinstance(document, dict) or "scenario" not in document or "snapshot" not in document:
        raise ScenarioSpecError(
            f"{target}: not a scenario recording (missing 'scenario'/'snapshot'); "
            "recordings are written by `python -m repro run --record`"
        )
    version = document.get("version")
    if version != RECORDING_VERSION:
        raise ScenarioSpecError(
            f"{target}: unsupported recording version {version!r} "
            f"(this build reads version {RECORDING_VERSION})"
        )
    return document


def spec_from_recording(document: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild the resolved spec embedded in a recording."""
    return ScenarioSpec.from_mapping(document["scenario"])


def snapshot_from_recording(document: Dict[str, Any]) -> MetricsSnapshot:
    """Rebuild the recorded metrics snapshot."""
    return MetricsSnapshot.from_json(json.dumps(document["snapshot"]))


def diff_snapshots(recorded: MetricsSnapshot, replayed: MetricsSnapshot) -> List[str]:
    """Human-readable differences between two snapshots (empty = identical)."""
    differences: List[str] = []
    if recorded.phase != replayed.phase:
        differences.append(f"phase: recorded {recorded.phase!r}, replayed {replayed.phase!r}")
    if recorded.simulated_seconds != replayed.simulated_seconds:
        differences.append(
            f"simulated_seconds: recorded {recorded.simulated_seconds!r}, "
            f"replayed {replayed.simulated_seconds!r}"
        )
    differences.extend(
        _diff_mapping("counters", recorded.counters, replayed.counters)
    )
    differences.extend(_diff_mapping("gauges", recorded.gauges, replayed.gauges))
    differences.extend(
        _diff_mapping("histograms", recorded.histograms, replayed.histograms)
    )
    return differences


def diff_traces(recorded: Any, replayed: Any) -> List[str]:
    """Differences between two trace payloads (empty = identical).

    Traces are compared through their canonical JSON form, so tuple/list
    representation differences between a live payload and one round-tripped
    through a recording file do not count as divergence.  ``None`` on both
    sides (untraced runs) compares equal.
    """
    if recorded is None and replayed is None:
        return []
    if recorded is None or replayed is None:
        missing = "recording" if recorded is None else "replay"
        return [f"trace: missing from the {missing}"]
    recorded = json.loads(json.dumps(recorded, sort_keys=True))
    replayed = json.loads(json.dumps(replayed, sort_keys=True))
    if recorded == replayed:
        return []
    differences = []
    for key in ("version", "scenario", "seed", "interval_seconds"):
        if recorded.get(key) != replayed.get(key):
            differences.append(
                f"trace.{key}: recorded {recorded.get(key)!r}, replayed {replayed.get(key)!r}"
            )
    recorded_spans = recorded.get("spans", [])
    replayed_spans = replayed.get("spans", [])
    if len(recorded_spans) != len(replayed_spans):
        differences.append(
            f"trace.spans: recorded {len(recorded_spans)} span(s), "
            f"replayed {len(replayed_spans)}"
        )
    else:
        for index, (left, right) in enumerate(zip(recorded_spans, replayed_spans, strict=True)):
            if left != right:
                differences.append(
                    f"trace.spans[{index}]: recorded {_compact(left)}, replayed {_compact(right)}"
                )
    recorded_series = {series["name"]: series for series in recorded.get("series", [])}
    replayed_series = {series["name"]: series for series in replayed.get("series", [])}
    differences.extend(_diff_mapping("trace.series", recorded_series, replayed_series))
    if recorded.get("heat") != replayed.get("heat"):
        differences.append("trace.heat: per-bucket heat tables differ")
    if not differences:
        # Canonical forms differ but no category above caught it (e.g. an
        # unknown key) — still report the divergence rather than hide it.
        differences.append("trace: payloads differ")
    return differences


def diff_chaos(recorded: Any, replayed: Any) -> List[str]:
    """Differences between two chaos payloads (empty = identical).

    Compared through canonical JSON like :func:`diff_traces`; ``None`` on
    both sides (chaos-free runs) compares equal.
    """
    if recorded is None and replayed is None:
        return []
    if recorded is None or replayed is None:
        missing = "recording" if recorded is None else "replay"
        return [f"chaos: missing from the {missing}"]
    recorded = json.loads(json.dumps(recorded, sort_keys=True))
    replayed = json.loads(json.dumps(replayed, sort_keys=True))
    if recorded == replayed:
        return []
    differences = []
    for key in ("faulted_site", "recovery_seconds"):
        if recorded.get(key) != replayed.get(key):
            differences.append(
                f"chaos.{key}: recorded {recorded.get(key)!r}, replayed {replayed.get(key)!r}"
            )
    recorded_events = recorded.get("events", [])
    replayed_events = replayed.get("events", [])
    if len(recorded_events) != len(replayed_events):
        differences.append(
            f"chaos.events: recorded {len(recorded_events)} event(s), "
            f"replayed {len(replayed_events)}"
        )
    else:
        for index, (left, right) in enumerate(
            zip(recorded_events, replayed_events, strict=True)
        ):
            if left != right:
                differences.append(
                    f"chaos.events[{index}]: recorded {_compact(left)}, "
                    f"replayed {_compact(right)}"
                )
    if not differences:
        differences.append("chaos: payloads differ")
    return differences


def _diff_mapping(label: str, recorded: Dict[str, Any], replayed: Dict[str, Any]) -> List[str]:
    differences = []
    for key in sorted(set(recorded) | set(replayed)):
        if key not in replayed:
            differences.append(f"{label}[{key}]: present only in the recording")
        elif key not in recorded:
            differences.append(f"{label}[{key}]: present only in the replay")
        elif recorded[key] != replayed[key]:
            differences.append(
                f"{label}[{key}]: recorded {_compact(recorded[key])}, "
                f"replayed {_compact(replayed[key])}"
            )
    return differences


def _compact(value: Any, limit: int = 80) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
