"""TOML parsing for scenario specs, with a stdlib-free fallback.

Python 3.11+ ships :mod:`tomllib`; the repo also supports 3.10, and the
simulator is dependency-free by design, so this module provides
:func:`parse_toml` — ``tomllib.loads`` when available, otherwise a small
recursive-descent parser covering the TOML subset scenario specs use:

* ``[table]`` and ``[[array-of-table]]`` headers with dotted names,
* ``key = value`` pairs with bare or quoted keys,
* strings (basic, with the common backslash escapes), integers (including
  ``_`` separators), floats, booleans,
* arrays (possibly spanning lines) and inline tables,
* ``#`` comments and blank lines.

The fallback is intentionally *not* a general TOML implementation — no
date/time types, no multi-line or literal strings, no dotted keys on the
left-hand side of assignments.  Committed scenario specs stay inside this
subset, and a test cross-checks the fallback against ``tomllib`` on every
committed spec so the two cannot drift apart.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

try:  # pragma: no cover - exercised indirectly on every 3.11+ run
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - the 3.10 path
    _tomllib = None


class TOMLParseError(ValueError):
    """A scenario spec's TOML could not be parsed."""


def parse_toml(text: str) -> Dict[str, Any]:
    """Parse TOML ``text`` into plain dicts/lists/scalars."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TOMLParseError(str(exc)) from exc
    return parse_toml_fallback(text)


# ---------------------------------------------------------------------------
# fallback parser (Python < 3.11)
# ---------------------------------------------------------------------------


def parse_toml_fallback(text: str) -> Dict[str, Any]:
    """The dependency-free subset parser (see the module docstring)."""
    root: Dict[str, Any] = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index]).strip()
        index += 1
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TOMLParseError(f"line {index}: malformed [[table]] header {line!r}")
            keys = _split_dotted(line[2:-2].strip(), index)
            parent = _descend(root, keys[:-1], index)
            array = parent.setdefault(keys[-1], [])
            if not isinstance(array, list):
                raise TOMLParseError(
                    f"line {index}: {'.'.join(keys)} is not an array of tables"
                )
            current = {}
            array.append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise TOMLParseError(f"line {index}: malformed [table] header {line!r}")
            keys = _split_dotted(line[1:-1].strip(), index)
            parent = _descend(root, keys[:-1], index)
            table = parent.setdefault(keys[-1], {})
            if not isinstance(table, dict):
                raise TOMLParseError(f"line {index}: {'.'.join(keys)} is not a table")
            current = table
        else:
            if "=" not in line:
                raise TOMLParseError(f"line {index}: expected key = value, got {line!r}")
            key_text, _, value_text = line.partition("=")
            key = _parse_key(key_text.strip(), index)
            value_text = value_text.strip()
            # Arrays may span lines: keep consuming until brackets balance.
            while not _balanced(value_text):
                if index >= len(lines):
                    raise TOMLParseError(f"line {index}: unterminated value for {key!r}")
                value_text += " " + _strip_comment(lines[index]).strip()
                index += 1
            value, rest = _parse_value(value_text, index)
            if rest.strip():
                raise TOMLParseError(
                    f"line {index}: trailing content {rest.strip()!r} after value"
                )
            if key in current:
                raise TOMLParseError(f"line {index}: duplicate key {key!r}")
            current[key] = value
    return root


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, respecting ``#`` inside quoted strings."""
    in_string = False
    for position, char in enumerate(line):
        if char == '"' and (position == 0 or line[position - 1] != "\\"):
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:position]
    return line


def _balanced(text: str) -> bool:
    """Whether every ``[``/``{`` outside a string has closed."""
    depth = 0
    in_string = False
    previous = ""
    for char in text:
        if char == '"' and previous != "\\":
            in_string = not in_string
        elif not in_string:
            if char in "[{":
                depth += 1
            elif char in "]}":
                depth -= 1
        previous = char
    return depth <= 0 and not in_string


def _split_dotted(text: str, line: int) -> List[str]:
    if not text:
        raise TOMLParseError(f"line {line}: empty table name")
    return [_parse_key(part.strip(), line) for part in text.split(".")]


def _parse_key(text: str, line: int) -> str:
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if not text or any(c for c in text if not (c.isalnum() or c in "-_")):
        raise TOMLParseError(f"line {line}: invalid key {text!r}")
    return text


def _descend(root: Dict[str, Any], keys: List[str], line: int) -> Dict[str, Any]:
    node: Any = root
    for key in keys:
        node = node.setdefault(key, {})
        if isinstance(node, list):  # [[a]] then [a.b]: descend into the last entry
            node = node[-1]
        if not isinstance(node, dict):
            raise TOMLParseError(f"line {line}: {key!r} is not a table")
    return node


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}


def _parse_value(text: str, line: int) -> Tuple[Any, str]:
    """Parse one value from the front of ``text``; return (value, rest)."""
    text = text.lstrip()
    if not text:
        raise TOMLParseError(f"line {line}: missing value")
    head = text[0]
    if head == '"':
        return _parse_string(text, line)
    if head == "[":
        return _parse_array(text, line)
    if head == "{":
        return _parse_inline_table(text, line)
    # Bare scalar: runs to the next delimiter at this nesting level.
    end = len(text)
    for position, char in enumerate(text):
        if char in ",]}":
            end = position
            break
    token, rest = text[:end].strip(), text[end:]
    return _parse_scalar(token, line), rest


def _parse_string(text: str, line: int) -> Tuple[str, str]:
    assert text[0] == '"'
    out: List[str] = []
    position = 1
    while position < len(text):
        char = text[position]
        if char == "\\":
            if position + 1 >= len(text):
                raise TOMLParseError(f"line {line}: dangling escape in string")
            escape = text[position + 1]
            if escape not in _ESCAPES:
                raise TOMLParseError(f"line {line}: unsupported escape \\{escape}")
            out.append(_ESCAPES[escape])
            position += 2
        elif char == '"':
            return "".join(out), text[position + 1 :]
        else:
            out.append(char)
            position += 1
    raise TOMLParseError(f"line {line}: unterminated string")


def _parse_array(text: str, line: int) -> Tuple[List[Any], str]:
    assert text[0] == "["
    rest = text[1:].lstrip()
    items: List[Any] = []
    while True:
        if not rest:
            raise TOMLParseError(f"line {line}: unterminated array")
        if rest[0] == "]":
            return items, rest[1:]
        value, rest = _parse_value(rest, line)
        items.append(value)
        rest = rest.lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif not rest.startswith("]"):
            raise TOMLParseError(f"line {line}: expected , or ] in array, got {rest!r}")


def _parse_inline_table(text: str, line: int) -> Tuple[Dict[str, Any], str]:
    assert text[0] == "{"
    rest = text[1:].lstrip()
    table: Dict[str, Any] = {}
    while True:
        if not rest:
            raise TOMLParseError(f"line {line}: unterminated inline table")
        if rest[0] == "}":
            return table, rest[1:]
        if "=" not in rest:
            raise TOMLParseError(f"line {line}: expected key = value in inline table")
        key_text, _, rest = rest.partition("=")
        key = _parse_key(key_text.strip(), line)
        value, rest = _parse_value(rest, line)
        if key in table:
            raise TOMLParseError(f"line {line}: duplicate key {key!r} in inline table")
        table[key] = value
        rest = rest.lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif not rest.startswith("}"):
            raise TOMLParseError(
                f"line {line}: expected , or }} in inline table, got {rest!r}"
            )


def _parse_scalar(token: str, line: int) -> Any:
    if token == "true":
        return True
    if token == "false":
        return False
    cleaned = token.replace("_", "") if _is_numeric_with_separators(token) else token
    try:
        return int(cleaned, 0) if not _looks_float(cleaned) else float(cleaned)
    except ValueError:
        raise TOMLParseError(f"line {line}: cannot parse value {token!r}") from None


def _is_numeric_with_separators(token: str) -> bool:
    return bool(token) and token[0] in "+-0123456789" and "_" in token


def _looks_float(token: str) -> bool:
    return any(marker in token for marker in (".", "e", "E")) and not token.startswith("0x")


__all__ = ["TOMLParseError", "parse_toml", "parse_toml_fallback"]
