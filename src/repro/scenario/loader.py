"""Loading scenario specs from disk: TOML or JSON into :class:`ScenarioSpec`.

The format is chosen by file extension (``.toml`` / ``.json``); anything else
is tried as TOML first (the canonical authoring format), then JSON.  Parse
errors and validation errors both surface as
:class:`~repro.scenario.spec.ScenarioSpecError` carrying the file path, so
``python -m repro run broken.toml`` prints one actionable line instead of a
traceback.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ._toml import TOMLParseError, parse_toml
from .spec import ScenarioSpec, ScenarioSpecError

__all__ = ["load_scenario", "parse_scenario"]


def parse_scenario(text: str, format: str = "toml", source: str = "<string>") -> ScenarioSpec:
    """Parse scenario ``text`` in the given format (``"toml"`` or ``"json"``)."""
    if format == "toml":
        try:
            document: Dict[str, Any] = parse_toml(text)
        except TOMLParseError as exc:
            raise ScenarioSpecError(f"{source}: invalid TOML: {exc}") from exc
    elif format == "json":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"{source}: invalid JSON: {exc}") from exc
    else:
        raise ScenarioSpecError(f"unknown scenario format {format!r}; use 'toml' or 'json'")
    try:
        return ScenarioSpec.from_mapping(document)
    except ScenarioSpecError as exc:
        raise ScenarioSpecError(f"{source}: {exc}") from exc


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate the scenario spec at ``path``."""
    path = Path(path)
    if not path.exists():
        raise ScenarioSpecError(f"scenario spec not found: {path}")
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix == ".json":
        return parse_scenario(text, "json", str(path))
    if suffix == ".toml":
        return parse_scenario(text, "toml", str(path))
    try:
        return parse_scenario(text, "toml", str(path))
    except ScenarioSpecError:
        try:
            return parse_scenario(text, "json", str(path))
        except ScenarioSpecError:
            raise ScenarioSpecError(
                f"{path}: could not parse as TOML or JSON; use a .toml or .json extension"
            ) from None
