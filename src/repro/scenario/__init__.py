"""Declarative scenarios: spec files that compile onto the client API.

This package is the substrate of the ``python -m repro`` CLI (see
:mod:`repro.cli`): a scenario file (TOML or JSON) validates into a frozen
:class:`ScenarioSpec` — cluster config, datasets, phased workload, autopilot
policy, explicit steps (fault-injected rebalances, recovery, TPC-H queries),
and checks — and :func:`run_scenario` executes it through the exact same
:class:`~repro.api.Database` / :class:`~repro.api.WorkloadDriver` /
:class:`~repro.api.Autopilot` surface hand-written experiments use::

    from repro.scenario import load_scenario, run_scenario

    spec = load_scenario("examples/scenarios/traffic_storm.toml")
    result = run_scenario(spec)
    print(result.render())
    assert result.passed  # every [checks] assertion held

Determinism is the core contract: a spec plus a seed fully determines the
run, so :func:`recording_payload` / :func:`diff_snapshots` can persist a
run's :class:`~repro.api.MetricsSnapshot` and later assert a replay
reproduces it bit for bit (``python -m repro replay``).
"""

from .loader import load_scenario, parse_scenario
from .recording import (
    diff_chaos,
    diff_snapshots,
    diff_traces,
    load_recording,
    recording_payload,
    snapshot_from_recording,
    spec_from_recording,
    write_recording,
)
from .runner import CheckResult, ScenarioResult, StepOutcome, run_scenario
from .spec import (
    AutopilotSection,
    ChaosSection,
    ChecksSection,
    ClusterSection,
    DatasetSection,
    QueryStep,
    RebalanceStep,
    RecoverStep,
    ScenarioSpec,
    ScenarioSpecError,
    SecondaryIndexSection,
    SweepSection,
    TPCHSection,
    TraceSection,
    WorkloadPhaseSpec,
    WorkloadSection,
    parse_bytes,
)

__all__ = [
    "AutopilotSection",
    "ChaosSection",
    "CheckResult",
    "ChecksSection",
    "ClusterSection",
    "DatasetSection",
    "QueryStep",
    "RebalanceStep",
    "RecoverStep",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "SecondaryIndexSection",
    "StepOutcome",
    "SweepSection",
    "TPCHSection",
    "TraceSection",
    "WorkloadPhaseSpec",
    "WorkloadSection",
    "diff_chaos",
    "diff_snapshots",
    "diff_traces",
    "load_recording",
    "load_scenario",
    "parse_bytes",
    "parse_scenario",
    "recording_payload",
    "run_scenario",
    "snapshot_from_recording",
    "spec_from_recording",
    "write_recording",
]
