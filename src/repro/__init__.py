"""DynaHash reproduction: efficient data rebalancing for shared-nothing OLAP systems.

This package reimplements, in simulation, the system described in
*DynaHash: Efficient Data Rebalancing in Apache AsterixDB* (Luo & Carey,
ICDE 2022):

* :mod:`repro.lsm` — the LSM-tree storage substrate,
* :mod:`repro.hashing` — extendible hashing / static bucketing / consistent
  hashing partitioners,
* :mod:`repro.bucketed` — the bucketed LSM-tree (Section IV),
* :mod:`repro.cluster` — the AsterixDB-style shared-nothing cluster simulator,
* :mod:`repro.rebalance` — the online rebalance operation (Section V),
* :mod:`repro.query` + :mod:`repro.tpch` — the OLAP query engine and the
  TPC-H workload used by the evaluation,
* :mod:`repro.bench` — experiment drivers that regenerate every figure of the
  paper's evaluation.

Quickstart (the :mod:`repro.api` client surface)::

    from repro.api import ClusterConfig, Database

    with Database(ClusterConfig(num_nodes=4), strategy="dynahash") as db:
        orders = db.create_dataset("orders", primary_key="o_orderkey")
        orders.insert(rows)
        report = db.remove_nodes(1)    # online rebalance
        print(report.simulated_seconds)

The legacy ``SimulatedCluster.ingest``/``.lookup`` calls keep working but emit
``DeprecationWarning``; see :mod:`repro.api` for the supported verbs.
"""

__version__ = "1.1.0"

from .common import BucketingConfig, ClusterConfig, CostModelConfig, LSMConfig

__all__ = [
    "BucketingConfig",
    "ClusterConfig",
    "CostModelConfig",
    "LSMConfig",
    "__version__",
]


def _export_cluster_api() -> None:
    """Populate the package namespace with the high-level API.

    The cluster/rebalance modules import the storage substrate; keeping the
    re-exports in a helper gives a single place to extend the public surface.
    """
    from .api import Database, Dataset  # noqa: F401
    from .cluster import SimulatedCluster  # noqa: F401
    from .rebalance import (  # noqa: F401
        ConsistentHashStrategy,
        DynaHashStrategy,
        GlobalHashingStrategy,
        StaticHashStrategy,
        available_strategies,
        register_strategy,
        strategy_by_name,
    )

    globals().update(
        Database=Database,
        Dataset=Dataset,
        SimulatedCluster=SimulatedCluster,
        DynaHashStrategy=DynaHashStrategy,
        StaticHashStrategy=StaticHashStrategy,
        GlobalHashingStrategy=GlobalHashingStrategy,
        ConsistentHashStrategy=ConsistentHashStrategy,
        available_strategies=available_strategies,
        register_strategy=register_strategy,
        strategy_by_name=strategy_by_name,
    )
    __all__.extend(
        [
            "Database",
            "Dataset",
            "SimulatedCluster",
            "DynaHashStrategy",
            "StaticHashStrategy",
            "GlobalHashingStrategy",
            "ConsistentHashStrategy",
            "available_strategies",
            "register_strategy",
            "strategy_by_name",
        ]
    )


try:  # pragma: no cover - exercised indirectly by every integration test
    _export_cluster_api()
except ImportError:
    # During partial builds (e.g. importing repro.common alone while the
    # higher layers are not present) the subpackages remain usable directly.
    pass
