"""The cost model: converting physical work into simulated seconds.

The paper's experiments ran on real AWS hardware; this reproduction replaces
wall-clock measurement with explicit accounting.  Every storage, network and
CPU action reports *work* (bytes moved, records touched, messages sent) and
the cost model converts that work into seconds using the throughput/latency
parameters of :class:`repro.common.config.CostModelConfig`.

Two ideas matter for reproducing the figures:

* **Slowest-node semantics** — "in a shared-nothing system the query time is
  bottlenecked by the slowest node" (Section II-A).  Cluster-level durations
  are computed with :func:`slowest` over per-node durations.
* **Workload scaling** — benchmarks ingest megabytes, not the paper's 100 GB
  per node.  ``workload_scale`` multiplies the *work* (not the parameters), so
  a run over 1/5000th of the data reports times in the same ballpark as the
  paper while every relative comparison remains a pure function of the
  simulated system's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from ..common.config import CostModelConfig
from ..lsm.stats import StorageStats


@dataclass
class WorkBreakdown:
    """A durations-by-category record, useful for reports and debugging."""

    disk_read_sec: float = 0.0
    disk_write_sec: float = 0.0
    network_sec: float = 0.0
    cpu_sec: float = 0.0
    rpc_sec: float = 0.0

    @property
    def total_sec(self) -> float:
        return (
            self.disk_read_sec
            + self.disk_write_sec
            + self.network_sec
            + self.cpu_sec
            + self.rpc_sec
        )

    def add(self, other: "WorkBreakdown") -> None:
        self.disk_read_sec += other.disk_read_sec
        self.disk_write_sec += other.disk_write_sec
        self.network_sec += other.network_sec
        self.cpu_sec += other.cpu_sec
        self.rpc_sec += other.rpc_sec


class CostModel:
    """Converts work into simulated seconds."""

    def __init__(self, config: Optional[CostModelConfig] = None, workload_scale: float = 1.0) -> None:
        if workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        self.config = config or CostModelConfig()
        self.workload_scale = workload_scale

    # ----------------------------------------------------------- primitives

    def disk_read_time(self, num_bytes: float) -> float:
        """Seconds to sequentially read ``num_bytes`` from one partition's disk."""
        return self._scale(num_bytes) / self.config.disk_read_bytes_per_sec

    def disk_write_time(self, num_bytes: float) -> float:
        """Seconds to sequentially write ``num_bytes`` to one partition's disk."""
        return self._scale(num_bytes) / self.config.disk_write_bytes_per_sec

    def network_time(self, num_bytes: float) -> float:
        """Seconds to ship ``num_bytes`` over one node's network link."""
        return self._scale(num_bytes) / self.config.network_bytes_per_sec

    def parse_time(self, num_records: float) -> float:
        """CPU seconds to parse ``num_records`` ingested records."""
        return self._scale(num_records) * self.config.cpu_parse_record_sec

    def compare_time(self, num_records: float) -> float:
        """CPU seconds for merge/sort comparisons over ``num_records``."""
        return self._scale(num_records) * self.config.cpu_compare_record_sec

    def operator_time(self, num_records: float) -> float:
        """CPU seconds for one query operator to process ``num_records``."""
        return self._scale(num_records) * self.config.cpu_operator_record_sec

    def rpc_time(self, num_messages: int = 1) -> float:
        """Seconds of control-message latency (not scaled by workload size)."""
        return num_messages * self.config.rpc_latency_sec

    def component_open_time(self, num_components: int) -> float:
        """Seconds of per-component open/seek overhead (not workload scaled)."""
        return num_components * self.config.component_open_sec

    def _scale(self, quantity: float) -> float:
        return quantity * self.workload_scale

    # ---------------------------------------------------------- aggregates

    def storage_work(self, stats: StorageStats) -> WorkBreakdown:
        """Cost of the storage activity captured in a stats delta.

        Flushes and merge outputs are disk writes, merge inputs and query
        reads are disk reads, merge reconciliation is CPU, and every component
        open pays a small fixed cost.
        """
        breakdown = WorkBreakdown()
        breakdown.disk_write_sec += self.disk_write_time(stats.total_disk_write_bytes)
        breakdown.disk_read_sec += self.disk_read_time(stats.total_disk_read_bytes)
        breakdown.cpu_sec += self.compare_time(stats.records_merged)
        breakdown.rpc_sec += 0.0
        breakdown.cpu_sec += self.component_open_time(stats.components_opened)
        return breakdown

    def ingest_work(self, num_records: int, stats: StorageStats) -> WorkBreakdown:
        """Cost of ingesting ``num_records`` whose storage activity is ``stats``.

        Record parsing dominates CPU (the paper observes AsterixDB ingestion
        is CPU-heavy); flush/merge I/O and merge CPU come from the stats.
        """
        breakdown = self.storage_work(stats)
        breakdown.cpu_sec += self.parse_time(num_records)
        return breakdown

    def movement_work(
        self, bytes_scanned: float, bytes_shipped: float, bytes_loaded: float, records: float
    ) -> WorkBreakdown:
        """Cost of moving rebalance data: scan at the source, ship, load at the
        destination, plus per-record repartitioning CPU."""
        breakdown = WorkBreakdown()
        breakdown.disk_read_sec += self.disk_read_time(bytes_scanned)
        breakdown.network_sec += self.network_time(bytes_shipped)
        breakdown.disk_write_sec += self.disk_write_time(bytes_loaded)
        breakdown.cpu_sec += self.compare_time(records)
        return breakdown

    # --------------------------------------------------------- cluster math

    @staticmethod
    def slowest(per_node_seconds: Mapping[object, float]) -> float:
        """Completion time of a parallel step: the slowest node's time."""
        if not per_node_seconds:
            return 0.0
        return max(per_node_seconds.values())

    @staticmethod
    def sum_breakdowns(breakdowns: Iterable[WorkBreakdown]) -> WorkBreakdown:
        total = WorkBreakdown()
        for breakdown in breakdowns:
            total.add(breakdown)
        return total


@dataclass
class TimedPhase:
    """A named phase duration inside a larger report (e.g. "data movement")."""

    name: str
    seconds: float
    per_node_seconds: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimedPhase({self.name!r}, {self.seconds:.2f}s)"
